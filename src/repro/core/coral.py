"""CORAL — an alternative domain-adaptation discrepancy (Sun et al. 2016).

The paper picks MMD "as a proof-of-concept" for the distribution
regularizer and frames the idea as general domain adaptation; CORAL
(CORrelation ALignment) is the other canonical shallow DA distance — it
matches second-order statistics (covariances) instead of means.  The
library provides it both as a measurement (for the ablation comparing
what each distance sees) and as an alternative regularizer target.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError


def _covariance(features: np.ndarray) -> np.ndarray:
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2 or features.shape[0] < 2:
        raise DataError("covariance needs a (n >= 2, d) matrix")
    centered = features - features.mean(axis=0)
    return centered.T @ centered / (features.shape[0] - 1)


def coral_distance(x_features: np.ndarray, y_features: np.ndarray) -> float:
    """Squared Frobenius distance between feature covariances / (4 d^2)."""
    cov_x = _covariance(x_features)
    cov_y = _covariance(y_features)
    d = cov_x.shape[0]
    return float(((cov_x - cov_y) ** 2).sum() / (4.0 * d * d))


def mean_and_coral_distance(
    x_features: np.ndarray, y_features: np.ndarray, coral_weight: float = 1.0
) -> float:
    """First + second order discrepancy: ||mean gap||^2 + w * CORAL."""
    gap = np.asarray(x_features).mean(axis=0) - np.asarray(y_features).mean(axis=0)
    return float(gap @ gap) + coral_weight * coral_distance(x_features, y_features)
