"""The paper's primary contribution: distribution regularization for FL.

* :mod:`repro.core.mmd` — maximum mean discrepancy estimators (the
  linear mean-embedding form used by the paper's regularizer, plus a
  full RBF-kernel estimator for the ablation).
* :mod:`repro.core.delta` — per-client mean-embedding tables
  (the ``delta`` vectors exchanged by Algorithms 1 and 2) with payload
  accounting for Table III.
* :mod:`repro.core.regularizer` — the regularizer loss and its exact
  gradient on the feature activations, in both the pairwise (rFedAvg)
  and leave-one-out (rFedAvg+) forms.
* :mod:`repro.core.privacy` — the Gaussian mechanism on delta used by
  the paper's privacy evaluation (Fig. 12).
"""

from repro.core.mmd import (
    linear_mmd,
    squared_linear_mmd,
    rbf_mmd,
    multi_kernel_mmd,
    mean_embedding,
    median_heuristic,
)
from repro.core.coral import coral_distance, mean_and_coral_distance
from repro.core.delta import DeltaSpillStore, DeltaTable, ShardedDeltaTable
from repro.core.regularizer import (
    DistributionRegularizer,
    pairwise_regularizer_loss,
    loo_regularizer_loss,
)
from repro.core.privacy import GaussianDeltaMechanism

__all__ = [
    "linear_mmd",
    "squared_linear_mmd",
    "rbf_mmd",
    "multi_kernel_mmd",
    "coral_distance",
    "mean_and_coral_distance",
    "mean_embedding",
    "median_heuristic",
    "DeltaTable",
    "ShardedDeltaTable",
    "DeltaSpillStore",
    "DistributionRegularizer",
    "pairwise_regularizer_loss",
    "loo_regularizer_loss",
    "GaussianDeltaMechanism",
]
