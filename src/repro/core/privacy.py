"""Differential privacy for the delta payloads (Fig. 12).

Following Abadi et al. (the paper's reference [43]), the intermediate
regularization variable delta is clipped to norm C0 and perturbed with
Gaussian noise before leaving the client:

    delta~  <-  clip(delta, C0) + (1/L) * N(0, sigma2^2 * C0^2 * I)

where L is the batch (here: local dataset) size.  The paper finds that
sigma2 <= 5 leaves accuracy nearly untouched and larger noise degrades
it — the privacy bench reproduces that curve.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError
from repro.nn.functional import clip_by_norm


class GaussianDeltaMechanism:
    """Clip-and-noise mechanism applied to delta vectors.

    Args:
        sigma: noise multiplier sigma2 (0 disables noise but keeps clipping).
        clip_norm: clipping constant C0.
        seed: rng seed for the noise stream.
    """

    def __init__(self, sigma: float, clip_norm: float = 1.0, seed: int = 0) -> None:
        if sigma < 0:
            raise ConfigError(f"sigma must be non-negative, got {sigma}")
        if clip_norm <= 0:
            raise ConfigError(f"clip_norm must be positive, got {clip_norm}")
        self.sigma = sigma
        self.clip_norm = clip_norm
        self._rng = np.random.default_rng(seed)

    def privatize(
        self,
        delta: np.ndarray,
        batch_size: int,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Return the privatized copy of ``delta``.

        Args:
            delta: the client's mean embedding (d,).
            batch_size: L, the number of samples averaged into delta.
            rng: optional noise stream.  The federated runtime passes a
                per-``(round, client)`` stream so noise is independent
                of client execution order (serial/parallel equivalence);
                when omitted the mechanism's own sequential stream is
                used.
        """
        if batch_size <= 0:
            raise ConfigError(f"batch_size must be positive, got {batch_size}")
        clipped = clip_by_norm(np.asarray(delta, dtype=np.float64), self.clip_norm)
        if self.sigma == 0:
            return clipped.copy()
        noise_std = self.sigma * self.clip_norm / batch_size
        source = rng if rng is not None else self._rng
        return clipped + source.normal(0.0, noise_std, size=clipped.shape)

    def noise_std(self, batch_size: int) -> float:
        """Per-coordinate noise standard deviation for a given L."""
        return self.sigma * self.clip_norm / batch_size
