"""The distribution-regularizer loss and its feature-space gradient.

Eq. 5 defines ``r_k = (1/(N-1)) sum_{j != k} d^2(phi(x_k), phi(x_j))``;
rFedAvg+ swaps in the leave-one-out form ``r~_k = ||delta^k -
mean_{j != k} delta^j||^2`` (Sec. IV-C), which the paper shows has the
same gradient with respect to the client's own embedding.  Both forms
are provided; the gradient path is shared.

Gradient derivation (what :func:`_embedding_grad` implements): with a
minibatch of B feature rows f_1..f_B and delta = mean_i f_i,

    d/d f_i  lambda * ||delta - target||^2
        = lambda * 2 (delta - target) / B        (same for every row)

and for the pairwise form the target is the mean of the other clients'
deltas, because sum_j 2(delta - delta_j) / (N-1) = 2(delta - mean_j
delta_j).  The gradient then continues through phi via the model's
ordinary backward pass (SplitModel.backward's ``feature_grad`` hook).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mmd import mean_embedding
from repro.exceptions import ConfigError


def pairwise_regularizer_loss(delta: np.ndarray, others: np.ndarray) -> float:
    """r_k: mean squared distance from ``delta`` to each row of ``others``."""
    others = np.atleast_2d(others)
    gaps = others - delta
    return float((gaps * gaps).sum(axis=1).mean())


def loo_regularizer_loss(delta: np.ndarray, target: np.ndarray) -> float:
    """r~_k: squared distance from ``delta`` to the leave-one-out mean."""
    gap = delta - target
    return float(gap @ gap)


def _embedding_grad(
    batch_delta: np.ndarray, target: np.ndarray, batch_size: int, lam: float
) -> np.ndarray:
    """Gradient of lambda*||delta - target||^2 on each feature row."""
    return (2.0 * lam / batch_size) * (batch_delta - target)


@dataclass(frozen=True)
class RegularizerResult:
    """Output of one regularizer evaluation on a minibatch."""

    loss: float  # lambda * r_k (the weighted regularization loss)
    feature_grad: np.ndarray  # (B, d) gradient to add on the features


class DistributionRegularizer:
    """Computes the regularization term and its feature gradient.

    Args:
        lam: the weight/normalization coefficient lambda (Eq. 3).
        mode: 'pairwise' (rFedAvg, needs the full delta table) or
            'loo' (rFedAvg+, needs only the leave-one-out average).
    """

    PAIRWISE = "pairwise"
    LOO = "loo"

    def __init__(self, lam: float, mode: str = LOO) -> None:
        if lam < 0:
            raise ConfigError(f"lambda must be non-negative, got {lam}")
        if mode not in (self.PAIRWISE, self.LOO):
            raise ConfigError(f"unknown regularizer mode {mode!r}")
        self.lam = lam
        self.mode = mode

    def evaluate(
        self, features: np.ndarray, reference: np.ndarray
    ) -> RegularizerResult:
        """Regularizer loss + feature gradient for one minibatch.

        Args:
            features: (B, d) feature activations phi(x) of the batch.
            reference: for 'pairwise' mode, the (M, d) deltas of the
                other clients; for 'loo' mode, the (d,) leave-one-out
                average delta^{-k}.

        Returns:
            :class:`RegularizerResult` with the *lambda-weighted* loss
            and the (B, d) gradient to inject into the model backward.
        """
        features = np.asarray(features, dtype=np.float64)
        batch_size = features.shape[0]
        delta = mean_embedding(features)
        if self.mode == self.PAIRWISE:
            others = np.atleast_2d(np.asarray(reference, dtype=np.float64))
            if others.shape[1] != delta.shape[0]:
                raise ConfigError(
                    f"reference dim {others.shape[1]} != feature dim {delta.shape[0]}"
                )
            loss = self.lam * pairwise_regularizer_loss(delta, others)
            target = others.mean(axis=0)
        else:
            target = np.asarray(reference, dtype=np.float64)
            if target.shape != delta.shape:
                raise ConfigError(
                    f"reference shape {target.shape} != delta shape {delta.shape}"
                )
            loss = self.lam * loo_regularizer_loss(delta, target)
        grad_row = _embedding_grad(delta, target, batch_size, self.lam)
        feature_grad = np.broadcast_to(grad_row, features.shape).copy()
        return RegularizerResult(loss=loss, feature_grad=feature_grad)
