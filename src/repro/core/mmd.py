"""Maximum mean discrepancy (MMD) estimators.

The paper's regularizer (Eq. 2) is the *empirical mean-embedding* MMD:
``|| mean_i phi(x_i) - mean_j phi(y_j) ||`` where ``phi`` is a learned
deep feature map.  That corresponds to MMD with a linear kernel on the
learned features, so we call it :func:`linear_mmd`.  The classical
RBF-kernel estimator is included for the kernel ablation and as a test
oracle (linear MMD equals RBF MMD's first-order behaviour for large
bandwidths).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError


def mean_embedding(features: np.ndarray) -> np.ndarray:
    """The empirical mean embedding delta = mean of feature rows (B, d) -> (d,)."""
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise DataError(f"features must be 2-D (batch, dim), got {features.shape}")
    if features.shape[0] == 0:
        raise DataError("cannot embed an empty batch")
    return features.mean(axis=0)


def linear_mmd(x_features: np.ndarray, y_features: np.ndarray) -> float:
    """Eq. 2: || mean phi(x) - mean phi(y) || (L2 norm of embedding gap)."""
    return float(np.linalg.norm(mean_embedding(x_features) - mean_embedding(y_features)))


def squared_linear_mmd(x_features: np.ndarray, y_features: np.ndarray) -> float:
    """The squared distance d^2 used in the regularizer (Eq. 5)."""
    gap = mean_embedding(x_features) - mean_embedding(y_features)
    return float(gap @ gap)


# Above this many output elements (n * m), _pairwise_sq_dists switches to
# row blocks so the distance matrix is built without a second full-size
# temporary.  4M float64 elements = 32 MiB per temporary.
_BLOCK_ELEMENTS = 1 << 22


def _pairwise_sq_dists(
    a: np.ndarray, b: np.ndarray, block_rows: int | None = None
) -> np.ndarray:
    """All squared distances ||a_i - b_j||^2 via the GEMM identity
    ``||a||^2 + ||b||^2 - 2 a.b``.

    Small problems (n * m <= ``_BLOCK_ELEMENTS``) use a single dense GEMM —
    bitwise identical to the historical implementation.  Larger problems
    fall back to row blocks of ``block_rows`` rows, which bounds peak
    temporary memory; blocked BLAS calls may differ from the dense result
    in the last ulp (GEMM blocking is shape-sensitive), which is harmless
    for a distance matrix that feeds an exp() kernel.
    """
    aa = (a * a).sum(axis=1)[:, None]
    bb = (b * b).sum(axis=1)[None, :]
    n, m = a.shape[0], b.shape[0]
    if block_rows is None:
        if n * m <= _BLOCK_ELEMENTS:
            block_rows = n
        else:
            block_rows = max(1, _BLOCK_ELEMENTS // max(m, 1))
    if block_rows >= n:
        return np.maximum(aa + bb - 2.0 * (a @ b.T), 0.0)
    out = np.empty((n, m), dtype=np.result_type(a, b))
    bt = b.T
    for i in range(0, n, block_rows):
        j = min(i + block_rows, n)
        blk = out[i:j]
        np.add(aa[i:j], bb, out=blk)
        prod = a[i:j] @ bt
        prod *= 2.0
        blk -= prod
        np.maximum(blk, 0.0, out=blk)
    return out


def median_heuristic(x: np.ndarray, y: np.ndarray) -> float:
    """Median pairwise distance bandwidth for the RBF kernel."""
    pooled = np.vstack([np.asarray(x, dtype=np.float64), np.asarray(y, dtype=np.float64)])
    dists = np.sqrt(_pairwise_sq_dists(pooled, pooled))
    upper = dists[np.triu_indices(len(pooled), k=1)]
    med = float(np.median(upper)) if len(upper) else 1.0
    return med if med > 0 else 1.0


def rbf_mmd(
    x: np.ndarray, y: np.ndarray, bandwidth: float | None = None, biased: bool = True
) -> float:
    """Kernel two-sample MMD with a Gaussian kernel.

    Args:
        x, y: sample matrices (n, d) and (m, d).
        bandwidth: kernel width; ``None`` uses the median heuristic.
        biased: biased (V-statistic) or unbiased (U-statistic) estimate.

    Returns:
        The MMD estimate (>= 0 for the biased version).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim != 2 or y.ndim != 2 or x.shape[1] != y.shape[1]:
        raise DataError("rbf_mmd needs two 2-D arrays with matching feature dims")
    if bandwidth is None:
        bandwidth = median_heuristic(x, y)
    gamma = 1.0 / (2.0 * bandwidth**2)
    kxx = np.exp(-gamma * _pairwise_sq_dists(x, x))
    kyy = np.exp(-gamma * _pairwise_sq_dists(y, y))
    kxy = np.exp(-gamma * _pairwise_sq_dists(x, y))
    n, m = len(x), len(y)
    if biased:
        stat = kxx.mean() + kyy.mean() - 2.0 * kxy.mean()
        return float(np.sqrt(max(stat, 0.0)))
    if n < 2 or m < 2:
        raise DataError("unbiased MMD needs at least 2 samples per side")
    sum_xx = (kxx.sum() - np.trace(kxx)) / (n * (n - 1))
    sum_yy = (kyy.sum() - np.trace(kyy)) / (m * (m - 1))
    stat = sum_xx + sum_yy - 2.0 * kxy.mean()
    return float(stat)  # can be slightly negative by construction


def multi_kernel_mmd(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: list[float] | None = None,
) -> float:
    """Multi-kernel MMD: mean of RBF MMDs over a bandwidth family.

    The standard robustness trick (Long et al.'s DAN uses a geometric
    family around the median heuristic) — no single bandwidth is right
    for every feature scale.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if bandwidths is None:
        base = median_heuristic(x, y)
        bandwidths = [base * f for f in (0.25, 0.5, 1.0, 2.0, 4.0)]
    if not bandwidths:
        raise DataError("need at least one bandwidth")
    return float(np.mean([rbf_mmd(x, y, bandwidth=b) for b in bandwidths]))
