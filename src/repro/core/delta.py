"""Per-client mean-embedding tables (the ``delta`` payloads).

Both algorithms exchange mean embeddings ``delta^k = (1/n_k) sum_j
phi(x_{k,j})``.  :class:`DeltaTable` is the server-side store: it tracks
which clients have reported at least once (so the regularizer can stay
inactive until real statistics exist), computes the leave-one-out
averages rFedAvg+ broadcasts, and accounts payload sizes for Table III.

:class:`ShardedDeltaTable` is the cross-device variant of the same
store: rows are allocated lazily the first time a client reports (a
1M-client population with 100-client cohorts holds cohort-scale rows,
not N), and past a configurable resident cap least-recently-used rows
spill to an on-disk :class:`DeltaSpillStore`.  Every statistic is
computed over reported rows *in ascending client-id order*, exactly the
order the dense table's boolean-mask indexing produces, so the two
layouts are bit-identical and the layout knob
(``FLConfig.state_sharding``) is execution-only.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from collections import OrderedDict

import numpy as np

from repro.exceptions import ProtocolError
from repro.nn.dtype import get_default_dtype


class DeltaTable:
    """Server-side store of per-client delta vectors.

    Attributes:
        dim: embedding dimension d.
        num_clients: number of clients N.
        dtype_bytes: bytes per scalar on the wire.  ``None`` follows the
            active dtype policy at construction; the paper reports
            float32 payloads, which an explicit ``4`` reproduces from a
            float64 training run.
    """

    def __init__(self, num_clients: int, dim: int, dtype_bytes: int | None = None) -> None:
        if num_clients <= 0 or dim <= 0:
            raise ProtocolError("num_clients and dim must be positive")
        self.num_clients = num_clients
        self.dim = dim
        self.dtype_bytes = (
            int(dtype_bytes) if dtype_bytes is not None else get_default_dtype().itemsize
        )
        self._table = np.zeros((num_clients, dim), dtype=np.float64)
        self._reported = np.zeros(num_clients, dtype=bool)

    # -- worker-state views (wire transport) -------------------------------------
    def state_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The raw ``(table, reported)`` arrays, without copying — used
        to pack the table into a round-state broadcast."""
        return self._table, self._reported

    def install_views(self, table: np.ndarray, reported: np.ndarray) -> None:
        """Adopt shared (read-only) backing arrays in a worker process.

        Worker-side code only reads the table (updates are committed by
        the parent), so read-only views are sufficient; the read
        accessors below copy before returning as they always did.
        """
        if table.shape != (self.num_clients, self.dim):
            raise ProtocolError(f"table shape {table.shape} != "
                                f"({self.num_clients}, {self.dim})")
        self._table = table
        self._reported = reported

    # -- updates ---------------------------------------------------------------
    def update(self, client: int, delta: np.ndarray) -> None:
        """Store client's freshly computed mean embedding."""
        delta = np.asarray(delta, dtype=np.float64)
        if delta.shape != (self.dim,):
            raise ProtocolError(f"delta shape {delta.shape} != ({self.dim},)")
        self._table[client] = delta
        self._reported[client] = True

    # -- reads -----------------------------------------------------------------
    @property
    def reported_mask(self) -> np.ndarray:
        """Boolean mask of clients that have reported at least once."""
        return self._reported.copy()

    @property
    def any_reported(self) -> bool:
        return bool(self._reported.any())

    @property
    def all_reported(self) -> bool:
        return bool(self._reported.all())

    def get(self, client: int) -> np.ndarray:
        return self._table[client].copy()

    def full_table(self) -> np.ndarray:
        """The full (N, d) table — what rFedAvg broadcasts to every client."""
        return self._table.copy()

    def reported_ids(self) -> np.ndarray:
        """Ids of clients that have reported, ascending."""
        return np.flatnonzero(self._reported).astype(np.int64)

    def reported_rows_except(self, client: int) -> np.ndarray | None:
        """Reported delta rows of every client but ``client``, in
        ascending client-id order; None when nobody else has reported."""
        mask = self._reported.copy()
        mask[client] = False
        if not mask.any():
            return None
        return self._table[mask]

    # -- worker-state / checkpoint segments ---------------------------------------
    def worker_segments(self) -> dict[str, np.ndarray]:
        """Named arrays to broadcast with the per-round worker state."""
        return {"delta_table": self._table, "delta_reported": self._reported}

    def install_worker_segments(self, segments: dict) -> None:
        self.install_views(segments["delta_table"], segments["delta_reported"])

    def checkpoint_segments(self) -> dict[str, np.ndarray]:
        """Layout-independent sparse snapshot (reported rows only)."""
        ids = self.reported_ids()
        return {
            "delta_ids": ids,
            "delta_rows": self._table[ids].copy(),
            "delta_reported": self._reported.copy(),
        }

    def restore_checkpoint_segments(self, segments: dict) -> None:
        """Restore either the sparse snapshot or the pre-sharding dense
        form (``delta_table``/``delta_reported``)."""
        if "delta_table" in segments:
            np.copyto(self._table, segments["delta_table"])
            np.copyto(self._reported, segments["delta_reported"])
            return
        self._table[:] = 0.0
        ids = np.asarray(segments["delta_ids"], dtype=np.int64)
        if len(ids):
            self._table[ids] = np.asarray(segments["delta_rows"], dtype=np.float64)
        np.copyto(self._reported, segments["delta_reported"])

    def mean_of_others(self, client: int) -> np.ndarray:
        """Leave-one-out average over *reported* clients other than ``client``.

        This is ``delta^{-k}`` in Algorithm 2.  Falls back to the global
        reported mean when only the client itself has reported, and to
        zeros when nobody has (callers should gate on
        :attr:`any_reported` anyway).
        """
        mask = self._reported.copy()
        mask[client] = False
        if not mask.any():
            if self._reported[client]:
                return self._table[client].copy()
            return np.zeros(self.dim)
        return self._table[mask].mean(axis=0)

    def pairwise_mean_sq_distance(self, client: int) -> float:
        """r_k = (1/(N-1)) sum_{j != k} ||delta^k - delta^j||^2 over reported js."""
        mask = self._reported.copy()
        mask[client] = False
        if not mask.any():
            return 0.0
        gaps = self._table[mask] - self._table[client]
        return float((gaps * gaps).sum(axis=1).mean())

    def delta_inconsistency(self) -> float:
        """Mean distance of reported deltas to their common mean.

        Diagnostic for the rFedAvg drawback the paper calls "inconsistent
        calculation of mappings": deltas computed from divergent local
        models scatter more widely than deltas computed from one global
        model.
        """
        if not self._reported.any():
            return 0.0
        reported = self._table[self._reported]
        center = reported.mean(axis=0)
        return float(np.linalg.norm(reported - center, axis=1).mean())

    # -- payload accounting (Table III) -----------------------------------------
    def broadcast_bytes_rfedavg(self) -> int:
        """Per-round broadcast: every client gets the full table (N*d each)."""
        return self.num_clients * self.num_clients * self.dim * self.dtype_bytes

    def broadcast_bytes_rfedavg_plus(self) -> int:
        """Per-round broadcast: every client gets only its own delta^{-k}."""
        return self.num_clients * self.dim * self.dtype_bytes

    def upload_bytes(self) -> int:
        """Per-round upload: every client sends its own delta (both algs)."""
        return self.num_clients * self.dim * self.dtype_bytes

    def per_client_state_bytes(self, plus: bool) -> int:
        """Size of the delta state one client must hold (Table III rows)."""
        if plus:
            return self.dim * self.dtype_bytes
        return self.num_clients * self.dim * self.dtype_bytes


class DeltaSpillStore:
    """Append-only on-disk store of per-client delta rows.

    Backs :class:`ShardedDeltaTable` past its resident cap.  Rows are
    raw float64 bytes appended to one file; re-reporting a client
    appends a fresh row and repoints its offset (the dead bytes are
    bounded by total reports, which is cohort x rounds — negligible
    next to the dense table it replaces).  The file lives in
    ``directory`` when given, else in a self-cleaning temporary
    directory.
    """

    def __init__(self, dim: int, directory: str | None = None) -> None:
        self.dim = dim
        self._row_bytes = dim * 8
        if directory is None:
            self._dir = tempfile.mkdtemp(prefix="repro-delta-spill-")
            self._owns_dir = True
        else:
            os.makedirs(directory, exist_ok=True)
            self._dir = str(directory)
            self._owns_dir = False
        self.path = os.path.join(self._dir, "delta-rows.bin")
        self._handle = open(self.path, "w+b")
        self._offsets: dict[int, int] = {}
        self._end = 0
        if self._owns_dir:
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, self._dir, ignore_errors=True
            )
        else:
            self._finalizer = weakref.finalize(self, self._handle.close)

    def __len__(self) -> int:
        return len(self._offsets)

    def __contains__(self, client: int) -> bool:
        return client in self._offsets

    def put(self, client: int, row: np.ndarray) -> None:
        data = np.ascontiguousarray(row, dtype=np.float64).tobytes()
        self._handle.seek(self._end)
        self._handle.write(data)
        self._offsets[client] = self._end
        self._end += self._row_bytes

    def get(self, client: int) -> np.ndarray:
        offset = self._offsets[client]
        self._handle.seek(offset)
        data = self._handle.read(self._row_bytes)
        return np.frombuffer(data, dtype=np.float64).copy()

    def pop(self, client: int) -> np.ndarray:
        row = self.get(client)
        del self._offsets[client]
        return row

    def close(self) -> None:
        self._finalizer()


class ShardedDeltaTable:
    """Server-side delta store with lazily allocated, spillable rows.

    Drop-in replacement for :class:`DeltaTable` (same statistics, same
    payload accounting) whose memory scales with the number of clients
    that ever *reported*, not the population: only the O(N) pieces are
    one boolean reported mask (1 MB at a million clients) and the
    transient dense view :meth:`full_table` builds on request.  With
    ``max_resident`` set, least-recently-used rows beyond the cap move
    to a :class:`DeltaSpillStore` (created lazily) and are read back on
    demand — spilling never changes any statistic.

    Bit-identity with the dense table: every aggregate iterates
    reported rows in ascending client-id order, which is exactly the
    order dense boolean-mask indexing yields, and accumulates through
    the same numpy reductions on a stacked (R, d) float64 array.
    """

    def __init__(
        self,
        num_clients: int,
        dim: int,
        dtype_bytes: int | None = None,
        max_resident: int | None = None,
        spill_dir: str | None = None,
    ) -> None:
        if num_clients <= 0 or dim <= 0:
            raise ProtocolError("num_clients and dim must be positive")
        if max_resident is not None and max_resident < 1:
            raise ProtocolError(f"max_resident must be >= 1, got {max_resident}")
        self.num_clients = num_clients
        self.dim = dim
        self.dtype_bytes = (
            int(dtype_bytes) if dtype_bytes is not None else get_default_dtype().itemsize
        )
        self.max_resident = max_resident
        self.spill_dir = spill_dir
        self._rows: OrderedDict[int, np.ndarray] = OrderedDict()
        self._spill: DeltaSpillStore | None = None
        self._reported = np.zeros(num_clients, dtype=bool)
        self.spilled_rows = 0  # lifetime spill writes (obs counter fodder)

    # -- updates ---------------------------------------------------------------
    def update(self, client: int, delta: np.ndarray) -> None:
        """Store client's freshly computed mean embedding."""
        delta = np.asarray(delta, dtype=np.float64)
        if delta.shape != (self.dim,):
            raise ProtocolError(f"delta shape {delta.shape} != ({self.dim},)")
        if self._spill is not None and client in self._spill:
            self._spill.pop(client)
        self._rows[client] = delta.copy()
        self._rows.move_to_end(client)
        self._reported[client] = True
        self._enforce_cap()

    def _enforce_cap(self) -> None:
        if self.max_resident is None:
            return
        while len(self._rows) > self.max_resident:
            victim, row = self._rows.popitem(last=False)
            if self._spill is None:
                self._spill = DeltaSpillStore(self.dim, self.spill_dir)
            self._spill.put(victim, row)
            self.spilled_rows += 1

    def _row(self, client: int) -> np.ndarray:
        """One reported client's row (resident or spilled)."""
        row = self._rows.get(client)
        if row is not None:
            return row
        assert self._spill is not None
        return self._spill.get(client)

    # -- reads -----------------------------------------------------------------
    @property
    def reported_mask(self) -> np.ndarray:
        return self._reported.copy()

    @property
    def any_reported(self) -> bool:
        return bool(self._reported.any())

    @property
    def all_reported(self) -> bool:
        return bool(self._reported.all())

    @property
    def resident_rows(self) -> int:
        return len(self._rows)

    def reported_ids(self) -> np.ndarray:
        return np.flatnonzero(self._reported).astype(np.int64)

    def get(self, client: int) -> np.ndarray:
        if not self._reported[client]:
            return np.zeros(self.dim)
        return self._row(client).copy()

    def rows_for(self, ids: np.ndarray) -> np.ndarray:
        """Stacked (len(ids), d) rows in the given id order."""
        out = np.empty((len(ids), self.dim), dtype=np.float64)
        for i, client in enumerate(ids):
            out[i] = self._row(int(client))
        return out

    def full_table(self) -> np.ndarray:
        """Dense (N, d) materialization — O(N) memory, kept for the
        rFedAvg full-table broadcast semantics and debugging; scale-out
        paths use :meth:`reported_rows_except` instead."""
        table = np.zeros((self.num_clients, self.dim), dtype=np.float64)
        ids = self.reported_ids()
        if len(ids):
            table[ids] = self.rows_for(ids)
        return table

    def reported_rows_except(self, client: int) -> np.ndarray | None:
        ids = self.reported_ids()
        ids = ids[ids != client]
        if not len(ids):
            return None
        return self.rows_for(ids)

    def mean_of_others(self, client: int) -> np.ndarray:
        others = self.reported_rows_except(client)
        if others is None:
            if self._reported[client]:
                return self._row(client).copy()
            return np.zeros(self.dim)
        return others.mean(axis=0)

    def pairwise_mean_sq_distance(self, client: int) -> float:
        others = self.reported_rows_except(client)
        if others is None:
            return 0.0
        own = self._row(client) if self._reported[client] else np.zeros(self.dim)
        gaps = others - own
        return float((gaps * gaps).sum(axis=1).mean())

    def delta_inconsistency(self) -> float:
        ids = self.reported_ids()
        if not len(ids):
            return 0.0
        reported = self.rows_for(ids)
        center = reported.mean(axis=0)
        return float(np.linalg.norm(reported - center, axis=1).mean())

    # -- worker-state / checkpoint segments ---------------------------------------
    def worker_segments(self) -> dict[str, np.ndarray]:
        ids = self.reported_ids()
        return {
            "delta_ids": ids,
            "delta_rows": self.rows_for(ids),
            "delta_reported": self._reported,
        }

    def install_worker_segments(self, segments: dict) -> None:
        """Adopt a broadcast sparse snapshot in a worker process.

        Workers only read the table, so the rows live resident without
        a cap (a worker sees one cohort's worth of broadcast state)."""
        ids = np.asarray(segments["delta_ids"], dtype=np.int64)
        rows = np.asarray(segments["delta_rows"], dtype=np.float64)
        self._rows = OrderedDict(
            (int(client), rows[i]) for i, client in enumerate(ids)
        )
        self._spill = None
        self._reported = np.asarray(segments["delta_reported"], dtype=bool)

    def checkpoint_segments(self) -> dict[str, np.ndarray]:
        ids = self.reported_ids()
        return {
            "delta_ids": ids,
            "delta_rows": self.rows_for(ids),
            "delta_reported": self._reported.copy(),
        }

    def restore_checkpoint_segments(self, segments: dict) -> None:
        """Restore a sparse snapshot, or a pre-sharding dense one (the
        layout knob is execution-only, so cross-layout resume is legal)."""
        if "delta_table" in segments:
            reported = np.asarray(segments["delta_reported"], dtype=bool)
            ids = np.flatnonzero(reported).astype(np.int64)
            rows = np.asarray(segments["delta_table"], dtype=np.float64)[ids]
        else:
            reported = np.asarray(segments["delta_reported"], dtype=bool)
            ids = np.asarray(segments["delta_ids"], dtype=np.int64)
            rows = np.asarray(segments["delta_rows"], dtype=np.float64)
        self._rows = OrderedDict()
        self._spill = None
        np.copyto(self._reported, reported)
        for i, client in enumerate(ids):
            self._rows[int(client)] = rows[i].copy()
        self._enforce_cap()

    # -- payload accounting (Table III) -----------------------------------------
    def broadcast_bytes_rfedavg(self) -> int:
        return self.num_clients * self.num_clients * self.dim * self.dtype_bytes

    def broadcast_bytes_rfedavg_plus(self) -> int:
        return self.num_clients * self.dim * self.dtype_bytes

    def upload_bytes(self) -> int:
        return self.num_clients * self.dim * self.dtype_bytes

    def per_client_state_bytes(self, plus: bool) -> int:
        if plus:
            return self.dim * self.dtype_bytes
        return self.num_clients * self.dim * self.dtype_bytes


class DeltaCache:
    """Per-client memoization of raw mean embeddings.

    A client's delta depends on exactly two things: the feature
    extractor's parameters phi and the client's local data.  Both are
    fingerprinted (:func:`repro.nn.serialization.params_fingerprint`,
    :meth:`repro.data.dataset.ArrayDataset.content_fingerprint`) and a
    recomputation is skipped when neither changed since the client's
    last participation — e.g. the round-start refresh in the exact
    variant reuses the deltas the previous round's post-aggregation
    sync computed from the same global model.

    Only the *raw* (pre-privacy) delta is cached: privacy noise draws
    from a per-``(round, client, phase)`` stream and must be applied
    per call, so cached and uncached runs stay bit-identical.

    One entry per client — federated rounds alternate between at most
    two phi versions (pre/post aggregation), and a client re-keys its
    entry whenever phi or its data moves on.

    ``max_entries`` bounds the cache with LRU eviction (a production
    federation can have far more clients than worth caching; an
    unbounded table would grow for the whole run).  Eviction only ever
    forces a recomputation — cached and uncached runs stay bit-identical
    for any limit — and evictions are counted in :attr:`evictions` so
    the obs layer can export them.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ProtocolError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        # Insertion order doubles as recency order: lookups and stores
        # re-insert the client's entry at the end (python dicts preserve
        # insertion order), so the first key is always the LRU victim.
        self._entries: dict[int, tuple[bytes, bytes, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, client: int, phi_fp: bytes, data_fp: bytes) -> np.ndarray | None:
        """The cached delta for ``client``, or None on any mismatch."""
        entry = self._entries.get(client)
        if entry is not None and entry[0] == phi_fp and entry[1] == data_fp:
            self.hits += 1
            # Refresh recency.
            del self._entries[client]
            self._entries[client] = entry
            return entry[2].copy()
        self.misses += 1
        return None

    def store(self, client: int, phi_fp: bytes, data_fp: bytes, delta: np.ndarray) -> None:
        if client in self._entries:
            del self._entries[client]
        elif self.max_entries is not None and len(self._entries) >= self.max_entries:
            victim = next(iter(self._entries))
            del self._entries[victim]
            self.evictions += 1
        self._entries[client] = (phi_fp, data_fp, np.array(delta, copy=True))

    def clear(self) -> None:
        self._entries.clear()

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Entries in recency order plus the hit/miss/eviction counters."""
        return {
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": [
                {"client": client, "phi_fp": phi_fp, "data_fp": data_fp, "delta": delta}
                for client, (phi_fp, data_fp, delta) in self._entries.items()
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore entries *and their recency order* (LRU eviction after
        a resume must pick the same victims an uninterrupted run would)."""
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.evictions = int(state["evictions"])
        self._entries = {
            int(e["client"]): (
                bytes(e["phi_fp"]),
                bytes(e["data_fp"]),
                np.array(e["delta"], copy=True),
            )
            for e in state["entries"]
        }
