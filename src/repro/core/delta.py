"""Per-client mean-embedding tables (the ``delta`` payloads).

Both algorithms exchange mean embeddings ``delta^k = (1/n_k) sum_j
phi(x_{k,j})``.  :class:`DeltaTable` is the server-side store: it tracks
which clients have reported at least once (so the regularizer can stay
inactive until real statistics exist), computes the leave-one-out
averages rFedAvg+ broadcasts, and accounts payload sizes for Table III.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ProtocolError
from repro.nn.dtype import get_default_dtype


class DeltaTable:
    """Server-side store of per-client delta vectors.

    Attributes:
        dim: embedding dimension d.
        num_clients: number of clients N.
        dtype_bytes: bytes per scalar on the wire.  ``None`` follows the
            active dtype policy at construction; the paper reports
            float32 payloads, which an explicit ``4`` reproduces from a
            float64 training run.
    """

    def __init__(self, num_clients: int, dim: int, dtype_bytes: int | None = None) -> None:
        if num_clients <= 0 or dim <= 0:
            raise ProtocolError("num_clients and dim must be positive")
        self.num_clients = num_clients
        self.dim = dim
        self.dtype_bytes = (
            int(dtype_bytes) if dtype_bytes is not None else get_default_dtype().itemsize
        )
        self._table = np.zeros((num_clients, dim), dtype=np.float64)
        self._reported = np.zeros(num_clients, dtype=bool)

    # -- worker-state views (wire transport) -------------------------------------
    def state_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The raw ``(table, reported)`` arrays, without copying — used
        to pack the table into a round-state broadcast."""
        return self._table, self._reported

    def install_views(self, table: np.ndarray, reported: np.ndarray) -> None:
        """Adopt shared (read-only) backing arrays in a worker process.

        Worker-side code only reads the table (updates are committed by
        the parent), so read-only views are sufficient; the read
        accessors below copy before returning as they always did.
        """
        if table.shape != (self.num_clients, self.dim):
            raise ProtocolError(f"table shape {table.shape} != "
                                f"({self.num_clients}, {self.dim})")
        self._table = table
        self._reported = reported

    # -- updates ---------------------------------------------------------------
    def update(self, client: int, delta: np.ndarray) -> None:
        """Store client's freshly computed mean embedding."""
        delta = np.asarray(delta, dtype=np.float64)
        if delta.shape != (self.dim,):
            raise ProtocolError(f"delta shape {delta.shape} != ({self.dim},)")
        self._table[client] = delta
        self._reported[client] = True

    # -- reads -----------------------------------------------------------------
    @property
    def reported_mask(self) -> np.ndarray:
        """Boolean mask of clients that have reported at least once."""
        return self._reported.copy()

    @property
    def any_reported(self) -> bool:
        return bool(self._reported.any())

    @property
    def all_reported(self) -> bool:
        return bool(self._reported.all())

    def get(self, client: int) -> np.ndarray:
        return self._table[client].copy()

    def full_table(self) -> np.ndarray:
        """The full (N, d) table — what rFedAvg broadcasts to every client."""
        return self._table.copy()

    def mean_of_others(self, client: int) -> np.ndarray:
        """Leave-one-out average over *reported* clients other than ``client``.

        This is ``delta^{-k}`` in Algorithm 2.  Falls back to the global
        reported mean when only the client itself has reported, and to
        zeros when nobody has (callers should gate on
        :attr:`any_reported` anyway).
        """
        mask = self._reported.copy()
        mask[client] = False
        if not mask.any():
            if self._reported[client]:
                return self._table[client].copy()
            return np.zeros(self.dim)
        return self._table[mask].mean(axis=0)

    def pairwise_mean_sq_distance(self, client: int) -> float:
        """r_k = (1/(N-1)) sum_{j != k} ||delta^k - delta^j||^2 over reported js."""
        mask = self._reported.copy()
        mask[client] = False
        if not mask.any():
            return 0.0
        gaps = self._table[mask] - self._table[client]
        return float((gaps * gaps).sum(axis=1).mean())

    def delta_inconsistency(self) -> float:
        """Mean distance of reported deltas to their common mean.

        Diagnostic for the rFedAvg drawback the paper calls "inconsistent
        calculation of mappings": deltas computed from divergent local
        models scatter more widely than deltas computed from one global
        model.
        """
        if not self._reported.any():
            return 0.0
        reported = self._table[self._reported]
        center = reported.mean(axis=0)
        return float(np.linalg.norm(reported - center, axis=1).mean())

    # -- payload accounting (Table III) -----------------------------------------
    def broadcast_bytes_rfedavg(self) -> int:
        """Per-round broadcast: every client gets the full table (N*d each)."""
        return self.num_clients * self.num_clients * self.dim * self.dtype_bytes

    def broadcast_bytes_rfedavg_plus(self) -> int:
        """Per-round broadcast: every client gets only its own delta^{-k}."""
        return self.num_clients * self.dim * self.dtype_bytes

    def upload_bytes(self) -> int:
        """Per-round upload: every client sends its own delta (both algs)."""
        return self.num_clients * self.dim * self.dtype_bytes

    def per_client_state_bytes(self, plus: bool) -> int:
        """Size of the delta state one client must hold (Table III rows)."""
        if plus:
            return self.dim * self.dtype_bytes
        return self.num_clients * self.dim * self.dtype_bytes


class DeltaCache:
    """Per-client memoization of raw mean embeddings.

    A client's delta depends on exactly two things: the feature
    extractor's parameters phi and the client's local data.  Both are
    fingerprinted (:func:`repro.nn.serialization.params_fingerprint`,
    :meth:`repro.data.dataset.ArrayDataset.content_fingerprint`) and a
    recomputation is skipped when neither changed since the client's
    last participation — e.g. the round-start refresh in the exact
    variant reuses the deltas the previous round's post-aggregation
    sync computed from the same global model.

    Only the *raw* (pre-privacy) delta is cached: privacy noise draws
    from a per-``(round, client, phase)`` stream and must be applied
    per call, so cached and uncached runs stay bit-identical.

    One entry per client — federated rounds alternate between at most
    two phi versions (pre/post aggregation), and a client re-keys its
    entry whenever phi or its data moves on.

    ``max_entries`` bounds the cache with LRU eviction (a production
    federation can have far more clients than worth caching; an
    unbounded table would grow for the whole run).  Eviction only ever
    forces a recomputation — cached and uncached runs stay bit-identical
    for any limit — and evictions are counted in :attr:`evictions` so
    the obs layer can export them.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ProtocolError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        # Insertion order doubles as recency order: lookups and stores
        # re-insert the client's entry at the end (python dicts preserve
        # insertion order), so the first key is always the LRU victim.
        self._entries: dict[int, tuple[bytes, bytes, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, client: int, phi_fp: bytes, data_fp: bytes) -> np.ndarray | None:
        """The cached delta for ``client``, or None on any mismatch."""
        entry = self._entries.get(client)
        if entry is not None and entry[0] == phi_fp and entry[1] == data_fp:
            self.hits += 1
            # Refresh recency.
            del self._entries[client]
            self._entries[client] = entry
            return entry[2].copy()
        self.misses += 1
        return None

    def store(self, client: int, phi_fp: bytes, data_fp: bytes, delta: np.ndarray) -> None:
        if client in self._entries:
            del self._entries[client]
        elif self.max_entries is not None and len(self._entries) >= self.max_entries:
            victim = next(iter(self._entries))
            del self._entries[victim]
            self.evictions += 1
        self._entries[client] = (phi_fp, data_fp, np.array(delta, copy=True))

    def clear(self) -> None:
        self._entries.clear()

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Entries in recency order plus the hit/miss/eviction counters."""
        return {
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": [
                {"client": client, "phi_fp": phi_fp, "data_fp": data_fp, "delta": delta}
                for client, (phi_fp, data_fp, delta) in self._entries.items()
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore entries *and their recency order* (LRU eviction after
        a resume must pick the same victims an uninterrupted run would)."""
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.evictions = int(state["evictions"])
        self._entries = {
            int(e["client"]): (
                bytes(e["phi_fp"]),
                bytes(e["data_fp"]),
                np.array(e["delta"], copy=True),
            )
            for e in state["entries"]
        }
