"""Fairness statistics over per-client accuracies (Fig. 11)."""

from __future__ import annotations

import numpy as np


def worst_k_mean(per_client_accuracy: np.ndarray, k: int = 5) -> float:
    """Mean accuracy of the k worst-served clients."""
    acc = np.sort(np.asarray(per_client_accuracy, dtype=np.float64))
    if k <= 0:
        raise ValueError("k must be positive")
    return float(acc[:k].mean())


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of per-client accuracy (0 = perfectly fair)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    n = len(v)
    if n == 0:
        raise ValueError("empty input")
    total = v.sum()
    if total == 0:
        return 0.0
    index = np.arange(1, n + 1)
    return float((2.0 * (index * v).sum() - (n + 1) * total) / (n * total))


def fairness_report(per_client_accuracy: np.ndarray, worst_k: int = 5) -> dict[str, float]:
    """Summary used by the fairness bench: mean, spread, worst clients."""
    acc = np.asarray(per_client_accuracy, dtype=np.float64)
    return {
        "mean": float(acc.mean()),
        "std": float(acc.std()),
        "min": float(acc.min()),
        "max": float(acc.max()),
        f"worst{worst_k}_mean": worst_k_mean(acc, worst_k),
        "gini": gini_coefficient(acc),
    }
