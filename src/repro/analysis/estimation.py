"""Empirical estimation of the convergence-theory constants.

Theorems 1 and 2 are stated in terms of abstract constants — smoothness
L, strong convexity mu, gradient bounds G and G', the feature-map
gradient bound H and diameter tau.  To *instantiate* the bounds on a
concrete model/dataset (as the theory bench does), those constants must
be measured.  This module estimates each one by randomized probing:

* L and mu — extremal curvature along random directions, measured as
  gradient differences over small parameter perturbations;
* G (and G') — max stochastic gradient norm over sampled minibatches;
* H — max norm of the feature-extractor Jacobian-transpose action on
  random unit vectors (a lower bound on the operator norm, tight enough
  for bound instantiation when maxed over many probes);
* tau — max pairwise distance between per-client mean embeddings.

All estimators are randomized lower bounds of the true suprema (upper
bounds for mu); callers should inflate/deflate by a safety factor when
instantiating worst-case bounds.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ArrayDataset, FederatedDataset
from repro.exceptions import ConfigError
from repro.fl.client import compute_mean_embedding
from repro.models.split import SplitModel
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.serialization import get_flat_grads, get_flat_params, set_flat_params


def _full_gradient(model: SplitModel, data: ArrayDataset, l2: float = 0.0) -> np.ndarray:
    """Gradient of the (optionally L2-regularized) empirical risk."""
    loss_fn = SoftmaxCrossEntropy()
    loss_fn.forward(model.forward(data.x), data.y)
    model.zero_grad()
    model.backward(loss_fn.backward())
    grad = get_flat_grads(model)
    if l2:
        grad = grad + l2 * get_flat_params(model)
    return grad


def estimate_curvature_range(
    model: SplitModel,
    data: ArrayDataset,
    num_probes: int = 20,
    epsilon: float = 1e-4,
    l2: float = 0.0,
    seed: int = 0,
) -> tuple[float, float]:
    """Estimate (mu, L): extremal directional curvatures of the risk.

    For random unit directions d, the Rayleigh-like quotient
    ``(grad(w + eps d) - grad(w)) . d / eps`` samples the Hessian
    spectrum; its min/max over probes bound (mu, L) from inside.
    """
    if num_probes < 1:
        raise ConfigError("num_probes must be positive")
    rng = np.random.default_rng(seed)
    w0 = get_flat_params(model)
    g0 = _full_gradient(model, data, l2)
    curvatures = []
    for _ in range(num_probes):
        direction = rng.normal(size=w0.size)
        direction /= np.linalg.norm(direction)
        set_flat_params(model, w0 + epsilon * direction)
        g1 = _full_gradient(model, data, l2)
        curvatures.append(float((g1 - g0) @ direction) / epsilon)
    set_flat_params(model, w0)
    return min(curvatures), max(curvatures)


def estimate_gradient_bound(
    model: SplitModel,
    fed: FederatedDataset,
    batch_size: int = 32,
    num_samples: int = 30,
    seed: int = 0,
) -> float:
    """G: max stochastic-gradient norm over sampled client minibatches."""
    rng = np.random.default_rng(seed)
    loss_fn = SoftmaxCrossEntropy()
    worst = 0.0
    for _ in range(num_samples):
        client = int(rng.integers(0, fed.num_clients))
        x, y = fed.clients[client].sample_batch(batch_size, rng)
        loss_fn.forward(model.forward(x), y)
        model.zero_grad()
        model.backward(loss_fn.backward())
        worst = max(worst, float(np.linalg.norm(get_flat_grads(model))))
    return worst


def estimate_phi_gradient_bound(
    model: SplitModel,
    data: ArrayDataset,
    num_probes: int = 10,
    batch_size: int = 16,
    seed: int = 0,
) -> float:
    """H: max ||J_phi^T v|| over random unit feature directions v.

    Backpropagating a unit vector through the feature extractor yields
    the Jacobian-transpose action; the max over probes lower-bounds the
    operator norm of grad phi.
    """
    if not model.features.parameters():
        return 0.0  # parameter-free phi (e.g. raw flatten) has no gradient
    rng = np.random.default_rng(seed)
    worst = 0.0
    for _ in range(num_probes):
        x, _y = data.sample_batch(batch_size, rng)
        feats = model.features.forward(x)
        v = rng.normal(size=feats.shape)
        v /= np.linalg.norm(v)
        model.zero_grad()
        model.features.backward(v)
        phi_grads = np.concatenate(
            [p.grad.reshape(-1) for p in model.features.parameters()]
        )
        worst = max(worst, float(np.linalg.norm(phi_grads)))
    return worst


def estimate_embedding_diameter(model: SplitModel, fed: FederatedDataset) -> float:
    """tau: max pairwise distance between client mean embeddings."""
    deltas = np.stack(
        [compute_mean_embedding(model, shard) for shard in fed.clients]
    )
    worst = 0.0
    for i in range(len(deltas)):
        gaps = np.linalg.norm(deltas[i + 1 :] - deltas[i], axis=1)
        if len(gaps):
            worst = max(worst, float(gaps.max()))
    return worst


def estimate_problem_constants(
    model: SplitModel,
    fed: FederatedDataset,
    local_steps: int,
    lam: float,
    l2: float = 1e-2,
    seed: int = 0,
):
    """One-call estimation of a full :class:`ProblemConstants` set.

    The strong-convexity estimate is floored at the explicit L2 weight
    (which is a certified lower bound when the risk itself is convex).
    """
    from repro.analysis.convergence import ProblemConstants

    pooled_x = np.concatenate([c.x for c in fed.clients])
    pooled_y = np.concatenate([c.y for c in fed.clients])
    pooled = ArrayDataset(pooled_x, pooled_y)
    mu_hat, l_hat = estimate_curvature_range(model, pooled, l2=l2, seed=seed)
    g_hat = estimate_gradient_bound(model, fed, seed=seed)
    h_hat = estimate_phi_gradient_bound(model, pooled, seed=seed)
    tau_hat = estimate_embedding_diameter(model, fed)
    mu = max(mu_hat, l2)
    big_l = max(l_hat, mu + 1e-9)
    return ProblemConstants(
        smoothness=big_l,
        strong_convexity=mu,
        grad_bound=g_hat,
        grad_bound_reg=g_hat * (1.0 + lam * max(tau_hat, 1.0)),
        phi_grad_bound=max(h_hat, 1e-9),
        diameter=max(tau_hat, 1e-9),
        local_steps=local_steps,
        num_clients=fed.num_clients,
        lam=lam,
    )
