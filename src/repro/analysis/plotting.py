"""Terminal plotting: ASCII line charts and sparklines.

The repository is offline-first (no matplotlib), but the paper's results
are curves; these helpers render accuracy/loss trajectories directly in
the terminal so examples and ad-hoc exploration stay self-contained.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray) -> str:
    """One-line unicode sparkline of a series."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ConfigError("cannot sparkline an empty series")
    lo, hi = float(values.min()), float(values.max())
    if hi == lo:
        return _SPARK_LEVELS[0] * values.size
    scaled = (values - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(s))] for s in scaled)


def ascii_plot(
    series: dict[str, np.ndarray],
    width: int = 60,
    height: int = 12,
    y_label: str = "",
) -> str:
    """Multi-series ASCII line chart.

    Args:
        series: name -> (n, 2) array of (x, y) points (History
            ``accuracies()`` output plugs in directly).
        width, height: plot area in characters.
        y_label: optional axis caption.

    Each series is drawn with its own marker; a legend follows the plot.
    """
    if not series:
        raise ConfigError("nothing to plot")
    markers = "*o+x#@%&"
    cleaned = {}
    for name, points in series.items():
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2 or len(points) == 0:
            raise ConfigError(f"series {name!r} must be a non-empty (n, 2) array")
        cleaned[name] = points

    all_x = np.concatenate([p[:, 0] for p in cleaned.values()])
    all_y = np.concatenate([p[:, 1] for p in cleaned.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, points) in enumerate(cleaned.items()):
        marker = markers[idx % len(markers)]
        for x, y in points:
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_lo) / y_span * (height - 1)))
            grid[row][col] = marker

    lines = []
    if y_label:
        lines.append(y_label)
    for row_idx, row in enumerate(grid):
        y_val = y_hi - row_idx * y_span / (height - 1)
        lines.append(f"{y_val:8.3f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x_lo:<.0f}" + " " * max(1, width - 12) + f"{x_hi:>.0f}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(cleaned)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def plot_histories(histories: dict[str, "object"], metric: str = "accuracy", **kwargs) -> str:
    """Convenience: plot several :class:`~repro.fl.metrics.History` runs."""
    series = {}
    for name, history in histories.items():
        if metric == "accuracy":
            series[name] = history.accuracies()
        elif metric == "loss":
            rounds = history.rounds().astype(np.float64)
            series[name] = np.column_stack([rounds, history.train_losses()])
        else:
            raise ConfigError(f"unknown metric {metric!r}")
    return ascii_plot(series, **kwargs)
