"""Exact t-SNE in numpy, plus feature-geometry scores for Fig. 1.

The paper's Fig. 1 embeds last-FC-layer features of FedAvg-trained
models with t-SNE and observes that, under non-IID partitions, different
clients' feature clouds disagree.  Our reproduction provides (a) the
embedding itself (:func:`tsne`, the exact O(n^2) algorithm — fine for
the few hundred points the figure uses) and (b) two quantitative scores
so the bench can assert the observation instead of eyeballing a plot:

* :func:`class_separation_score` — between-class vs within-class
  distance ratio in feature space (higher = cleaner clusters);
* :func:`client_feature_discrepancy` — mean pairwise linear MMD between
  the per-client feature distributions of the *same* class (higher =
  clients disagree about what the class looks like, the non-IID
  signature of Fig. 1d-f).
"""

from __future__ import annotations

import numpy as np

from repro.core.mmd import linear_mmd
from repro.exceptions import ConfigError


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    sq = (x * x).sum(axis=1)
    return np.maximum(sq[:, None] + sq[None, :] - 2.0 * (x @ x.T), 0.0)


def _binary_search_perplexity(
    dists_row: np.ndarray, perplexity: float, tol: float = 1e-5, max_iter: int = 50
) -> np.ndarray:
    """Find the Gaussian precision giving the target perplexity for one row."""
    target_entropy = np.log(perplexity)
    beta, beta_min, beta_max = 1.0, 0.0, np.inf
    probs = np.zeros_like(dists_row)
    for _ in range(max_iter):
        probs = np.exp(-dists_row * beta)
        total = probs.sum()
        if total <= 0:
            probs = np.full_like(dists_row, 1.0 / len(dists_row))
            break
        probs /= total
        entropy = -(probs * np.log(np.maximum(probs, 1e-12))).sum()
        diff = entropy - target_entropy
        if abs(diff) < tol:
            break
        if diff > 0:  # too flat -> sharpen
            beta_min = beta
            beta = beta * 2.0 if beta_max == np.inf else (beta + beta_max) / 2.0
        else:
            beta_max = beta
            beta = beta / 2.0 if beta_min == 0.0 else (beta + beta_min) / 2.0
    return probs


def _joint_probabilities(features: np.ndarray, perplexity: float) -> np.ndarray:
    n = len(features)
    dists = _pairwise_sq_dists(features)
    p_cond = np.zeros((n, n))
    for i in range(n):
        row = np.delete(dists[i], i)
        probs = _binary_search_perplexity(row, perplexity)
        p_cond[i, np.arange(n) != i] = probs
    p_joint = (p_cond + p_cond.T) / (2.0 * n)
    return np.maximum(p_joint, 1e-12)


def tsne(
    features: np.ndarray,
    dim: int = 2,
    perplexity: float = 20.0,
    iterations: int = 300,
    learning_rate: float = 100.0,
    seed: int = 0,
    early_exaggeration: float = 4.0,
    exaggeration_iters: int = 50,
) -> np.ndarray:
    """Embed ``features`` (n, d) into ``dim`` dimensions with exact t-SNE.

    Standard van der Maaten & Hinton formulation: Gaussian input
    affinities calibrated per-point to ``perplexity``, Student-t output
    affinities, KL-divergence gradient descent with momentum and early
    exaggeration.
    """
    features = np.asarray(features, dtype=np.float64)
    n = len(features)
    if n < 5:
        raise ConfigError("t-SNE needs at least 5 points")
    perplexity = min(perplexity, (n - 1) / 3.0)
    p = _joint_probabilities(features, perplexity) * early_exaggeration

    rng = np.random.default_rng(seed)
    y = rng.normal(0.0, 1e-4, size=(n, dim))
    velocity = np.zeros_like(y)
    for it in range(iterations):
        if it == exaggeration_iters:
            p = p / early_exaggeration
        num = 1.0 / (1.0 + _pairwise_sq_dists(y))
        np.fill_diagonal(num, 0.0)
        q = np.maximum(num / num.sum(), 1e-12)
        pq = (p - q) * num
        grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)
        momentum = 0.5 if it < 250 else 0.8
        velocity = momentum * velocity - learning_rate * grad
        y = y + velocity
        y = y - y.mean(axis=0)
    return y


def class_separation_score(features: np.ndarray, labels: np.ndarray) -> float:
    """Between-class / within-class mean-distance ratio (>1 = separated)."""
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels)
    classes = np.unique(labels)
    if len(classes) < 2:
        raise ConfigError("need at least two classes")
    centroids = np.stack([features[labels == c].mean(axis=0) for c in classes])
    within = np.mean(
        [
            np.linalg.norm(features[labels == c] - centroids[i], axis=1).mean()
            for i, c in enumerate(classes)
        ]
    )
    between_dists = _pairwise_sq_dists(centroids)
    between = np.sqrt(between_dists[np.triu_indices(len(classes), k=1)]).mean()
    if within == 0:
        return np.inf
    return float(between / within)


def client_marginal_discrepancy(features_per_client: list[np.ndarray]) -> float:
    """Mean pairwise linear MMD between clients' *marginal* feature clouds.

    This is the quantity the paper's regularizer drives down (Eq. 2 on
    the marginal distributions P(phi(x_k))): under an IID partition every
    client's feature marginal matches (score ~ sampling noise), under a
    label-skewed partition each client occupies its own region of
    feature space (score large) — Fig. 1's panels (a-c) vs (d-f).
    """
    clouds = [np.asarray(f, dtype=np.float64) for f in features_per_client]
    if len(clouds) < 2:
        raise ConfigError("need at least two clients")
    total, count = 0.0, 0
    for i in range(len(clouds)):
        for j in range(i + 1, len(clouds)):
            total += linear_mmd(clouds[i], clouds[j])
            count += 1
    return total / count


def client_feature_discrepancy(
    features_per_client: list[np.ndarray], labels_per_client: list[np.ndarray]
) -> float:
    """Mean pairwise linear MMD between clients' same-class feature clouds.

    For each class present on two or more clients, compute the linear
    MMD between every client pair's embeddings of that class; average
    over classes and pairs.  IID clients agree (small value); label- or
    feature-skewed clients disagree (large value) — Fig. 1's phenomenon
    as a single number.
    """
    if len(features_per_client) != len(labels_per_client):
        raise ConfigError("features and labels lists must align")
    all_classes = np.unique(np.concatenate(labels_per_client))
    total, count = 0.0, 0
    for cls in all_classes:
        clouds = [
            f[l == cls]
            for f, l in zip(features_per_client, labels_per_client)
            if (l == cls).sum() >= 2
        ]
        for i in range(len(clouds)):
            for j in range(i + 1, len(clouds)):
                total += linear_mmd(clouds[i], clouds[j])
                count += 1
    if count == 0:
        return 0.0
    return total / count
