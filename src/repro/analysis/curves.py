"""Training-curve shape statistics.

The paper's Sec. VI-B2 observes that "the baselines' curves of test
accuracy oscillate violently especially in cross-device settings while
those of rFedAvg and rFedAvg+ look more stable with higher averages."
These helpers turn that visual claim into numbers the benches can
assert: an oscillation score, a monotone-trend fit, and the area under
the accuracy curve (a convergence-speed summary).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError


def _validate_curve(curve: np.ndarray) -> np.ndarray:
    curve = np.asarray(curve, dtype=np.float64)
    if curve.ndim != 2 or curve.shape[1] != 2 or len(curve) < 3:
        raise DataError("curve must be an (n >= 3, 2) array of (round, value)")
    return curve


def oscillation_score(curve: np.ndarray) -> float:
    """Mean absolute step-to-step change of the value series.

    Stable curves score near 0; violently oscillating ones score high.
    """
    curve = _validate_curve(curve)
    return float(np.abs(np.diff(curve[:, 1])).mean())


def detrended_oscillation(curve: np.ndarray) -> float:
    """Oscillation net of the linear trend — pure wobble.

    A fast-but-smooth learner has a large raw oscillation score simply
    because it improves; subtracting the fitted linear trend isolates
    the instability the paper's figure shows.
    """
    curve = _validate_curve(curve)
    rounds, values = curve[:, 0], curve[:, 1]
    slope, intercept = np.polyfit(rounds, values, 1)
    residual = values - (slope * rounds + intercept)
    return float(np.abs(np.diff(residual)).mean())


def trend_slope(curve: np.ndarray) -> float:
    """Slope of the least-squares linear fit (value per round)."""
    curve = _validate_curve(curve)
    slope, _ = np.polyfit(curve[:, 0], curve[:, 1], 1)
    return float(slope)


def area_under_curve(curve: np.ndarray) -> float:
    """Trapezoidal AUC normalized by the round span.

    Two methods with the same final accuracy but different convergence
    speed separate here: faster convergence = larger normalized AUC.
    """
    curve = _validate_curve(curve)
    rounds, values = curve[:, 0], curve[:, 1]
    span = rounds[-1] - rounds[0]
    if span <= 0:
        raise DataError("curve must span more than one round")
    return float(np.trapezoid(values, rounds) / span)
