"""Evaluators for the paper's convergence bounds (Sec. V).

These functions compute the *theoretical* right-hand sides of Lemma 1
and Theorems 1 and 2 for given problem constants, so experiments can (a)
overlay the O(1/T) envelope on measured optimality gaps and (b) verify
the paper's qualitative claim C2 < C3 (the double synchronization of
rFedAvg+ shrinks the approximation constant).

Notation follows the paper:
    L, mu       smoothness / strong convexity of the local objectives
    G, G'       gradient-norm bounds (plain / regularized objectives)
    H           bound on ||grad phi||
    tau         diameter bound on the embedding space
    sigma_k     per-client gradient noise
    E           local steps; m = N - 1 peers in the regularizer
    lambda      regularization weight
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError
from repro.nn.optim import InverseDecayLR


@dataclass(frozen=True)
class ProblemConstants:
    """The constants appearing in Assumptions A1-A6."""

    smoothness: float  # L
    strong_convexity: float  # mu
    grad_bound: float  # G
    grad_bound_reg: float  # G'
    phi_grad_bound: float  # H
    diameter: float  # tau
    local_steps: int  # E
    num_clients: int  # N
    lam: float  # lambda
    noise_bound: float = 1.0  # max_k sigma_k
    weights: np.ndarray | None = None  # p_k, defaults to uniform

    def __post_init__(self) -> None:
        if self.smoothness < self.strong_convexity:
            raise ConfigError("need L >= mu")
        if min(self.strong_convexity, self.grad_bound, self.phi_grad_bound) <= 0:
            raise ConfigError("constants must be positive")
        if self.local_steps <= 0 or self.num_clients <= 1:
            raise ConfigError("need E >= 1 and N >= 2")

    @property
    def kappa(self) -> float:
        return self.smoothness / self.strong_convexity

    @property
    def gamma(self) -> float:
        """gamma = max(8 kappa, E) from Lemma 1."""
        return max(8.0 * self.kappa, float(self.local_steps))

    @property
    def m(self) -> int:
        """Number of regularizer peers, m = N - 1."""
        return self.num_clients - 1

    def p(self) -> np.ndarray:
        if self.weights is not None:
            return np.asarray(self.weights, dtype=np.float64)
        return np.full(self.num_clients, 1.0 / self.num_clients)


def theory_schedule(constants: ProblemConstants) -> InverseDecayLR:
    """The learning rate eta_t = 2 / (mu (gamma + t)) assumed by the theory."""
    return InverseDecayLR(scale=2.0 / constants.strong_convexity, gamma=constants.gamma)


def fedavg_bound(
    t: int, constants: ProblemConstants, initial_gap: float
) -> float:
    """Lemma 1 (Li et al. 2020): E||w_t - w*||^2 <= v / (t + gamma).

    ``initial_gap`` is E||w_1 - w*||^2.  B collects the heterogeneity
    term; we use the standard instantiation
    B = sum p_k^2 sigma_k^2 + 6 L Gamma + 8 (E-1)^2 G^2 with Gamma
    conservatively folded into the noise bound.
    """
    mu, ell = constants.strong_convexity, constants.smoothness
    e_steps, g = constants.local_steps, constants.grad_bound
    p = constants.p()
    b_term = (
        float((p**2).sum()) * constants.noise_bound**2
        + 6.0 * ell * constants.noise_bound
        + 8.0 * (e_steps - 1) ** 2 * g**2
    )
    beta = 2.0 / mu
    v = max(beta**2 * b_term / (beta * mu - 1.0), (constants.gamma + 1.0) * initial_gap)
    return v / (t + constants.gamma)


def constant_c1(constants: ProblemConstants) -> float:
    """C1 = sum_k p_k (2E^2 (G^2 + G'^2 + 2GG') + 16G^2 + 32 m^2 H^2 tau^2)."""
    g, gp = constants.grad_bound, constants.grad_bound_reg
    e_steps, m = constants.local_steps, constants.m
    h, tau = constants.phi_grad_bound, constants.diameter
    per_client = (
        2.0 * e_steps**2 * (g**2 + gp**2 + 2.0 * g * gp)
        + 16.0 * g**2
        + 32.0 * m**2 * h**2 * tau**2
    )
    return float(constants.p().sum() * per_client)


def constant_c2(constants: ProblemConstants) -> float:
    """C2 = sum_k 16 p_k m^2 E^2 H^4 (3G^2 + G'^2) — the rFedAvg+ constant."""
    g, gp = constants.grad_bound, constants.grad_bound_reg
    e_steps, m, h = constants.local_steps, constants.m, constants.phi_grad_bound
    per_client = 16.0 * m**2 * e_steps**2 * h**4 * (3.0 * g**2 + gp**2)
    return float(constants.p().sum() * per_client)


def constant_c3(constants: ProblemConstants) -> float:
    """C3 = sum_k 64 p_k m^2 E^2 H^4 (4G^2 + G'^2 + 2 lambda^2 (2G^2+3G'^2)).

    The rFedAvg constant; strictly larger than C2 for any valid
    constants, which is the paper's formal argument for the double
    synchronization in rFedAvg+.
    """
    g, gp = constants.grad_bound, constants.grad_bound_reg
    e_steps, m, h = constants.local_steps, constants.m, constants.phi_grad_bound
    lam = constants.lam
    per_client = (
        64.0
        * m**2
        * e_steps**2
        * h**4
        * (4.0 * g**2 + gp**2 + 2.0 * lam**2 * (2.0 * g**2 + 3.0 * gp**2))
    )
    return float(constants.p().sum() * per_client)


def _regularized_bound(
    t: int, constants: ProblemConstants, initial_gap: float, c_extra: float
) -> float:
    """Shared Thm. 1/2 shape: (L/2) v' / (t + gamma - E)."""
    if t + constants.gamma - constants.local_steps <= 0:
        raise ConfigError("bound undefined for t <= E - gamma")
    mu = constants.strong_convexity
    v = fedavg_bound(t, constants, initial_gap) * (t + constants.gamma)  # recover v
    c1 = constant_c1(constants)
    v_prime = 2.0 * v + 8.0 * c1 / mu**2 + 32.0 * c_extra / mu**4
    return 0.5 * constants.smoothness * v_prime / (t + constants.gamma - constants.local_steps)


def theorem1_bound(t: int, constants: ProblemConstants, initial_gap: float) -> float:
    """Theorem 1: the rFedAvg+ optimality-gap bound at global step t."""
    return _regularized_bound(t, constants, initial_gap, constant_c2(constants))


def theorem2_bound(t: int, constants: ProblemConstants, initial_gap: float) -> float:
    """Theorem 2: the rFedAvg optimality-gap bound at global step t."""
    return _regularized_bound(t, constants, initial_gap, constant_c3(constants))
