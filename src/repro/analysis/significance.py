"""Statistical comparison of repeated federated runs.

Accuracy differences between FL methods are often within seed noise;
these helpers decide when a reported win is real.  Used by the analysis
notebook-style examples and available to the benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import DataError


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of comparing method A against method B."""

    mean_a: float
    mean_b: float
    difference: float  # mean_a - mean_b
    p_value: float
    significant: bool
    ci_low: float
    ci_high: float


def paired_comparison(
    accs_a: np.ndarray,
    accs_b: np.ndarray,
    alpha: float = 0.05,
) -> ComparisonResult:
    """Paired t-test on matched-seed accuracy pairs.

    Runs must be *paired* — same seeds, same data partitions — which is
    exactly what :func:`repro.experiments.compare_algorithms` produces.
    """
    a = np.asarray(accs_a, dtype=np.float64)
    b = np.asarray(accs_b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1 or len(a) < 2:
        raise DataError("need two equal-length 1-D arrays with >= 2 repeats")
    diff = a - b
    t_stat, p_value = stats.ttest_rel(a, b)
    sem = stats.sem(diff)
    if sem == 0:
        ci_low = ci_high = float(diff.mean())
    else:
        ci = stats.t.interval(1.0 - alpha, len(diff) - 1, loc=diff.mean(), scale=sem)
        ci_low, ci_high = float(ci[0]), float(ci[1])
    return ComparisonResult(
        mean_a=float(a.mean()),
        mean_b=float(b.mean()),
        difference=float(diff.mean()),
        p_value=float(p_value),
        significant=bool(p_value < alpha),
        ci_low=ci_low,
        ci_high=ci_high,
    )


def bootstrap_ci(
    values: np.ndarray,
    num_resamples: int = 2000,
    alpha: float = 0.05,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI of the mean."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or len(values) < 2:
        raise DataError("need a 1-D array with >= 2 values")
    rng = np.random.default_rng(seed)
    means = np.array([
        values[rng.integers(0, len(values), len(values))].mean()
        for _ in range(num_resamples)
    ])
    lo, hi = np.percentile(means, [100 * alpha / 2, 100 * (1 - alpha / 2)])
    return float(lo), float(hi)
