"""Analysis utilities: theory bounds, fairness statistics, t-SNE."""

from repro.analysis.convergence import (
    ProblemConstants,
    fedavg_bound,
    constant_c1,
    constant_c2,
    constant_c3,
    theorem1_bound,
    theorem2_bound,
    theory_schedule,
)
from repro.analysis.fairness import fairness_report, gini_coefficient, worst_k_mean
from repro.analysis.tsne import (
    tsne,
    class_separation_score,
    client_feature_discrepancy,
    client_marginal_discrepancy,
)
from repro.analysis.curves import (
    oscillation_score,
    detrended_oscillation,
    trend_slope,
    area_under_curve,
)
from repro.analysis.significance import ComparisonResult, paired_comparison, bootstrap_ci
from repro.analysis.plotting import sparkline, ascii_plot, plot_histories
from repro.analysis.estimation import (
    estimate_curvature_range,
    estimate_gradient_bound,
    estimate_phi_gradient_bound,
    estimate_embedding_diameter,
    estimate_problem_constants,
)

__all__ = [
    "ProblemConstants",
    "fedavg_bound",
    "constant_c1",
    "constant_c2",
    "constant_c3",
    "theorem1_bound",
    "theorem2_bound",
    "theory_schedule",
    "fairness_report",
    "gini_coefficient",
    "worst_k_mean",
    "tsne",
    "class_separation_score",
    "client_feature_discrepancy",
    "client_marginal_discrepancy",
    "oscillation_score",
    "detrended_oscillation",
    "trend_slope",
    "area_under_curve",
    "ComparisonResult",
    "paired_comparison",
    "bootstrap_ci",
    "estimate_curvature_range",
    "estimate_gradient_bound",
    "estimate_phi_gradient_bound",
    "estimate_embedding_diameter",
    "estimate_problem_constants",
    "sparkline",
    "ascii_plot",
    "plot_histories",
]
