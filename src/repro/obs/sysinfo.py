"""Process-level system gauges (resident memory).

Cross-device scale-out lives or dies by memory flatness: a
million-client population must not cost more resident memory than a
ten-thousand-client one.  These helpers read the numbers the scale
gauges and ``benchmarks/bench_scale.py`` gate on, with no dependencies
beyond ``/proc`` (Linux) and the stdlib ``resource`` fallback.
"""

from __future__ import annotations

import resource
import sys


def current_rss_bytes() -> int:
    """This process's current resident set size in bytes.

    Prefers ``/proc/self/status`` (VmRSS, instantaneous); falls back to
    ``getrusage`` ru_maxrss (the lifetime *peak*) where /proc is absent.
    Returns 0 when neither source is readable.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return peak_rss_bytes()


def peak_rss_bytes() -> int:
    """This process's lifetime peak resident set size in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; it is
    monotone, so per-scenario measurements need a subprocess each
    (which is exactly how bench_scale.py uses it).
    """
    try:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ValueError, OSError):
        return 0
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


def record_scale_gauges(tracer, fed) -> None:
    """Export population / live-shard / RSS gauges for one round.

    No-op for an untraced run.  ``scale.live_clients`` only exists for
    virtual populations (materialized shard count, bounded by the LRU);
    ``scale.rss_mb`` tracks resident memory so a scale run's flatness
    shows up in the trace without external tooling.
    """
    if not tracer.enabled:
        return
    tracer.metrics.gauge("scale.population").set(float(fed.num_clients))
    live = getattr(getattr(fed, "clients", None), "live_clients", None)
    if live is not None:
        tracer.metrics.gauge("scale.live_clients").set(float(live))
    rss = current_rss_bytes()
    if rss:
        tracer.metrics.gauge("scale.rss_mb").set(rss / (1024.0 * 1024.0))


__all__ = ["current_rss_bytes", "peak_rss_bytes", "record_scale_gauges"]
