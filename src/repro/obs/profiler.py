"""Opt-in per-layer time attribution for :class:`repro.nn.Module` trees.

The numpy substrate has no hook infrastructure, so the profiler patches
the ``forward`` / ``backward`` *instance* attributes of every leaf
module (a module with no child modules) with a timing wrapper, and
attributes the measured time to the layer's class name.  Detaching
restores the original class-level methods, so a profiled model is
bit-identical to an unprofiled one afterwards.

Usage::

    profiler = LayerProfiler()
    with profiler.profile(model):
        logits = model.forward(x)
        model.backward(grad)
    print(profiler.report())
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.nn.module import Module
from repro.obs.metrics import MetricsRegistry


def time_op(fn, *, repeats: int = 5, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds.

    The micro-benchmark primitive used by ``benchmarks/bench_kernels.py``:
    warmup calls absorb one-time costs (allocator, BLAS thread spin-up),
    and taking the minimum rather than the mean discards scheduler noise,
    which is the conventional choice for single-core kernel timing.
    """
    for _ in range(max(0, warmup)):
        fn()
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _leaf_modules(module: Module) -> list[Module]:
    """All modules in the tree with no child modules, depth-first."""

    def children(m: Module) -> list[Module]:
        found: list[Module] = []
        for value in vars(m).values():
            if isinstance(value, Module):
                found.append(value)
            elif isinstance(value, (list, tuple)):
                found.extend(item for item in value if isinstance(item, Module))
        return found

    leaves: list[Module] = []

    def visit(m: Module) -> None:
        kids = children(m)
        if not kids:
            leaves.append(m)
        for kid in kids:
            visit(kid)

    visit(module)
    return leaves


class LayerProfiler:
    """Accumulates forward/backward wall time per layer type."""

    FORWARD = "layer.forward_sec"
    BACKWARD = "layer.backward_sec"

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._patched: list[tuple[Module, str]] = []

    # -- attach / detach ---------------------------------------------------------
    def attach(self, model: Module) -> "LayerProfiler":
        """Patch every leaf layer of ``model`` with timing wrappers."""
        if self._patched:
            raise RuntimeError("profiler is already attached; detach() first")
        for module in _leaf_modules(model):
            label = type(module).__name__
            self._patch(module, "forward", self.metrics.histogram(self.FORWARD, layer=label))
            self._patch(module, "backward", self.metrics.histogram(self.BACKWARD, layer=label))
        return self

    def _patch(self, module: Module, method: str, histogram) -> None:
        original = getattr(module, method)

        def timed(*args, **kwargs):
            started = time.perf_counter()
            out = original(*args, **kwargs)
            histogram.observe(time.perf_counter() - started)
            return out

        setattr(module, method, timed)
        self._patched.append((module, method))

    def detach(self) -> None:
        """Remove every wrapper, restoring the class-level methods."""
        for module, method in self._patched:
            module.__dict__.pop(method, None)
        self._patched.clear()

    @contextmanager
    def profile(self, model: Module):
        """Attach for the duration of a ``with`` block."""
        self.attach(model)
        try:
            yield self
        finally:
            self.detach()

    # -- results -----------------------------------------------------------------
    def totals(self) -> dict[str, dict]:
        """Per-layer-type ``{calls, forward_sec, backward_sec}``."""
        out: dict[str, dict] = {}
        for name, attr in ((self.FORWARD, "forward_sec"), (self.BACKWARD, "backward_sec")):
            prefix = f"{name}{{layer="
            for key, hist in self.metrics.histograms.items():
                if not key.startswith(prefix):
                    continue
                layer = key[len(prefix):-1]
                entry = out.setdefault(
                    layer, {"calls": 0, "forward_sec": 0.0, "backward_sec": 0.0}
                )
                entry[attr] += hist.total
                if attr == "forward_sec":
                    entry["calls"] += hist.count
        return out

    def report(self) -> str:
        """Fixed-width table of per-layer-type time, heaviest first."""
        totals = self.totals()
        if not totals:
            return "(no layers profiled)"
        header = f"{'layer':<20}  {'calls':>6}  {'fwd_ms':>9}  {'bwd_ms':>9}"
        lines = [header, "-" * len(header)]
        for layer, entry in sorted(
            totals.items(),
            key=lambda kv: kv[1]["forward_sec"] + kv[1]["backward_sec"],
            reverse=True,
        ):
            lines.append(
                f"{layer:<20}  {entry['calls']:>6}  "
                f"{1000 * entry['forward_sec']:>9.2f}  "
                f"{1000 * entry['backward_sec']:>9.2f}"
            )
        return "\n".join(lines)
