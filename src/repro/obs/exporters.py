"""Run-artifact writers and human-readable renderings.

A traced run is persisted as a directory of plain-text artifacts:

``events.jsonl``
    One JSON object per line: every finished span (depth-first, with its
    ``path`` in the tree) followed by a final snapshot of every counter /
    gauge / histogram.  Grep-able, diff-able, stream-parsable.
``summary.json``
    The full :class:`~repro.fl.metrics.History` dict (reloadable with
    :meth:`History.from_json` — extra keys are ignored) plus a ``trace``
    section with per-span-name aggregates and the metrics snapshot.
``rounds.csv``
    One row per round, spreadsheet-friendly (``History.save_csv``).

The ``format_*`` helpers render the same data as fixed-width tables for
the CLI.
"""

from __future__ import annotations

import json
from pathlib import Path


def iter_events(tracer) -> list[dict]:
    """Flatten a tracer into JSONL-ready event dicts."""
    events: list[dict] = []
    for span, depth, path in tracer.walk():
        event = {
            "type": "span",
            "name": span.name,
            "path": path,
            "depth": depth,
            "duration_sec": span.duration,
        }
        if span.attrs:
            event["attrs"] = dict(span.attrs)
        events.append(event)
    snapshot = tracer.metrics.snapshot()
    for key, value in snapshot["counters"].items():
        events.append({"type": "counter", "key": key, "value": value})
    for key, value in snapshot["gauges"].items():
        events.append({"type": "gauge", "key": key, "value": value})
    for key, summary in snapshot["histograms"].items():
        events.append({"type": "histogram", "key": key, **summary})
    for key, summary in snapshot.get("quantiles", {}).items():
        events.append({"type": "quantile", "key": key, **summary})
    return events


def write_jsonl(path: str | Path, tracer) -> Path:
    """Write the tracer's event stream as JSON Lines."""
    path = Path(path)
    with open(path, "w") as handle:
        for event in iter_events(tracer):
            handle.write(json.dumps(event) + "\n")
    return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSONL event file back into a list of dicts."""
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


def summary_dict(history, tracer=None, provenance=None) -> dict:
    """History dict + a ``trace`` section (span aggregates, metrics).

    ``provenance`` (see :func:`repro.ckpt.provenance.run_provenance`)
    is stamped under its own key when given, so an artifact directory
    records which library version / config hash / dtype / execution
    engine produced it.
    """
    out = history.to_dict()
    if provenance is not None:
        out["provenance"] = dict(provenance)
    if tracer is not None and tracer.enabled:
        out["trace"] = {
            "spans": tracer.span_summary(),
            "metrics": tracer.metrics.snapshot(),
        }
    return out


def write_run_artifacts(out_dir: str | Path, history, tracer=None, provenance=None) -> Path:
    """Persist one run's artifacts under ``out_dir`` (created if needed).

    Returns the artifact directory.  Without a tracer only the history
    artifacts (``summary.json``, ``rounds.csv``) are written; a given
    ``provenance`` dict is stamped into ``summary.json``.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    with open(out_dir / "summary.json", "w") as handle:
        json.dump(summary_dict(history, tracer, provenance), handle, indent=2)
    history.save_csv(str(out_dir / "rounds.csv"))
    async_history = getattr(history, "async_history", None)
    if async_history is not None:
        # Async runs additionally carry the update-level trajectory
        # (arrival times, staleness, effective weights).
        with open(out_dir / "async.json", "w") as handle:
            json.dump(async_history.to_dict(), handle, indent=2)
    if tracer is not None and tracer.enabled:
        write_jsonl(out_dir / "events.jsonl", tracer)
    return out_dir


# -- human-readable renderings -----------------------------------------------------


def format_round_table(history) -> str:
    """Fixed-width per-round table: loss, accuracy, time, traffic."""
    header = (
        f"{'round':>5}  {'train_loss':>10}  {'test_acc':>8}  "
        f"{'time_ms':>8}  {'down_bytes':>10}  {'up_bytes':>10}"
    )
    lines = [header, "-" * len(header)]
    records = history.records
    if not records:
        # Streaming histories keep no records in memory; replay the
        # spool when one exists.
        replay = getattr(history, "replay_records", None)
        if replay is not None:
            records = replay()
    for r in records:
        acc = f"{r.test_accuracy:.4f}" if r.test_accuracy is not None else "-"
        lines.append(
            f"{r.round_idx:>5}  {r.train_loss:>10.4f}  {acc:>8}  "
            f"{1000 * r.wall_time_sec:>8.1f}  {r.bytes_down:>10}  {r.bytes_up:>10}"
        )
    if not records and getattr(history, "num_records", 0):
        lines.append(
            f"({history.num_records} rounds streamed, summaries only — "
            "set stream_dir for per-round rows)"
        )
    return "\n".join(lines)


def format_span_summary(tracer) -> str:
    """Fixed-width per-phase timing table, heaviest phases first."""
    summary = tracer.span_summary()
    if not summary:
        return "(no spans recorded)"
    header = f"{'phase':<16}  {'count':>6}  {'total_ms':>9}  {'mean_ms':>8}  {'max_ms':>8}"
    lines = [header, "-" * len(header)]
    for name, entry in sorted(
        summary.items(), key=lambda kv: kv[1]["total_sec"], reverse=True
    ):
        lines.append(
            f"{name:<16}  {entry['count']:>6}  {1000 * entry['total_sec']:>9.1f}  "
            f"{1000 * entry['mean_sec']:>8.2f}  {1000 * entry['max_sec']:>8.2f}"
        )
    return "\n".join(lines)
