"""Observability: span tracing, metrics, run artifacts, and profiling.

Everything a run can tell you about where it spent time and bytes lives
here, with zero dependencies beyond the standard library and numpy:

* :mod:`repro.obs.trace` — nestable, thread-safe :class:`Span` timers
  producing a per-round tree of phase timings.  The default
  :data:`NULL_TRACER` keeps the disabled path allocation-free, so
  untraced runs (and the benchmarks) pay nothing.
* :mod:`repro.obs.metrics` — named counters / gauges / histograms
  (bytes up/down, update norms, regularizer cost, selection counts).
* :mod:`repro.obs.exporters` — JSONL event streams, a reloadable
  summary JSON, CSV, and human-readable tables for the CLI.
* :mod:`repro.obs.profiler` — opt-in per-layer forward/backward time
  attribution for :class:`repro.nn.Module` trees.

Quickstart::

    from repro.obs import Tracer
    from repro.obs.exporters import write_run_artifacts

    tracer = Tracer()
    history = run_federated(alg, fed, model_fn, config, tracer=tracer)
    write_run_artifacts("runs/demo", history, tracer)
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    Quantile,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.exporters import (
    format_round_table,
    format_span_summary,
    read_jsonl,
    summary_dict,
    write_jsonl,
    write_run_artifacts,
)
from repro.obs.profiler import LayerProfiler, time_op
from repro.obs.sysinfo import current_rss_bytes, peak_rss_bytes, record_scale_gauges

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Quantile",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "write_jsonl",
    "read_jsonl",
    "summary_dict",
    "write_run_artifacts",
    "format_round_table",
    "format_span_summary",
    "LayerProfiler",
    "time_op",
    "current_rss_bytes",
    "peak_rss_bytes",
    "record_scale_gauges",
]
