"""Named counters, gauges, and histograms.

A :class:`MetricsRegistry` hands out metric instances memoized by
``(name, labels)``, so hot paths can cache the handle once and call
``inc`` / ``set`` / ``observe`` without any lookup.  Everything is
protected by one registry lock at *creation* time only; updates on the
individual instances are plain attribute writes (atomic enough under the
GIL for the integer/float accumulators used here).

The communication ledger (:mod:`repro.fl.comm`) keeps its byte totals in
registry counters, the tracer records per-round gauges through
:meth:`repro.obs.trace.Tracer.on_round`, and the layer profiler
accumulates per-layer-type time histograms.
"""

from __future__ import annotations

import math
import threading


def _key(name: str, labels: dict) -> str:
    """Canonical string key: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing accumulator."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.key}: cannot decrease by {amount}")
        self.value += amount


class Gauge:
    """A last-value metric (e.g. the current round's train loss)."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary statistics of an observed quantity.

    Keeps count / sum / min / max plus the sum of squares, which is
    enough for mean and standard deviation without storing samples.
    """

    __slots__ = ("key", "count", "total", "total_sq", "min", "max")

    def __init__(self, key: str) -> None:
        self.key = key
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def std(self) -> float:
        if not self.count:
            return float("nan")
        var = max(self.total_sq / self.count - self.mean() ** 2, 0.0)
        return math.sqrt(var)

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean() if self.count else None,
            "std": self.std() if self.count else None,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class Quantile:
    """Percentile summary of an observed quantity via reservoir sampling.

    :class:`Histogram` keeps moments only; latency reporting wants tail
    percentiles.  A fixed-capacity reservoir gives p50/p95/p99 that are
    exact below ``CAPACITY`` observations and uniformly sampled above.
    Replacement decisions come from a private deterministic LCG — never
    from :mod:`numpy` or :mod:`random` — so observing a latency can
    never perturb a run's RNG streams or reproducibility.
    """

    __slots__ = ("key", "count", "total", "min", "max", "samples", "_lcg")

    CAPACITY = 2048

    def __init__(self, key: str) -> None:
        self.key = key
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: list[float] = []
        self._lcg = 0x9E3779B97F4A7C15

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.samples) < self.CAPACITY:
            self.samples.append(value)
            return
        self._lcg = (self._lcg * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        j = self._lcg % self.count
        if j < self.CAPACITY:
            self.samples[j] = value

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the reservoir (``q`` in [0, 100])."""
        if not self.samples:
            return float("nan")
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(q / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0, "sum": 0.0, "mean": None, "min": None,
                    "max": None, "p50": None, "p95": None, "p99": None}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """Creates and memoizes metrics by name + labels."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.quantiles: dict[str, Quantile] = {}

    def _get(self, store: dict, cls, name: str, labels: dict):
        key = _key(name, labels)
        metric = store.get(key)
        if metric is None:
            with self._lock:
                metric = store.setdefault(key, cls(key))
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(self.counters, Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(self.gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(self.histograms, Histogram, name, labels)

    def quantile(self, name: str, **labels) -> Quantile:
        return self._get(self.quantiles, Quantile, name, labels)

    def snapshot(self) -> dict:
        """JSON-serializable dump of every metric's current state."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {k: h.summary() for k, h in sorted(self.histograms.items())},
            "quantiles": {k: q.summary() for k, q in sorted(self.quantiles.items())},
        }

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Lossless dump (unlike :meth:`snapshot`, histograms keep their
        raw accumulators so a restore continues the stream exactly)."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: [h.count, h.total, h.total_sq, h.min, h.max]
                for k, h in sorted(self.histograms.items())
            },
            "quantiles": {
                k: [q.count, q.total, q.min, q.max, q._lcg, list(q.samples)]
                for k, q in sorted(self.quantiles.items())
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (values are set, not
        merged — restoring twice is idempotent).

        Metric instances are keyed by their canonical rendered key, so
        labelled metrics restore without re-deriving name/label pairs.
        """
        with self._lock:
            for key, value in state.get("counters", {}).items():
                counter = self.counters.setdefault(key, Counter(key))
                counter.value = value
            for key, value in state.get("gauges", {}).items():
                gauge = self.gauges.setdefault(key, Gauge(key))
                gauge.value = value
            for key, packed in state.get("histograms", {}).items():
                hist = self.histograms.setdefault(key, Histogram(key))
                hist.count, hist.total, hist.total_sq, hist.min, hist.max = (
                    int(packed[0]), float(packed[1]), float(packed[2]),
                    float(packed[3]), float(packed[4]),
                )
            # .get: checkpoints written before quantiles existed restore fine.
            for key, packed in state.get("quantiles", {}).items():
                quant = self.quantiles.setdefault(key, Quantile(key))
                quant.count = int(packed[0])
                quant.total = float(packed[1])
                quant.min = float(packed[2])
                quant.max = float(packed[3])
                quant._lcg = int(packed[4])
                quant.samples = [float(v) for v in packed[5]]


class _NullMetric:
    """Accepts every update and keeps nothing."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullMetrics:
    """Registry stand-in used by :class:`repro.obs.trace.NullTracer`.

    Every accessor returns one shared do-nothing instance, so the
    disabled path never allocates.
    """

    def counter(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def quantile(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}, "quantiles": {}}


NULL_METRICS = NullMetrics()
