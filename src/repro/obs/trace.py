"""Nestable, thread-safe span timers.

A :class:`Span` measures one phase of work; entering a span inside
another (on the same thread) makes it a child, so a traced federated
round comes out as a tree::

    round (0.182s)
      sample        (0.000s)
      broadcast     (0.001s)
      local_train   (0.021s) client=0
        regularizer (0.002s)
        ...
      aggregate     (0.003s)
      eval          (0.015s)

The per-thread span stack lives in ``threading.local``, so concurrent
client simulations each build their own subtree; only the attachment of
finished root spans is locked.

The default :data:`NULL_TRACER` is what the runtime uses when tracing is
off: ``span()`` returns one shared no-op object and the metrics registry
is :data:`repro.obs.metrics.NULL_METRICS`, so the disabled path does no
allocation and no timing calls.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator

from repro.obs.metrics import NULL_METRICS, MetricsRegistry


class Span:
    """One timed, attributed phase.  Use as a context manager."""

    __slots__ = ("name", "attrs", "start", "duration", "children", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.duration = 0.0
        self.children: list[Span] = []
        self._tracer = tracer

    def set(self, **attrs) -> "Span":
        """Attach extra attributes mid-span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)
        return False

    def to_dict(self) -> dict:
        """Recursive JSON-serializable form."""
        out = {"name": self.name, "duration_sec": self.duration}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1e3:.2f}ms, {len(self.children)} children)"


class Tracer:
    """Collects span trees and run metrics.

    Thread-safe: each thread nests spans on its own stack; roots from
    all threads are appended (locked) to :attr:`roots` in completion
    order.
    """

    enabled = True

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: list[Span] = []
        self.metrics = MetricsRegistry()

    # -- span lifecycle ----------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Exception safety / misuse tolerance: drop any deeper spans that
        # were never closed (their timings are attributed to this span).
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # -- trainer integration -----------------------------------------------------
    def on_round(self, record) -> None:
        """Per-round callback for :func:`repro.fl.trainer.run_federated`.

        Mirrors the :class:`~repro.fl.metrics.RoundRecord` into gauges
        and counters so exported metrics carry the training trajectory.
        """
        m = self.metrics
        m.counter("rounds.completed").inc()
        m.gauge("round.train_loss").set(record.train_loss)
        m.gauge("round.reg_loss").set(record.reg_loss)
        m.gauge("round.wall_time_sec").set(record.wall_time_sec)
        m.histogram("round.num_selected").observe(record.num_selected)
        if record.test_accuracy is not None:
            m.gauge("round.test_accuracy").set(record.test_accuracy)

    # -- inspection --------------------------------------------------------------
    def walk(self) -> Iterator[tuple[Span, int, str]]:
        """Depth-first ``(span, depth, path)`` over all finished spans."""

        def visit(span: Span, depth: int, prefix: str):
            path = f"{prefix}/{span.name}" if prefix else span.name
            yield span, depth, path
            for child in span.children:
                yield from visit(child, depth + 1, path)

        with self._lock:
            roots = list(self.roots)
        for root in roots:
            yield from visit(root, 0, "")

    def find(self, name: str) -> list[Span]:
        """All finished spans with the given name, in tree order."""
        return [span for span, _d, _p in self.walk() if span.name == name]

    def span_summary(self) -> dict[str, dict]:
        """Aggregate statistics per span name (count, total/mean/max sec)."""
        agg: dict[str, dict] = {}
        for span, _depth, _path in self.walk():
            entry = agg.setdefault(
                span.name, {"count": 0, "total_sec": 0.0, "max_sec": 0.0}
            )
            entry["count"] += 1
            entry["total_sec"] += span.duration
            if span.duration > entry["max_sec"]:
                entry["max_sec"] = span.duration
        for entry in agg.values():
            entry["mean_sec"] = entry["total_sec"] / entry["count"]
        return agg


class _NullSpan:
    """Shared no-op span for the disabled path."""

    __slots__ = ()
    name = "null"
    attrs: dict = {}
    duration = 0.0
    children: tuple = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Allocation-free tracer used when tracing is disabled.

    ``span()`` hands back one shared object whose enter/exit do nothing,
    and :attr:`metrics` swallows every update, so instrumented code needs
    no ``if tracing:`` guards on its hot path.  Code that would do extra
    *work* just to record it (e.g. computing an update norm) should still
    check :attr:`enabled`.
    """

    enabled = False
    roots: tuple = ()
    metrics = NULL_METRICS

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def on_round(self, record) -> None:
        pass

    def walk(self) -> Iterator:
        return iter(())

    def find(self, name: str) -> list:
        return []

    def span_summary(self) -> dict:
        return {}


NULL_TRACER = NullTracer()
