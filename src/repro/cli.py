"""Command-line interface.

Run a federated experiment without writing Python::

    python -m repro.cli run --dataset synth_cifar --algorithm rfedavg+ \
        --clients 10 --similarity 0.0 --rounds 30 --lam 1e-3

    python -m repro.cli run --dataset synth_mnist --rounds 10 \
        --trace --trace-out runs/     # persist spans + metrics artifacts

    python -m repro.cli preset quickstart --seed 0   # named entry points
    python -m repro.cli list            # algorithms + datasets
    python -m repro.cli experiments     # the paper table/figure index
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.algorithms import ALGORITHMS, make_algorithm
from repro.experiments import (
    build_femnist_federation,
    build_image_federation,
    build_sent140_federation,
    default_model_fn,
)
from repro.experiments.facade import RUN_PRESETS, run_experiment as run_preset
from repro.experiments.registry import EXPERIMENTS
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated
from repro.obs import (
    Tracer,
    format_round_table,
    format_span_summary,
    write_run_artifacts,
)

DATASETS = ("synth_mnist", "synth_cifar", "synth_sent140", "synth_femnist")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Distribution-regularized FL reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one federated training job")
    run.add_argument("--dataset", choices=DATASETS, default="synth_mnist")
    run.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="rfedavg+")
    run.add_argument("--model", default=None,
                     help="model name (default: mlp for images, lstm for sequences)")
    run.add_argument("--clients", type=int, default=10)
    run.add_argument("--population", type=int, default=None, metavar="N",
                     help="virtual (lazy) population size for cross-device "
                          "scale-out; clients materialize on demand, so N can "
                          "be in the millions (synth_mnist only; overrides "
                          "--clients)")
    run.add_argument("--max-live", type=int, default=256, metavar="K",
                     help="resident-shard LRU bound for --population runs")
    run.add_argument("--similarity", type=float, default=0.0,
                     help="similarity s in [0,1] for image datasets")
    run.add_argument("--iid", action="store_true",
                     help="IID split for the naturally non-IID datasets")
    run.add_argument("--rounds", type=int, default=30)
    run.add_argument("--local-steps", type=int, default=5)
    run.add_argument("--batch-size", type=int, default=32)
    run.add_argument("--sample-ratio", type=float, default=1.0)
    run.add_argument("--lr", type=float, default=0.5)
    run.add_argument("--optimizer", default="sgd")
    run.add_argument("--lam", type=float, default=1e-3,
                     help="regularization weight (rFedAvg variants)")
    run.add_argument("--mu", type=float, default=1.0, help="FedProx proximal weight")
    run.add_argument("--q", type=float, default=1.0, help="q-FedAvg fairness exponent")
    run.add_argument("--scale", type=float, default=1.0, help="model width multiplier")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--eval-every", type=int, default=5)
    run.add_argument("--workers", type=int, default=1,
                     help="client-execution worker processes (1 = serial; "
                          "results are bit-identical for any value)")
    # Choice knobs deliberately carry no argparse choices= — FLConfig
    # validates them against the shared registry (repro.fl.config), so
    # the CLI, config objects and the facade all raise the identical
    # typo-suggesting ConfigError.
    run.add_argument("--executor", default="auto",
                     help="client-execution engine: auto | serial | process "
                          "| chunked")
    run.add_argument("--transport", default="wire",
                     help="parallel payload transport: packed flat buffers over "
                          "shared memory (wire) or the fork-per-round pickle "
                          "engine; results are bit-identical either way")
    run.add_argument("--dtype", default="float64",
                     help="compute precision: float32 (~2x faster) or float64 "
                          "(the bit-reproducible default)")
    run.add_argument("--execution", default="sync",
                     help="round execution: sync (barrier rounds), async "
                          "(event-driven buffered aggregation with staleness "
                          "discounting), or serve (client workers in separate "
                          "processes over real TCP/Unix-domain sockets, "
                          "bit-identical to sync)")
    run.add_argument("--serve-addr", default=None, metavar="ADDR",
                     help="--execution serve listen address: tcp:HOST:PORT "
                          "(port 0 = ephemeral) or uds:/path.sock (default: "
                          "an ephemeral Unix-domain socket)")
    run.add_argument("--serve-timeout", type=float, default=30.0, metavar="SEC",
                     help="serve mode: stall deadline before degrading to "
                          "in-process execution (default 30)")
    run.add_argument("--serve-retries", type=int, default=5, metavar="N",
                     help="serve mode: worker connect/write retry attempts "
                          "(default 5)")
    run.add_argument("--serve-backoff", type=float, default=0.05, metavar="SEC",
                     help="serve mode: initial retry backoff, doubled per "
                          "attempt (default 0.05)")
    run.add_argument("--runtime", default="instant",
                     help="per-client latency model for --execution async: "
                          "instant | gaussian[:mean=..,std=..,het=..] | "
                          "trace:<path.json>")
    run.add_argument("--buffer-size", type=int, default=None, metavar="K",
                     help="async: aggregate as soon as K updates arrive "
                          "(default: the full round cohort)")
    run.add_argument("--staleness-exponent", type=float, default=0.5,
                     metavar="A",
                     help="async: stale updates are discounted by (1+s)^-A "
                          "(0 disables the discount)")
    run.add_argument("--sampler", default="uniform",
                     help="cohort sampler: uniform (historical stream) | "
                          "reservoir | stratified[:k] — the latter two never "
                          "enumerate the population")
    run.add_argument("--history-mode", default="append",
                     help="round history: append (full record list) or stream "
                          "(O(1) running summaries)")
    run.add_argument("--stream-dir", default=None, metavar="DIR",
                     help="spool streamed history/ledger records as JSONL "
                          "under DIR (requires --history-mode stream)")
    run.add_argument("--state-sharding", default="auto",
                     help="rFedAvg delta-table layout: auto | dense | sharded "
                          "(lazily allocated per reporting client)")
    run.add_argument("--state-cap", type=int, default=None, metavar="R",
                     help="sharded state: spill least-recently-used rows to "
                          "disk past R resident rows")
    run.add_argument("--compression", default="none", metavar="SPEC",
                     help="lossy upload-compression pipeline, stages joined "
                          "with '|': topk:R, randk:R, sketch:R, qsgd:B, sign, "
                          "quantize:B (e.g. 'topk:0.01|qsgd:8'; default none)")
    run.add_argument("--sync-compression", default="none", metavar="SPEC",
                     help="pipeline for the rFedAvg+ second synchronization "
                          "(model re-broadcast + delta re-upload; default none)")
    run.add_argument("--no-error-feedback", action="store_true",
                     help="disable the per-client error-feedback residuals "
                          "under lossy compression (ablation)")
    run.add_argument("--topology", default="flat", metavar="SPEC",
                     help="aggregation topology: flat (one server) or "
                          "hier:R:P (R regions aggregate their client slices "
                          "in parallel, cloud sync every P rounds; hier:1:1 "
                          "is bit-identical to flat)")
    run.add_argument("--cloud-compression", default="none", metavar="SPEC",
                     help="compression pipeline for the region->cloud uplink "
                          "of hierarchical runs (default none)")
    run.add_argument("--trace", action="store_true",
                     help="collect per-round spans and byte/metric counters")
    run.add_argument("--trace-out", default=None, metavar="DIR",
                     help="persist run artifacts (events.jsonl, summary.json, "
                          "rounds.csv) under DIR; implies --trace")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="write crash-safe checkpoints under DIR; resumable "
                          "with --resume, bit-identical to an uninterrupted run")
    run.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                     help="checkpoint every N completed rounds (default 1; the "
                          "final round is always checkpointed)")
    run.add_argument("--resume", action="store_true",
                     help="resume from the newest valid checkpoint in "
                          "--checkpoint-dir (fresh start when none exists)")

    preset = sub.add_parser("preset", help="run a named experiment preset")
    preset.add_argument("name", choices=sorted(RUN_PRESETS),
                        help="preset name (see repro.list_presets())")
    preset.add_argument("--seed", type=int, default=0)
    preset.add_argument("--workers", type=int, default=None,
                        help="client-execution worker processes")
    preset.add_argument("--set", dest="overrides", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="override a preset/config/algorithm knob, "
                             "e.g. --set rounds=10 --set algorithm=fedavg")
    preset.add_argument("--trace", action="store_true")
    preset.add_argument("--trace-out", default=None, metavar="DIR")
    preset.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="write crash-safe checkpoints under DIR")
    preset.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                        help="checkpoint cadence in rounds")
    preset.add_argument("--resume", action="store_true",
                        help="resume from the newest valid checkpoint")

    sweep = sub.add_parser("sweep", help="sweep one hyperparameter")
    sweep.add_argument("--dataset", choices=("synth_mnist", "synth_cifar"),
                       default="synth_cifar")
    sweep.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="rfedavg+")
    sweep.add_argument("--knob", required=True,
                       help="'lam' | 'mu' | 'q' (algorithm) or an FLConfig "
                            "field like 'local_steps' / 'sample_ratio'")
    sweep.add_argument("--values", required=True,
                       help="comma-separated values, e.g. 0,0.001,0.1")
    sweep.add_argument("--clients", type=int, default=10)
    sweep.add_argument("--similarity", type=float, default=0.0)
    sweep.add_argument("--rounds", type=int, default=30)
    sweep.add_argument("--repeats", type=int, default=1)
    sweep.add_argument("--lr", type=float, default=0.5)
    sweep.add_argument("--scale", type=float, default=1.0)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="checkpoint every sweep cell under DIR (one "
                            "subdirectory per swept value and repeat)")
    sweep.add_argument("--resume", action="store_true",
                       help="skip finished cells and resume interrupted "
                            "ones from their checkpoints")

    sub.add_parser("list", help="list algorithms and datasets")
    sub.add_parser("experiments", help="list the paper experiment index")
    return parser


def _build_federation(args):
    if args.population is not None:
        if args.dataset != "synth_mnist":
            raise SystemExit(
                "--population builds a procedural virtual population and "
                "supports synth_mnist only"
            )
        from repro.experiments.presets import build_virtual_federation

        return build_virtual_federation(
            args.population,
            similarity=1.0 if args.iid else args.similarity,
            max_live=args.max_live,
            seed=args.seed,
        )
    if args.dataset in ("synth_mnist", "synth_cifar"):
        similarity = 1.0 if args.iid else args.similarity
        return build_image_federation(
            args.dataset, num_clients=args.clients, similarity=similarity,
            seed=args.seed,
        )
    if args.dataset == "synth_sent140":
        return build_sent140_federation(
            num_users=args.clients, iid=args.iid, seed=args.seed
        )
    return build_femnist_federation(
        num_writers=args.clients, iid=args.iid, seed=args.seed
    )


def _algorithm_kwargs(args) -> dict:
    name = args.algorithm
    if name in ("rfedavg", "rfedavg+", "rfedavg_exact"):
        return {"lam": args.lam}
    if name == "fedprox":
        return {"mu": args.mu}
    if name == "qfedavg":
        return {"q": args.q}
    return {}


def _print_round(rec) -> None:
    line = f"round {rec.round_idx:4d}  loss {rec.train_loss:.4f}"
    if rec.test_accuracy is not None:
        line += f"  acc {rec.test_accuracy:.4f}"
    print(line)


def _report_run(history, tracer, trace_out, run_name: str, provenance=None) -> None:
    """Shared post-run reporting for `run` and `preset`."""
    print(f"final accuracy: {history.final_accuracy:.4f}")
    print(f"total traffic:  {history.total_bytes():,} bytes")
    if tracer is not None:
        print()
        print(format_round_table(history))
        print()
        print(format_span_summary(tracer))
        if trace_out is not None:
            out_dir = write_run_artifacts(
                Path(trace_out) / run_name, history, tracer, provenance=provenance
            )
            print(f"\nartifacts: {out_dir}")


def _check_resume_args(args) -> None:
    if getattr(args, "resume", False) and args.checkpoint_dir is None:
        raise SystemExit("--resume requires --checkpoint-dir")


def _command_run(args) -> int:
    _check_resume_args(args)
    fed = _build_federation(args)
    model_name = args.model or ("lstm" if fed.spec.kind == "sequence" else "mlp")
    config = FLConfig(
        rounds=args.rounds,
        local_steps=args.local_steps,
        batch_size=args.batch_size,
        sample_ratio=args.sample_ratio,
        optimizer=args.optimizer,
        lr=args.lr,
        eval_every=args.eval_every,
        seed=args.seed,
        num_workers=args.workers,
        executor=args.executor,
        transport=args.transport,
        dtype=args.dtype,
        execution=args.execution,
        serve_addr=args.serve_addr,
        serve_timeout=args.serve_timeout,
        serve_retries=args.serve_retries,
        serve_backoff=args.serve_backoff,
        runtime=args.runtime,
        buffer_size=args.buffer_size,
        staleness_exponent=args.staleness_exponent,
        sampler=args.sampler,
        history_mode=args.history_mode,
        stream_dir=args.stream_dir,
        state_sharding=args.state_sharding,
        state_cap=args.state_cap,
        compression=args.compression,
        sync_compression=args.sync_compression,
        error_feedback=not args.no_error_feedback,
        topology=args.topology,
        cloud_compression=args.cloud_compression,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    algorithm = make_algorithm(args.algorithm, **_algorithm_kwargs(args))
    print(
        f"{args.algorithm} on {args.dataset}: {fed.num_clients} clients, "
        f"{config.rounds} rounds, E={config.local_steps}, SR={config.sample_ratio}"
    )
    tracer = Tracer() if (args.trace or args.trace_out is not None) else None
    history = run_federated(
        algorithm,
        fed,
        default_model_fn(model_name, fed.spec, seed=args.seed, scale=args.scale),
        config,
        callbacks=[_print_round],
        tracer=tracer,
    )
    run_name = f"{args.algorithm}-{args.dataset}-seed{args.seed}"
    from repro.ckpt.provenance import run_provenance

    _report_run(history, tracer, args.trace_out, run_name,
                provenance=run_provenance(config, algorithm.name))
    return 0


def _parse_override_value(raw: str):
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    return raw


def _command_preset(args) -> int:
    _check_resume_args(args)
    overrides = {}
    for item in args.overrides:
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(f"--set expects KEY=VALUE, got {item!r}")
        overrides[key] = _parse_override_value(value)
    preset = RUN_PRESETS[args.name]
    print(f"{args.name}: {preset.description}")
    trace = args.trace or args.trace_out is not None
    artifacts_dir = (
        Path(args.trace_out) / f"{args.name}-seed{args.seed}"
        if args.trace_out is not None
        else None
    )
    history, artifacts = run_preset(
        args.name,
        seed=args.seed,
        overrides=overrides,
        callbacks=[_print_round],
        trace=trace,
        artifacts_dir=artifacts_dir,
        workers=args.workers,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    print(f"final accuracy: {history.final_accuracy:.4f}")
    print(f"total traffic:  {history.total_bytes():,} bytes")
    if trace:
        print()
        print(format_round_table(history))
    if artifacts is not None:
        print(f"\nartifacts: {artifacts}")
    return 0


def _parse_values(raw: str) -> list:
    values = []
    for token in raw.split(","):
        token = token.strip()
        try:
            number = float(token)
        except ValueError as exc:
            raise SystemExit(f"cannot parse sweep value {token!r}") from exc
        values.append(int(number) if number.is_integer() and "." not in token and "e" not in token.lower() else number)
    return values


def _command_sweep(args) -> int:
    _check_resume_args(args)
    from dataclasses import fields

    from repro.experiments import build_image_federation
    from repro.experiments.sweeps import sweep_algorithm_param, sweep_config_field

    values = _parse_values(args.values)

    def fed_builder(seed):
        return build_image_federation(
            args.dataset, num_clients=args.clients, similarity=args.similarity,
            seed=seed,
        )

    def model_fn_builder(fed, seed):
        return default_model_fn("mlp", fed.spec, seed=seed, scale=args.scale)

    config = FLConfig(rounds=args.rounds, local_steps=5, batch_size=32,
                      lr=args.lr, eval_every=5, seed=args.seed,
                      checkpoint_dir=args.checkpoint_dir, resume=args.resume)
    config_fields = {f.name for f in fields(FLConfig)}
    if args.knob in config_fields:
        result = sweep_config_field(
            args.algorithm, args.knob, values, fed_builder, model_fn_builder,
            config, repeats=args.repeats,
        )
    else:
        result = sweep_algorithm_param(
            args.algorithm, args.knob, values, fed_builder, model_fn_builder,
            config, repeats=args.repeats,
        )
    print(result.as_table())
    best_value, best_acc = result.best()
    print(f"best: {args.knob}={best_value} (accuracy {best_acc:.4f})")
    return 0


def _command_list() -> int:
    print("algorithms:")
    for name in sorted(ALGORITHMS):
        print(f"  {name}")
    print("datasets:")
    for name in DATASETS:
        print(f"  {name}")
    return 0


def _command_experiments() -> int:
    for spec in EXPERIMENTS.values():
        print(f"{spec.exp_id:10s} {spec.paper_ref:16s} {spec.description}")
    return 0


def main(argv: list[str] | None = None) -> int:
    from repro.exceptions import ConfigError

    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ConfigError as exc:
        # Registry-validated knobs (--executor, --execution, ...) raise
        # here with a did-you-mean suggestion; show it without a trace.
        raise SystemExit(f"repro: {exc}")


def _dispatch(args) -> int:
    if args.command == "run":
        return _command_run(args)
    if args.command == "preset":
        return _command_preset(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "list":
        return _command_list()
    return _command_experiments()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
