"""Model zoo: the paper's CNN and LSTM plus fast MLP / convex variants.

Every model is a :class:`~repro.models.split.SplitModel` — a feature
extractor ``phi`` (all layers except the output layer, exactly the
paper's definition of the mapping whose mean embedding forms ``delta``)
followed by a classification ``head``.
"""

from repro.models.split import SplitModel
from repro.models.cnn import build_cnn
from repro.models.lstm import build_gru_classifier, build_lstm_classifier
from repro.models.mlp import build_mlp
from repro.models.logistic import build_logistic
from repro.models.zoo import build_model, MODEL_BUILDERS

__all__ = [
    "SplitModel",
    "build_cnn",
    "build_lstm_classifier",
    "build_gru_classifier",
    "build_mlp",
    "build_logistic",
    "build_model",
    "MODEL_BUILDERS",
]
