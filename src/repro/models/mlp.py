"""A small MLP — the fast default model for CPU-budget experiments.

Not part of the paper's evaluation, but the benchmark presets use it
when a full CNN would blow the single-core budget; the FL phenomena the
paper studies (client drift under label skew, the effect of the MMD
regularizer) are architecture-independent, and the ablation bench
verifies the qualitative ordering matches the CNN on small runs.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.split import SplitModel


def build_mlp(
    input_dim: int,
    num_classes: int,
    rng: np.random.Generator,
    hidden_dims: tuple[int, ...] = (64,),
    feature_dim: int = 32,
) -> SplitModel:
    """Flatten -> [Linear -> ReLU]* -> Linear(feature_dim) -> ReLU -> head."""
    layers: list[nn.Module] = [nn.Flatten()]
    prev = input_dim
    for width in hidden_dims:
        layers.append(nn.Linear(prev, width, rng=rng))
        layers.append(nn.ReLU())
        prev = width
    layers.append(nn.Linear(prev, feature_dim, rng=rng))
    layers.append(nn.ReLU())
    features = nn.Sequential(*layers)
    head = nn.Linear(feature_dim, num_classes, rng=rng)
    return SplitModel(features, head, feature_dim=feature_dim)
