"""The paper's Sent140 model: 2-layer LSTM + FC feature layer.

"2-layer LSTM + 1-layer FC (dimension of output vector is 256) with
pre-trained word vectors" — the MMD regularizer is computed on the
256-dimensional FC output, so the feature extractor here is
Embedding -> LSTM(2) -> last hidden -> Linear(256) -> ReLU and the head
is the final classifier layer.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.split import SplitModel


def build_lstm_classifier(
    vocab_size: int,
    num_classes: int,
    rng: np.random.Generator,
    embed_dim: int = 50,
    hidden_dim: int = 256,
    feature_dim: int = 256,
    num_layers: int = 2,
    pretrained_embeddings: np.ndarray | None = None,
    freeze_embeddings: bool = False,
    scale: float = 1.0,
) -> SplitModel:
    """Build the LSTM sentiment classifier as a :class:`SplitModel`.

    ``scale`` shrinks ``embed_dim``/``hidden_dim``/``feature_dim``
    proportionally (min 8) for CPU-budget benchmark runs.
    """
    if scale != 1.0:
        embed_dim = max(8, int(round(embed_dim * scale)))
        hidden_dim = max(8, int(round(hidden_dim * scale)))
        feature_dim = max(8, int(round(feature_dim * scale)))
    embedding = nn.Embedding(
        vocab_size,
        embed_dim,
        rng=rng,
        trainable=not freeze_embeddings,
        pretrained=pretrained_embeddings,
    )
    features = nn.Sequential(
        embedding,
        nn.LSTM(embed_dim, hidden_dim, num_layers=num_layers, rng=rng),
        nn.LastTimestep(),
        nn.Linear(hidden_dim, feature_dim, rng=rng),
        nn.ReLU(),
    )
    head = nn.Linear(feature_dim, num_classes, rng=rng)
    return SplitModel(features, head, feature_dim=feature_dim)


def build_gru_classifier(
    vocab_size: int,
    num_classes: int,
    rng: np.random.Generator,
    embed_dim: int = 50,
    hidden_dim: int = 256,
    feature_dim: int = 256,
    num_layers: int = 2,
    scale: float = 1.0,
) -> SplitModel:
    """GRU variant of the sequence classifier (25% smaller recurrent
    payload than the LSTM — see the model-size test)."""
    if scale != 1.0:
        embed_dim = max(8, int(round(embed_dim * scale)))
        hidden_dim = max(8, int(round(hidden_dim * scale)))
        feature_dim = max(8, int(round(feature_dim * scale)))
    features = nn.Sequential(
        nn.Embedding(vocab_size, embed_dim, rng=rng),
        nn.GRU(embed_dim, hidden_dim, num_layers=num_layers, rng=rng),
        nn.LastTimestep(),
        nn.Linear(hidden_dim, feature_dim, rng=rng),
        nn.ReLU(),
    )
    head = nn.Linear(feature_dim, num_classes, rng=rng)
    return SplitModel(features, head, feature_dim=feature_dim)
