"""SplitModel: a network split into feature extractor ``phi`` and head.

The paper's distribution regularizer acts on the output of the last
fully connected layer *before* the classifier output — i.e. on the
feature extractor ``phi(x; w~)`` where ``w~`` is every parameter except
the output layer (Sec. III-B).  :class:`SplitModel` makes that split a
first-class object so algorithms can (a) read the feature activations of
a batch, and (b) inject an extra gradient on the features during the
backward pass (the regularizer gradient) in the same pass as the task
loss.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import astype_default
from repro.nn.module import Module


class SplitModel(Module):
    """A model composed of ``features`` (phi) followed by ``head``.

    ``forward`` caches the feature activations; ``backward`` optionally
    accepts ``feature_grad`` — an extra gradient on the cached features —
    which is how the MMD regularizer joins the task-loss backward pass
    without a second forward.
    """

    def __init__(self, features: Module, head: Module, feature_dim: int) -> None:
        super().__init__()
        self.features = features
        self.head = head
        self.feature_dim = feature_dim
        self._feat: np.ndarray | None = None

    def _free_buffers(self) -> None:
        self._feat = None

    @property
    def last_features(self) -> np.ndarray:
        """Feature activations of the most recent forward pass."""
        if self._feat is None:
            raise RuntimeError("no forward pass has been run")
        return self._feat

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Cast float inputs to the active dtype policy at the model
        # boundary, so dataset pipelines can keep producing float64.
        x = astype_default(x)
        feat = self.features.forward(x)
        self._feat = feat
        return self.head.forward(feat)

    def backward(
        self, grad_out: np.ndarray, feature_grad: np.ndarray | None = None
    ) -> np.ndarray:
        grad_feat = self.head.backward(grad_out)
        if feature_grad is not None:
            grad_feat = grad_feat + feature_grad
        return self.features.backward(grad_feat)

    def feature_param_count(self) -> int:
        """Number of scalars in phi's parameters (the w~ part of w)."""
        return sum(p.size for p in self.features.parameters())
