"""Strongly convex model for validating the convergence theory.

Theorems 1 and 2 assume L-smooth, mu-strongly convex local objectives
and a convex mapping phi.  Multinomial logistic regression with L2
weight decay satisfies both: the feature map is a single linear layer
(convex in the parameters for fixed input) and the regularized
cross-entropy is strongly convex.  The convergence benches run the six
algorithms on this model and check the O(1/T) decay and the C2 < C3
ordering empirically.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.split import SplitModel


def build_logistic(
    input_dim: int,
    num_classes: int,
    rng: np.random.Generator,
    feature_dim: int | None = None,
) -> SplitModel:
    """Linear feature map + linear head (no nonlinearity anywhere).

    With ``feature_dim=None`` the feature map is a square linear layer,
    so phi is a convex (affine) mapping exactly as Assumption A6 asks.
    """
    feat = feature_dim if feature_dim is not None else input_dim
    features = nn.Sequential(nn.Flatten(), nn.Linear(input_dim, feat, rng=rng))
    head = nn.Linear(feat, num_classes, rng=rng)
    return SplitModel(features, head, feature_dim=feat)
