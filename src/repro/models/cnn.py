"""The paper's CNN for MNIST / CIFAR10, with a scalable width knob.

The paper uses the FedAvg CNN (McMahan et al. 2017): two 5x5 conv +
max-pool blocks followed by a 512-unit fully connected layer (the MMD
feature layer) and a softmax output.  ``scale=1.0`` reproduces that
architecture; smaller scales shrink channel counts and the feature
width so the 1-core CPU benchmarks stay tractable while preserving the
conv-pool-conv-pool-FC-softmax shape.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.split import SplitModel


def build_cnn(
    in_channels: int,
    image_size: int,
    num_classes: int,
    rng: np.random.Generator,
    scale: float = 1.0,
    feature_dim: int | None = None,
) -> SplitModel:
    """Build the conv-pool-conv-pool-FC CNN as a :class:`SplitModel`.

    Args:
        in_channels: 1 for MNIST-like, 3 for CIFAR-like inputs.
        image_size: input height/width (must be divisible by 4).
        num_classes: output classes.
        rng: generator for weight init.
        scale: width multiplier; 1.0 = paper architecture
            (32/64 channels, 512-d feature layer).
        feature_dim: override the feature-layer width directly.
    """
    if image_size % 4 != 0:
        raise ValueError(f"image_size must be divisible by 4, got {image_size}")
    c1 = max(4, int(round(32 * scale)))
    c2 = max(8, int(round(64 * scale)))
    feat = feature_dim if feature_dim is not None else max(16, int(round(512 * scale)))
    kernel = 5 if image_size >= 16 else 3
    pad = kernel // 2
    flat = c2 * (image_size // 4) * (image_size // 4)
    features = nn.Sequential(
        nn.Conv2d(in_channels, c1, kernel, padding=pad, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(c1, c2, kernel, padding=pad, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(flat, feat, rng=rng),
        nn.ReLU(),
    )
    head = nn.Linear(feat, num_classes, rng=rng)
    return SplitModel(features, head, feature_dim=feat)
