"""Model factory keyed by name + dataset spec."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import DatasetSpec
from repro.exceptions import ConfigError
from repro.models.cnn import build_cnn
from repro.models.logistic import build_logistic
from repro.models.lstm import build_gru_classifier, build_lstm_classifier
from repro.models.mlp import build_mlp
from repro.models.split import SplitModel


def _build_cnn(spec: DatasetSpec, rng: np.random.Generator, scale: float) -> SplitModel:
    if spec.kind != "image":
        raise ConfigError(f"cnn needs an image dataset, got {spec.kind}")
    channels, height, width = spec.input_shape
    if height != width:
        raise ConfigError("cnn expects square images")
    return build_cnn(channels, height, spec.num_classes, rng, scale=scale)


def _build_lstm(spec: DatasetSpec, rng: np.random.Generator, scale: float) -> SplitModel:
    if spec.kind != "sequence":
        raise ConfigError(f"lstm needs a sequence dataset, got {spec.kind}")
    assert spec.vocab_size is not None
    return build_lstm_classifier(spec.vocab_size, spec.num_classes, rng, scale=scale)


def _build_gru(spec: DatasetSpec, rng: np.random.Generator, scale: float) -> SplitModel:
    if spec.kind != "sequence":
        raise ConfigError(f"gru needs a sequence dataset, got {spec.kind}")
    assert spec.vocab_size is not None
    return build_gru_classifier(spec.vocab_size, spec.num_classes, rng, scale=scale)


def _build_mlp(spec: DatasetSpec, rng: np.random.Generator, scale: float) -> SplitModel:
    if spec.kind != "image":
        raise ConfigError(f"mlp needs an image dataset, got {spec.kind}")
    hidden = max(16, int(round(64 * scale)))
    feat = max(8, int(round(32 * scale)))
    return build_mlp(spec.flat_dim, spec.num_classes, rng, (hidden,), feature_dim=feat)


def _build_logistic(spec: DatasetSpec, rng: np.random.Generator, scale: float) -> SplitModel:
    if spec.kind != "image":
        raise ConfigError(f"logistic needs an image dataset, got {spec.kind}")
    return build_logistic(spec.flat_dim, spec.num_classes, rng)


MODEL_BUILDERS = {
    "cnn": _build_cnn,
    "lstm": _build_lstm,
    "gru": _build_gru,
    "mlp": _build_mlp,
    "logistic": _build_logistic,
}


def build_model(
    name: str, spec: DatasetSpec, seed: int = 0, scale: float = 1.0
) -> SplitModel:
    """Build a named model for a dataset spec.

    Args:
        name: 'cnn' | 'lstm' | 'mlp' | 'logistic'.
        spec: dataset description (shapes, classes, vocab).
        seed: weight-init seed — identical seeds give bit-identical
            initial global models, which federated runs require.
        scale: width multiplier (1.0 = paper-size architecture).
    """
    if name not in MODEL_BUILDERS:
        raise ConfigError(f"unknown model {name!r}; choose from {sorted(MODEL_BUILDERS)}")
    rng = np.random.default_rng(seed)
    return MODEL_BUILDERS[name](spec, rng, scale)
