"""Complete-run-state capture and restore.

What makes a resumed federated run *bit-identical* to an uninterrupted
one is that nothing round-coupled is lost: besides the global model,
algorithms carry server state (control variates, momentum, delayed
delta tables, memoized delta caches), the trainer carries the selection
RNG and the growing :class:`~repro.fl.metrics.History`, the ledger
carries cumulative byte totals, and an attached fault model carries its
own RNG plus counters.  :func:`capture_run_state` snapshots all of it
into named checkpoint sections; :func:`restore_run_state` writes it back
into freshly constructed objects.

Per-(round, client, phase) streams — client training RNGs, privacy
noise, compression draws — are *derived* from the master seed on every
use and therefore need no snapshotting; that statelessness is what keeps
the checkpoint small and the resume exact.  The parallel wire transport
needs no special handling either: worker pools re-adopt restored state
through the existing per-round ``_worker_state`` broadcast (fork
inheritance covers the pool's first round, the seq-guarded shared-memory
refresh every one after).
"""

from __future__ import annotations

import numpy as np

from repro.ckpt.format import pack_tree, unpack_tree
from repro.ckpt.provenance import check_resume_compatible, run_provenance
from repro.exceptions import CheckpointError
from repro.fl.metrics import History, StreamingHistory

SECTION_MODEL = "model"
SECTION_ALGORITHM = "algorithm"
SECTION_RNG = "rng"
SECTION_LEDGER = "ledger"
SECTION_HISTORY = "history"
SECTION_METRICS = "metrics"
SECTION_FAULTS = "faults"
SECTION_ASYNC = "async"
SECTION_HIERARCHY = "hierarchy"


def rng_state(generator: np.random.Generator) -> dict:
    """JSON-able snapshot of a numpy Generator's bit-generator state."""
    return generator.bit_generator.state


def set_rng_state(generator: np.random.Generator, state: dict) -> None:
    generator.bit_generator.state = state


def capture_run_state(
    *,
    round_idx: int,
    algorithm,
    round_rng: np.random.Generator,
    history: History,
    config,
    tracer=None,
    extra_sections: dict[str, dict] | None = None,
) -> tuple[dict, dict[str, bytes]]:
    """Snapshot everything a resume needs, as ``(meta, sections)``.

    Called at the end of round ``round_idx`` — after the history record
    was appended and the ledger's round was closed, so the snapshot is a
    consistent between-rounds cut of the run.

    ``extra_sections`` maps section names to pack_tree-able dicts an
    execution engine wants carried alongside the core state (the async
    engine's event queue and sim clock ride in ``SECTION_ASYNC``); the
    engine that wrote them unpacks them itself on resume.
    """
    assert algorithm.ledger is not None
    meta = {
        "round_idx": int(round_idx),
        "rounds_total": int(config.rounds),
        "provenance": run_provenance(config, algorithm.name),
    }
    # Streaming histories checkpoint their O(1) summary instead of the
    # full record list (checkpoint_dict); appending histories keep the
    # historical full to_dict form.
    history_dict_fn = getattr(history, "checkpoint_dict", history.to_dict)
    sections: dict[str, bytes] = {
        SECTION_MODEL: pack_tree({"global_params": algorithm.global_params}),
        SECTION_ALGORITHM: pack_tree(algorithm.checkpoint_state()),
        SECTION_RNG: pack_tree({"round_rng": rng_state(round_rng)}),
        SECTION_LEDGER: pack_tree(algorithm.ledger.state_dict()),
        SECTION_HISTORY: pack_tree(history_dict_fn()),
    }
    if algorithm.fault_model is not None:
        sections[SECTION_FAULTS] = pack_tree(algorithm.fault_model.state_dict())
    if tracer is not None and tracer.enabled:
        sections[SECTION_METRICS] = pack_tree(tracer.metrics.state_dict())
    for name, tree in (extra_sections or {}).items():
        if name in sections:
            raise CheckpointError(f"extra section {name!r} collides with a core section")
        sections[name] = pack_tree(tree)
    return meta, sections


def restore_run_state(
    manifest: dict,
    sections: dict[str, bytes],
    *,
    algorithm,
    round_rng: np.random.Generator,
    history: History,
    config,
    tracer=None,
) -> int:
    """Write a captured snapshot back into live objects.

    ``algorithm`` must already be set up (model bound, arrays allocated).
    Returns the last *completed* round index; the trainer resumes at the
    next one.  Raises :class:`~repro.exceptions.CheckpointMismatchError`
    when the checkpoint's provenance does not match this run.
    """
    meta = manifest.get("meta", {})
    stored = meta.get("provenance", {})
    check_resume_compatible(stored, run_provenance(config, algorithm.name))
    if int(meta.get("rounds_total", config.rounds)) != int(config.rounds):
        # Extending/shortening a run keeps the config hash distinct, but
        # guard explicitly for clarity if the hash rule ever loosens.
        raise CheckpointError(
            f"checkpoint was written for a {meta.get('rounds_total')}-round run, "
            f"this run has {config.rounds} rounds"
        )

    required = (SECTION_MODEL, SECTION_ALGORITHM, SECTION_RNG,
                SECTION_LEDGER, SECTION_HISTORY)
    missing = [name for name in required if name not in sections]
    if missing:
        raise CheckpointError(f"checkpoint missing sections {missing}")

    # Restore order matters only for the metrics/ledger pair: the ledger
    # sets its counters to absolute checkpointed values, so a shared
    # tracer registry restored first cannot double-count.
    if tracer is not None and tracer.enabled and SECTION_METRICS in sections:
        tracer.metrics.restore_state(unpack_tree(sections[SECTION_METRICS]))

    model_state = unpack_tree(sections[SECTION_MODEL])
    algorithm.restore_checkpoint_state(unpack_tree(sections[SECTION_ALGORITHM]))
    algorithm.global_params = np.array(model_state["global_params"], copy=True)
    algorithm._load_global()

    set_rng_state(round_rng, unpack_tree(sections[SECTION_RNG])["round_rng"])
    assert algorithm.ledger is not None
    algorithm.ledger.load_state_dict(unpack_tree(sections[SECTION_LEDGER]))

    history_data = unpack_tree(sections[SECTION_HISTORY])
    stored_stream = history_data.get("mode") == "stream"
    live_stream = isinstance(history, StreamingHistory)
    if stored_stream and not live_stream:
        raise CheckpointError(
            "checkpoint carries a streaming history summary (no records); "
            "resume with history_mode='stream' or start over"
        )
    if live_stream:
        history.final_accuracy = history_data.get("final_accuracy")
        if history_data.get("per_client_accuracy") is not None:
            history.per_client_accuracy = np.array(
                history_data["per_client_accuracy"]
            )
        if stored_stream:
            history.restore_summary(history_data["summary"])
        else:
            # Append-mode checkpoint resumed under streaming: re-fold
            # the full record list into the O(1) summary.
            history.fold_records(History.from_dict(history_data).records)
        history.truncate_spool(int(meta["round_idx"]))
    else:
        restored_history = History.from_dict(history_data)
        history.records = restored_history.records
        history.final_accuracy = restored_history.final_accuracy
        history.per_client_accuracy = restored_history.per_client_accuracy

    if SECTION_FAULTS in sections:
        if algorithm.fault_model is None:
            raise CheckpointError(
                "checkpoint carries fault-model state but this run has no "
                "fault model attached; attach the same FaultModel to resume"
            )
        algorithm.fault_model.load_state_dict(unpack_tree(sections[SECTION_FAULTS]))
    elif algorithm.fault_model is not None:
        raise CheckpointError(
            "this run has a fault model but the checkpoint carries no "
            "fault-model state; detach it or resume the original run"
        )
    return int(meta["round_idx"])
