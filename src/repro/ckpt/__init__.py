"""Crash-safe checkpoint/resume with bit-identical deterministic replay.

The subsystem has three layers:

* :mod:`repro.ckpt.format` — the RCK1 container: atomic temp-file +
  fsync + rename writes, a self-describing JSON manifest with
  per-section blake2b content hashes, and a tree codec that stores
  numpy arrays dtype-true over the RFW1 wire format.
* :mod:`repro.ckpt.manager` — per-run directory management: retention
  of the newest K checkpoints and corruption-tolerant recovery that
  rolls back to the newest valid file.
* :mod:`repro.ckpt.state` — complete-run-state capture/restore: global
  model, per-algorithm server state, RNG streams, communication ledger,
  history, obs metrics, and fault-model state.

Checkpointing is driven by three :class:`~repro.fl.config.FLConfig`
fields (``checkpoint_dir``, ``checkpoint_every``, ``resume``) threaded
through the trainer, :func:`repro.run_experiment`, the CLI, and the
experiment runner/sweeps; see ``docs/checkpointing.md``.
"""

from repro.ckpt.format import (
    pack_tree,
    read_checkpoint,
    read_manifest,
    unpack_tree,
    write_checkpoint,
)
from repro.ckpt.manager import CheckpointManager
from repro.ckpt.provenance import check_resume_compatible, config_hash, run_provenance
from repro.ckpt.recast import recast_checkpoint, recast_latest
from repro.ckpt.state import capture_run_state, restore_run_state
from repro.exceptions import CheckpointError, CheckpointMismatchError

__all__ = [
    "CheckpointManager",
    "CheckpointError",
    "CheckpointMismatchError",
    "capture_run_state",
    "restore_run_state",
    "check_resume_compatible",
    "config_hash",
    "run_provenance",
    "pack_tree",
    "unpack_tree",
    "read_checkpoint",
    "read_manifest",
    "recast_checkpoint",
    "recast_latest",
    "write_checkpoint",
]
