"""Crash-safe, self-describing checkpoint container format (RCK1).

A checkpoint is one file holding a small JSON manifest plus named binary
sections, laid out so that *any* torn, truncated, or bit-flipped write is
detected at read time and treated as "this checkpoint does not exist"
rather than as silent corruption:

    offset 0   magic            b"RCK1\\n"
           5   manifest length  u32 LE
           9   manifest hash    16 bytes (blake2b-128 of the manifest)
          25   manifest         UTF-8 JSON
           -   section payloads, contiguous, in manifest order

The manifest is self-describing: a format version, free-form ``meta``
(round index, provenance), and a section table where every entry carries
the section's name, byte offset, length, and blake2b-128 content hash.
:func:`read_checkpoint` verifies the magic, the manifest hash, and every
section hash before returning anything; any failure raises
:class:`~repro.exceptions.CheckpointError`.

Writes are crash-safe the classic way: the full file is written to a
temporary sibling, flushed and fsynced, then atomically renamed over the
final path (and the directory fsynced, best effort).  A crash at any
point leaves either the old file, the new file, or a stray ``*.tmp-*``
sibling — never a half-written checkpoint under the real name.

Section payloads reuse the RFW1 wire format (:mod:`repro.fl.wire`)
through :func:`pack_tree` / :func:`unpack_tree`, which round-trip an
arbitrary JSON-able tree whose leaves may additionally be numpy arrays
or raw ``bytes`` (content fingerprints).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from pathlib import Path

import numpy as np

from repro.exceptions import CheckpointError, WireError
from repro.fl import wire

MAGIC = b"RCK1\n"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<5sI16s")  # magic, manifest length, manifest blake2b-128

_ARRAY_KEY = "__nd__"
_BYTES_KEY = "__hex__"
_TUPLE_KEY = "__tuple__"


def _digest(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=16).digest()


# -- tree <-> bytes -----------------------------------------------------------------


def pack_tree(tree: dict) -> bytes:
    """Encode a nested dict of JSON-able values, numpy arrays and bytes.

    Arrays are stored dtype-true in RFW1 segments (no base64 bloat, no
    pickle); everything else rides a JSON skeleton with ``{"__nd__": i}``
    / ``{"__hex__": ...}`` markers at the array / bytes leaves.
    """
    arrays: dict[str, np.ndarray] = {}

    def encode(node):
        if isinstance(node, np.ndarray):
            name = f"a{len(arrays)}"
            arrays[name] = node
            return {_ARRAY_KEY: name}
        if isinstance(node, (bytes, bytearray)):
            return {_BYTES_KEY: bytes(node).hex()}
        if isinstance(node, dict):
            out = {}
            for key, value in node.items():
                if not isinstance(key, str):
                    raise CheckpointError(f"tree keys must be str, got {key!r}")
                if key in (_ARRAY_KEY, _BYTES_KEY, _TUPLE_KEY):
                    raise CheckpointError(f"reserved tree key {key!r}")
                out[key] = encode(value)
            return out
        if isinstance(node, tuple):
            return {_TUPLE_KEY: [encode(v) for v in node]}
        if isinstance(node, list):
            return [encode(v) for v in node]
        if isinstance(node, (np.integer,)):
            return int(node)
        if isinstance(node, (np.floating,)):
            return float(node)
        if isinstance(node, (np.bool_,)):
            return bool(node)
        if node is None or isinstance(node, (str, int, float, bool)):
            return node
        raise CheckpointError(f"cannot checkpoint value of type {type(node).__name__}")

    skeleton = encode(tree)
    payload = json.dumps(skeleton, separators=(",", ":")).encode("utf-8")
    segments: dict[str, object] = {"__json__": np.frombuffer(payload, dtype=np.uint8)}
    segments.update(arrays)
    try:
        return wire.pack("generic", segments)
    except WireError as exc:
        raise CheckpointError(f"unpackable checkpoint section: {exc}") from exc


def unpack_tree(buf: bytes) -> dict:
    """Inverse of :func:`pack_tree`.

    Arrays come back as fresh *writable* copies — restore paths write
    them into live state in place, so read-only wire views would not do.
    """
    try:
        kind, segments = wire.unpack(buf)
    except WireError as exc:
        raise CheckpointError(f"undecodable checkpoint section: {exc}") from exc
    if kind != "generic" or "__json__" not in segments:
        raise CheckpointError("checkpoint section missing its JSON skeleton")
    skeleton = json.loads(bytes(segments["__json__"]).decode("utf-8"))

    def decode(node):
        if isinstance(node, dict):
            if _ARRAY_KEY in node:
                name = node[_ARRAY_KEY]
                if name not in segments:
                    raise CheckpointError(f"checkpoint section missing array {name!r}")
                return np.array(segments[name], copy=True)
            if _BYTES_KEY in node:
                return bytes.fromhex(node[_BYTES_KEY])
            if _TUPLE_KEY in node:
                return tuple(decode(v) for v in node[_TUPLE_KEY])
            return {key: decode(value) for key, value in node.items()}
        if isinstance(node, list):
            return [decode(v) for v in node]
        return node

    return decode(skeleton)


# -- file container -----------------------------------------------------------------


def write_checkpoint(path: str | Path, meta: dict, sections: dict[str, bytes]) -> Path:
    """Atomically persist ``sections`` (name -> packed bytes) under ``path``.

    The file appears under its final name only after the full content has
    been flushed and fsynced; concurrent writers cannot interleave
    because the temporary name embeds the writer's pid.
    """
    path = Path(path)
    table = []
    offset = None  # filled once the manifest length is known
    blobs = list(sections.items())
    # Two-pass: manifest size depends on offsets, offsets depend on the
    # manifest size.  Build the table with zero offsets first to measure,
    # then shift by the fixed header + manifest length.
    for name, blob in blobs:
        table.append(
            {
                "name": name,
                "offset": 0,
                "length": len(blob),
                "blake2b": _digest(blob).hex(),
            }
        )

    def render(entries) -> bytes:
        manifest = {
            "format_version": FORMAT_VERSION,
            "meta": meta,
            "sections": entries,
        }
        return json.dumps(manifest, sort_keys=True).encode("utf-8")

    # Offsets are fixed-width decimal-agnostic integers in JSON; sizing
    # can shift as offsets grow, so iterate until stable (2 passes in
    # practice, bounded defensively).
    manifest_bytes = render(table)
    for _ in range(8):
        offset = _HEADER.size + len(manifest_bytes)
        cursor = offset
        for entry, (_name, blob) in zip(table, blobs):
            entry["offset"] = cursor
            cursor += len(blob)
        rendered = render(table)
        if len(rendered) == len(manifest_bytes):
            manifest_bytes = rendered
            break
        manifest_bytes = rendered
    else:  # pragma: no cover - would need pathological manifest growth
        raise CheckpointError("manifest layout did not converge")

    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        with open(tmp, "wb") as handle:
            handle.write(_HEADER.pack(MAGIC, len(manifest_bytes), _digest(manifest_bytes)))
            handle.write(manifest_bytes)
            for _name, blob in blobs:
                handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # a failed write leaves no stray temporaries
            try:
                tmp.unlink()
            except OSError:
                pass
    try:  # make the rename itself durable; not all filesystems allow this
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass
    return path


def read_manifest(path: str | Path) -> dict:
    """Read and verify only the manifest (cheap validity/metadata probe)."""
    manifest, _raw = _read_verified_manifest(Path(path))
    return manifest


def _read_verified_manifest(path: Path) -> tuple[dict, bytes]:
    try:
        with open(path, "rb") as handle:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise CheckpointError(f"{path.name}: truncated header")
            magic, manifest_len, manifest_hash = _HEADER.unpack(header)
            if magic != MAGIC:
                raise CheckpointError(f"{path.name}: bad magic {magic!r}")
            manifest_bytes = handle.read(manifest_len)
    except OSError as exc:
        raise CheckpointError(f"{path}: unreadable ({exc})") from exc
    if len(manifest_bytes) < manifest_len:
        raise CheckpointError(f"{path.name}: truncated manifest")
    if _digest(manifest_bytes) != manifest_hash:
        raise CheckpointError(f"{path.name}: manifest hash mismatch")
    try:
        manifest = json.loads(manifest_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path.name}: undecodable manifest") from exc
    if manifest.get("format_version") != FORMAT_VERSION:
        raise CheckpointError(
            f"{path.name}: unsupported format version "
            f"{manifest.get('format_version')!r}"
        )
    return manifest, manifest_bytes


def read_checkpoint(path: str | Path) -> tuple[dict, dict[str, bytes]]:
    """Read, verify, and return ``(manifest, sections)``.

    Every section's length and content hash is checked against the
    manifest; a mismatch anywhere raises :class:`CheckpointError` so the
    caller can roll back to an older checkpoint.
    """
    path = Path(path)
    manifest, _raw = _read_verified_manifest(path)
    sections: dict[str, bytes] = {}
    try:
        with open(path, "rb") as handle:
            for entry in manifest.get("sections", []):
                handle.seek(int(entry["offset"]))
                blob = handle.read(int(entry["length"]))
                if len(blob) < int(entry["length"]):
                    raise CheckpointError(
                        f"{path.name}: section {entry['name']!r} truncated"
                    )
                if _digest(blob).hex() != entry["blake2b"]:
                    raise CheckpointError(
                        f"{path.name}: section {entry['name']!r} hash mismatch"
                    )
                sections[entry["name"]] = blob
    except OSError as exc:
        raise CheckpointError(f"{path}: unreadable ({exc})") from exc
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"{path.name}: malformed section table") from exc
    return manifest, sections
