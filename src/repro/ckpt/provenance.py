"""Run provenance: who produced an artifact, under which configuration.

Every checkpoint (and, when artifacts are persisted, every run artifact
directory) is stamped with a small provenance dict — library version,
a content hash of the *numerically relevant* configuration, the active
dtype policy, and the execution engine — so a resumed run can refuse a
checkpoint written under a different experiment instead of silently
producing subtly different numbers.

The config hash deliberately **excludes** fields that are guaranteed not
to change results: worker count, executor and transport (the parallel
engine is bit-identical to serial by contract) and the checkpointing
knobs themselves (changing the cadence or directory of checkpoints must
not invalidate them).  Everything else — rounds, local steps, batch
size, learning rate, seed, dtype, wire accounting — participates.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields

import repro

# Config fields that cannot change the numbers a run produces.  The
# scale-out knobs qualify by the bit-identity contracts of PR 7:
# history_mode/stream_dir only change how records are stored,
# state_sharding/state_cap/state_dir only change the delta-table layout
# (sharded == dense bit for bit), while `sampler` and `dispatch_cap`
# change which cohorts/updates exist and therefore stay hashed.
_EXECUTION_ONLY_FIELDS = frozenset(
    {
        "num_workers",
        "executor",
        "transport",
        "checkpoint_dir",
        "checkpoint_every",
        "checkpoint_keep",
        "resume",
        "history_mode",
        "stream_dir",
        "state_sharding",
        "state_cap",
        "state_dir",
        "serve_addr",
        "serve_timeout",
        "serve_retries",
        "serve_backoff",
        "serve_max_inflight",
        "serve_queue_bytes",
    }
)


def config_hash(config) -> str:
    """blake2b-128 hex digest of the numerically relevant config fields."""
    relevant = {}
    for field in fields(config):
        if field.name in _EXECUTION_ONLY_FIELDS:
            continue
        value = getattr(config, field.name)
        if field.name == "execution" and value == "serve":
            # Serve mode is the sync protocol over sockets, bit-identical
            # by contract — serve and sync checkpoints interchange.
            value = "sync"
        if field.name == "lr_schedule" and value is not None:
            # Schedules are plain objects; hash their type + attributes.
            value = {
                "type": type(value).__name__,
                "attrs": {
                    k: v for k, v in sorted(vars(value).items())
                    if isinstance(v, (int, float, str, bool))
                },
            }
        relevant[field.name] = value
    payload = json.dumps(relevant, sort_keys=True, default=repr).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def run_provenance(config, algorithm_name: str | None = None) -> dict:
    """The provenance stamp for one run under ``config``."""
    return {
        "repro_version": repro.__version__,
        "config_hash": config_hash(config),
        "algorithm": algorithm_name,
        "seed": config.seed,
        "dtype": config.dtype,
        "transport": config.transport,
        "executor": config.executor,
        "num_workers": config.num_workers,
    }


# Provenance keys that must match exactly for a resume to be sound.
_STRICT_KEYS = ("config_hash", "algorithm", "dtype")


def check_resume_compatible(stored: dict, current: dict) -> None:
    """Refuse to resume from a checkpoint of a different experiment.

    Raises :class:`~repro.exceptions.CheckpointMismatchError` naming each
    differing field and what to do about it.  Execution-engine fields
    (workers / executor / transport) may differ freely — the parallel
    engine is bit-identical to serial — and a library version difference
    is reported as part of the message but is not by itself fatal (the
    config hash catches semantic drift).
    """
    from repro.exceptions import CheckpointMismatchError

    problems = []
    for key in _STRICT_KEYS:
        if stored.get(key) != current.get(key):
            problems.append(f"  {key}: checkpoint={stored.get(key)!r} run={current.get(key)!r}")
    if problems:
        version_note = ""
        if stored.get("repro_version") != current.get("repro_version"):
            version_note = (
                f" (checkpoint written by repro {stored.get('repro_version')}, "
                f"this is {current.get('repro_version')})"
            )
        raise CheckpointMismatchError(
            "refusing to resume: the checkpoint was written by a different "
            "run configuration" + version_note + ":\n"
            + "\n".join(problems)
            + "\nEither rerun with the original configuration, point "
            "checkpoint_dir at a fresh directory, or disable resume to "
            "start over."
        )
