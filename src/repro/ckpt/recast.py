"""Explicit cross-dtype checkpoint migration.

:func:`~repro.ckpt.provenance.check_resume_compatible` is strict about
``dtype``: a float64 checkpoint refuses to resume a float32 run and
vice versa, because silently mixing precisions produces subtly
different numbers.  Sometimes crossing is exactly what is wanted —
finish a long float64 run at float32 speed, or promote a float32
exploration to float64 for a final evaluation.  :func:`recast_checkpoint`
makes that an *explicit*, provenance-stamped migration: every
floating-point array in every section is cast to the target dtype and
the provenance is restamped for the target configuration, with a
``recast_from`` note recording the original stamp.

A recast resume is deterministic but **not** bit-identical to a run
trained natively at the target dtype from round zero — casting is lossy
in one direction and cannot reinvent low bits in the other.  The tool
exists so that trade-off is opted into, never stumbled into.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.ckpt.format import pack_tree, read_checkpoint, unpack_tree, write_checkpoint
from repro.ckpt.manager import CheckpointManager
from repro.ckpt.provenance import run_provenance
from repro.exceptions import CheckpointError


def recast_tree(tree, dtype: np.dtype):
    """Recursively cast every floating-point array in a packed-tree value.

    Integer, boolean and unsigned arrays (client ids, reported masks,
    RNG state words) pass through untouched — only floating payloads
    (model parameters, control variates, delta rows) change width.
    Python float scalars are dtype-free in JSON and stay as they are.
    """
    if isinstance(tree, np.ndarray):
        if np.issubdtype(tree.dtype, np.floating) and tree.dtype != dtype:
            return tree.astype(dtype)
        return tree
    if isinstance(tree, dict):
        return {key: recast_tree(value, dtype) for key, value in tree.items()}
    if isinstance(tree, (list, tuple)):
        return type(tree)(recast_tree(item, dtype) for item in tree)
    return tree


def recast_checkpoint(
    src: str | Path,
    dst: str | Path,
    *,
    config,
    algorithm: str | None = None,
) -> Path:
    """Rewrite checkpoint ``src`` as ``dst`` for the target ``config``.

    ``config`` is the configuration the *continued* run will use (its
    ``dtype`` is the cast target); ``algorithm`` defaults to the one the
    source checkpoint was written by.  The destination carries fresh
    provenance for the target config plus a ``recast_from`` copy of the
    original stamp, so the migration stays auditable.  Raises
    :class:`~repro.exceptions.CheckpointError` when source and target
    dtype are the same — a same-dtype copy hides a config mistake.
    """
    src, dst = Path(src), Path(dst)
    manifest, sections = read_checkpoint(src)
    meta = dict(manifest.get("meta", {}))
    stored = meta.get("provenance", {})
    if stored.get("dtype") == config.dtype:
        raise CheckpointError(
            f"{src.name} is already a {config.dtype} checkpoint; recast is "
            "for crossing dtypes — resume it directly"
        )
    target = np.dtype(config.dtype)
    source = np.dtype(stored.get("dtype", "float64"))
    recast_sections: dict[str, bytes] = {}
    for name, blob in sections.items():
        tree = recast_tree(unpack_tree(blob), target)
        if name == "ledger" and tree.get("dtype_bytes") == source.itemsize:
            # The wire width followed the dtype policy (not an explicit
            # override): migrate it so the continued run's ledger
            # accepts the snapshot.  Historical byte totals keep their
            # source-width accounting — a recast run's traffic mixes
            # widths by definition.
            tree["dtype_bytes"] = target.itemsize
        recast_sections[name] = pack_tree(tree)
    meta["provenance"] = run_provenance(
        config, algorithm if algorithm is not None else stored.get("algorithm")
    )
    meta["provenance"]["recast_from"] = stored
    # The stamp now describes the *target* run, so the round budget must
    # too (extending a run while recasting is legal — the target config
    # hash already covers the new budget).
    meta["rounds_total"] = int(config.rounds)
    dst.parent.mkdir(parents=True, exist_ok=True)
    return write_checkpoint(dst, meta, recast_sections)


def recast_latest(
    src_dir: str | Path,
    dst_dir: str | Path,
    *,
    config,
    algorithm: str | None = None,
) -> Path:
    """Recast the newest valid checkpoint in ``src_dir`` into ``dst_dir``.

    The destination keeps the source's round-indexed file name, so a run
    pointed at ``dst_dir`` with ``resume=True`` picks it up directly.
    """
    src_manager = CheckpointManager(src_dir)
    rounds = src_manager.checkpoint_rounds()
    for round_idx in reversed(rounds):
        src_path = src_manager.path_for(round_idx)
        try:
            read_checkpoint(src_path)
        except CheckpointError:
            continue
        dst_path = Path(dst_dir) / src_path.name
        return recast_checkpoint(
            src_path, dst_path, config=config, algorithm=algorithm
        )
    raise CheckpointError(f"no valid checkpoint to recast in {src_dir}")
