"""Checkpoint directory management: naming, retention, rollback.

A :class:`CheckpointManager` owns one run's checkpoint directory.  Files
are named ``ckpt-<round:08d>.rck`` so lexicographic order is round
order; :meth:`save` writes crash-safely through
:func:`repro.ckpt.format.write_checkpoint` and prunes everything but the
newest ``keep`` checkpoints; :meth:`load_latest_valid` walks the
directory newest-first, skipping (with a warning) any checkpoint that
fails verification, so a torn or bit-rotted newest file rolls the run
back to the previous good one instead of killing it.
"""

from __future__ import annotations

import re
import warnings
from pathlib import Path

from repro.ckpt.format import read_checkpoint, read_manifest, write_checkpoint
from repro.exceptions import CheckpointError

_NAME_RE = re.compile(r"^ckpt-(\d{8})\.rck$")


class CheckpointManager:
    """Create, list, prune, and recover checkpoints in one directory.

    Args:
        directory: the run's checkpoint directory (created on first save).
        keep: retain at most this many checkpoints (the newest ones);
            older files are deleted after every successful save.
    """

    def __init__(self, directory: str | Path, keep: int = 3) -> None:
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self._clean_stray_temporaries()

    def _clean_stray_temporaries(self) -> None:
        """Remove half-written ``*.tmp-*`` files a crashed writer left."""
        if not self.directory.is_dir():
            return
        for stray in self.directory.glob("ckpt-*.rck.tmp-*"):
            try:
                stray.unlink()
            except OSError:
                pass

    # -- naming -------------------------------------------------------------------
    def path_for(self, round_idx: int) -> Path:
        return self.directory / f"ckpt-{round_idx:08d}.rck"

    def checkpoint_rounds(self) -> list[int]:
        """Round indices with a checkpoint file, oldest first."""
        if not self.directory.is_dir():
            return []
        rounds = []
        for entry in self.directory.iterdir():
            match = _NAME_RE.match(entry.name)
            if match:
                rounds.append(int(match.group(1)))
        return sorted(rounds)

    # -- writing ------------------------------------------------------------------
    def save(self, round_idx: int, meta: dict, sections: dict[str, bytes]) -> Path:
        """Persist one round's checkpoint and apply the retention policy."""
        path = write_checkpoint(self.path_for(round_idx), meta, sections)
        self._prune()
        return path

    def _prune(self) -> None:
        rounds = self.checkpoint_rounds()
        for stale in rounds[: -self.keep] if len(rounds) > self.keep else []:
            try:
                self.path_for(stale).unlink()
            except OSError:
                pass

    # -- reading ------------------------------------------------------------------
    def load_latest_valid(self) -> tuple[dict, dict[str, bytes]] | None:
        """The newest checkpoint that passes full verification.

        Returns ``(manifest, sections)`` or ``None`` when the directory
        holds no valid checkpoint at all.  Corrupt files are reported
        with a :class:`RuntimeWarning` and skipped — the run rolls back
        to the newest checkpoint that still verifies.
        """
        for round_idx in reversed(self.checkpoint_rounds()):
            path = self.path_for(round_idx)
            try:
                return read_checkpoint(path)
            except CheckpointError as exc:
                warnings.warn(
                    f"skipping corrupt checkpoint {path.name}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return None

    def latest_manifest(self) -> dict | None:
        """Manifest of the newest *valid* checkpoint (cheap probe)."""
        for round_idx in reversed(self.checkpoint_rounds()):
            try:
                return read_manifest(self.path_for(round_idx))
            except CheckpointError:
                continue
        return None
