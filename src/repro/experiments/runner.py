"""Seeded multi-repeat experiment execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.algorithms import make_algorithm
from repro.data.dataset import FederatedDataset
from repro.fl.config import FLConfig
from repro.fl.metrics import History
from repro.fl.trainer import run_federated
from repro.models.split import SplitModel
from repro.obs.exporters import write_run_artifacts
from repro.obs.trace import Tracer


@dataclass
class RunResult:
    """Aggregated outcome of repeated runs of one algorithm."""

    algorithm: str
    histories: list[History] = field(default_factory=list)
    artifact_dirs: list[Path] = field(default_factory=list)

    def accuracy_mean_std(self, tail: int = 3) -> tuple[float, float]:
        """Mean +/- std of tail-averaged accuracy across repeats
        (the format of the paper's Tables I and II)."""
        accs = np.array([h.tail_mean_accuracy(tail) for h in self.histories])
        return float(accs.mean()), float(accs.std())

    def mean_accuracy_curve(self) -> np.ndarray:
        """(round, mean accuracy) averaged across repeats."""
        curves = [h.accuracies() for h in self.histories]
        rounds = curves[0][:, 0]
        stacked = np.stack([c[:, 1] for c in curves])
        return np.column_stack([rounds, stacked.mean(axis=0)])

    def mean_loss_curve(self) -> np.ndarray:
        losses = np.stack([h.train_losses() for h in self.histories])
        rounds = self.histories[0].rounds()
        return np.column_stack([rounds, losses.mean(axis=0)])

    def mean_round_time(self) -> float:
        return float(np.mean([h.mean_round_time() for h in self.histories]))

    def rounds_to_reach(self, accuracy: float) -> int | None:
        """Median rounds-to-accuracy across repeats (None if never)."""
        reached = [h.rounds_to_reach(accuracy) for h in self.histories]
        reached = [r for r in reached if r is not None]
        if not reached:
            return None
        return int(np.median(reached))


def run_grid(
    algorithm_name: str,
    fed_builder: Callable[[int], FederatedDataset],
    model_fn_builder: Callable[[FederatedDataset, int], Callable[[], SplitModel]],
    config: FLConfig,
    repeats: int = 1,
    eval_per_client: bool = False,
    config_override: dict | None = None,
    trace_out: str | Path | None = None,
    **algorithm_kwargs,
) -> RunResult:
    """Run one algorithm ``repeats`` times with varied seeds.

    Args:
        algorithm_name: registry name ('fedavg', 'rfedavg+', ...).
        fed_builder: seed -> federated dataset (so repeats resample the
            partition, matching the paper's +/- std columns).
        model_fn_builder: (fed, seed) -> model factory.
        config: base config; the seed field is varied per repeat.
        repeats: number of independent runs.
        eval_per_client: forward to the trainer (fairness data).
        config_override: per-algorithm config field overrides — the
            paper itself tunes some methods separately (e.g. FedProx's
            learning rate on cross-device Sent140), and SCAFFOLD needs a
            smaller local lr to stay stable.
        trace_out: when given, each repeat runs traced and persists its
            artifacts (events.jsonl, summary.json, rounds.csv) under
            ``trace_out/<algorithm>-rep<k>/``.
        **algorithm_kwargs: algorithm hyperparameters (lam, mu, q, ...).

    Checkpointing: when ``config.checkpoint_dir`` is set, every repeat
    gets its own cell directory ``<checkpoint_dir>/<algorithm>-rep<k>``
    so repeats never clobber each other's checkpoints.  A finished cell
    is marked with a ``result.json`` (the repeat's full History); with
    ``config.resume`` an interrupted grid reloads finished cells from
    their markers and resumes only the unfinished ones mid-run.
    """
    if config_override:
        config = config.with_updates(**config_override)
    result = RunResult(algorithm=algorithm_name)
    for rep in range(repeats):
        seed = config.seed + 1000 * rep
        run_config = config.with_updates(seed=seed)
        done_marker: Path | None = None
        if config.checkpoint_dir is not None:
            cell_dir = Path(config.checkpoint_dir) / f"{algorithm_name}-rep{rep}"
            run_config = run_config.with_updates(checkpoint_dir=str(cell_dir))
            done_marker = cell_dir / "result.json"
            if config.resume and done_marker.is_file():
                result.histories.append(History.from_json(done_marker.read_text()))
                continue
        fed = fed_builder(seed)
        algorithm = make_algorithm(algorithm_name, **algorithm_kwargs)
        tracer = Tracer() if trace_out is not None else None
        history = run_federated(
            algorithm,
            fed,
            model_fn_builder(fed, seed),
            run_config,
            eval_per_client=eval_per_client,
            tracer=tracer,
        )
        result.histories.append(history)
        if done_marker is not None:
            done_marker.parent.mkdir(parents=True, exist_ok=True)
            done_marker.write_text(history.to_json())
        if trace_out is not None:
            from repro.ckpt.provenance import run_provenance

            out_dir = Path(trace_out) / f"{algorithm_name}-rep{rep}"
            result.artifact_dirs.append(write_run_artifacts(
                out_dir, history, tracer,
                provenance=run_provenance(run_config, algorithm.name),
            ))
    return result


def run_experiment(*args, **kwargs) -> RunResult:
    """Deprecated alias for :func:`run_grid`.

    The name collided with the :func:`repro.run_experiment` preset
    facade — ``repro.run_experiment`` now unambiguously means the
    facade, and the seeded multi-repeat runner is :func:`run_grid`.
    """
    import warnings

    warnings.warn(
        "repro.experiments.runner.run_experiment was renamed to run_grid "
        "(the name now belongs to the repro.run_experiment preset facade); "
        "this alias will be removed",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_grid(*args, **kwargs)


def compare_algorithms(
    algorithms: dict[str, dict],
    fed_builder: Callable[[int], FederatedDataset],
    model_fn_builder: Callable[[FederatedDataset, int], Callable[[], SplitModel]],
    config: FLConfig,
    repeats: int = 1,
    eval_per_client: bool = False,
    config_overrides: dict[str, dict] | None = None,
) -> dict[str, RunResult]:
    """Run several algorithms under identical data/model/seeds.

    ``algorithms`` maps registry names to their kwargs, e.g.
    ``{"fedavg": {}, "rfedavg+": {"lam": 1e-3}}``; ``config_overrides``
    optionally adjusts config fields per algorithm (paper-style
    per-method tuning).
    """
    overrides = config_overrides or {}
    return {
        name: run_experiment(
            name,
            fed_builder,
            model_fn_builder,
            config,
            repeats=repeats,
            eval_per_client=eval_per_client,
            config_override=overrides.get(name),
            **kwargs,
        )
        for name, kwargs in algorithms.items()
    }
