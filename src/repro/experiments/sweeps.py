"""Parameter sweeps (the machinery behind Fig. 9).

A sweep varies one knob — an algorithm hyperparameter (lambda), a config
field (E, SR), or a dataset property (N) — and records the resulting
accuracy series.  The Fig. 9 bench and the CLI ``sweep`` command both
drive this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.dataset import FederatedDataset
from repro.exceptions import ConfigError
from repro.experiments.runner import run_grid
from repro.fl.config import FLConfig
from repro.models.split import SplitModel


def _cell_config(config: FLConfig, knob: str, value) -> FLConfig:
    """Give each swept value its own checkpoint subdirectory.

    Without this every cell of a checkpointed sweep would write into the
    same directory and ``resume`` could cross-resume between values;
    with it an interrupted sweep re-runs only its unfinished cells (the
    per-repeat ``result.json`` markers live inside each cell directory).
    """
    if config.checkpoint_dir is None:
        return config
    from pathlib import Path

    return config.with_updates(
        checkpoint_dir=str(Path(config.checkpoint_dir) / f"{knob}-{value}")
    )


@dataclass
class SweepResult:
    """Accuracy (mean over repeats) per swept value."""

    knob: str
    values: list = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    def best(self):
        """(value, accuracy) of the best-performing setting."""
        if not self.values:
            raise ConfigError("empty sweep")
        idx = int(np.argmax(self.accuracies))
        return self.values[idx], self.accuracies[idx]

    def as_table(self) -> str:
        lines = [f"{self.knob:>12s} {'accuracy':>10s}"]
        for value, acc in zip(self.values, self.accuracies):
            lines.append(f"{str(value):>12s} {acc:10.4f}")
        return "\n".join(lines)


def sweep_algorithm_param(
    algorithm: str,
    knob: str,
    values: list,
    fed_builder: Callable[[int], FederatedDataset],
    model_fn_builder: Callable[[FederatedDataset, int], Callable[[], SplitModel]],
    config: FLConfig,
    repeats: int = 1,
    **fixed_kwargs,
) -> SweepResult:
    """Sweep an algorithm hyperparameter (e.g. lambda for rFedAvg+)."""
    result = SweepResult(knob=knob)
    for value in values:
        kwargs = dict(fixed_kwargs)
        kwargs[knob] = value
        run = run_grid(
            algorithm, fed_builder, model_fn_builder,
            _cell_config(config, knob, value), repeats=repeats, **kwargs
        )
        result.values.append(value)
        result.accuracies.append(run.accuracy_mean_std()[0])
    return result


def sweep_config_field(
    algorithm: str,
    knob: str,
    values: list,
    fed_builder: Callable[[int], FederatedDataset],
    model_fn_builder: Callable[[FederatedDataset, int], Callable[[], SplitModel]],
    config: FLConfig,
    repeats: int = 1,
    **algorithm_kwargs,
) -> SweepResult:
    """Sweep an FLConfig field (e.g. local_steps, sample_ratio)."""
    result = SweepResult(knob=knob)
    for value in values:
        run = run_grid(
            algorithm,
            fed_builder,
            model_fn_builder,
            _cell_config(config.with_updates(**{knob: value}), knob, value),
            repeats=repeats,
            **algorithm_kwargs,
        )
        result.values.append(value)
        result.accuracies.append(run.accuracy_mean_std()[0])
    return result


def sweep_federation(
    algorithm: str,
    knob: str,
    values: list,
    fed_builder_factory: Callable[..., Callable[[int], FederatedDataset]],
    model_fn_builder: Callable[[FederatedDataset, int], Callable[[], SplitModel]],
    config: FLConfig,
    repeats: int = 1,
    **algorithm_kwargs,
) -> SweepResult:
    """Sweep a federation property (e.g. num_clients).

    ``fed_builder_factory(**{knob: value})`` must return a
    seed -> federation builder.
    """
    result = SweepResult(knob=knob)
    for value in values:
        fed_builder = fed_builder_factory(**{knob: value})
        run = run_grid(
            algorithm, fed_builder, model_fn_builder,
            _cell_config(config, knob, value),
            repeats=repeats, **algorithm_kwargs,
        )
        result.values.append(value)
        result.accuracies.append(run.accuracy_mean_std()[0])
    return result
