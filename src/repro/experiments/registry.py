"""Registry mapping every paper table/figure to a runnable spec.

Each :class:`ExperimentSpec` records what the paper measured, the
workload parameters of our scaled reproduction, and which benchmark file
regenerates it.  ``python -m repro.experiments.registry`` prints the
index.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible paper result."""

    exp_id: str  # e.g. 'table1', 'fig9a'
    paper_ref: str  # e.g. 'Table I'
    description: str
    workload: str
    parameters: dict = field(default_factory=dict)
    modules: tuple[str, ...] = ()
    bench: str = ""


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.exp_id: spec
    for spec in [
        ExperimentSpec(
            "fig1",
            "Fig. 1",
            "t-SNE of FedAvg last-FC features, IID vs non-IID clients",
            "synth_cifar, 8 clients, sim in {0%, 100%}",
            {"clients": 8, "similarity": [0.0, 1.0]},
            ("repro.analysis.tsne", "repro.algorithms.fedavg"),
            "benchmarks/test_fig1_tsne.py",
        ),
        ExperimentSpec(
            "fig2_3",
            "Fig. 2 / Fig. 3",
            "MNIST accuracy and loss curves, 6 algorithms",
            "synth_mnist, cross-silo & cross-device, sim in {0%, 10%}",
            {"rounds": "scaled", "algorithms": 6},
            ("repro.experiments.runner",),
            "benchmarks/test_fig2_3_mnist_curves.py",
        ),
        ExperimentSpec(
            "fig4_5",
            "Fig. 4 / Fig. 5",
            "CIFAR10 accuracy and loss curves",
            "synth_cifar, cross-silo & cross-device, sim in {0%, 10%}",
            {},
            ("repro.experiments.runner",),
            "benchmarks/test_fig4_5_cifar_curves.py",
        ),
        ExperimentSpec(
            "fig6_7",
            "Fig. 6 / Fig. 7",
            "Sent140 curves with LSTM + RMSProp",
            "synth_sent140, natural non-IID vs IID",
            {"optimizer": "rmsprop"},
            ("repro.models.lstm",),
            "benchmarks/test_fig6_7_sent140_curves.py",
        ),
        ExperimentSpec(
            "fig8",
            "Fig. 8",
            "FEMNIST curves, 100/500 clients, low/high cost",
            "synth_femnist; low: SR=0.1,E=10; high: SR=0.2,E=20",
            {"clients": [100, 500]},
            ("repro.data.synth_femnist",),
            "benchmarks/test_fig8_femnist.py",
        ),
        ExperimentSpec(
            "fig9a",
            "Fig. 9(a)",
            "Impact of lambda on CIFAR10 sim 0%",
            "lambda sweep around the paper's 1e-5",
            {"lambda": [0.0, 1e-6, 1e-4, 1e-2, 1.0]},
            ("repro.core.regularizer",),
            "benchmarks/test_fig9_parameter_study.py",
        ),
        ExperimentSpec(
            "fig9b",
            "Fig. 9(b)",
            "Impact of client count N",
            "N sweep at fixed SR",
            {"N": [5, 10, 20, 40]},
            ("repro.experiments.runner",),
            "benchmarks/test_fig9_parameter_study.py",
        ),
        ExperimentSpec(
            "fig9c",
            "Fig. 9(c)",
            "Impact of local steps E at fixed rounds",
            "E sweep",
            {"E": [1, 2, 5, 10]},
            ("repro.experiments.runner",),
            "benchmarks/test_fig9_parameter_study.py",
        ),
        ExperimentSpec(
            "fig9d",
            "Fig. 9(d)",
            "Impact of sample ratio SR",
            "SR sweep",
            {"SR": [0.1, 0.2, 0.5, 1.0]},
            ("repro.fl.sampling",),
            "benchmarks/test_fig9_parameter_study.py",
        ),
        ExperimentSpec(
            "fig10ab",
            "Fig. 10(a)/(b)",
            "Minimal rounds to reach accuracy levels",
            "synth_mnist / synth_cifar, cross-device non-IID",
            {},
            ("repro.fl.metrics",),
            "benchmarks/test_fig10_efficiency.py",
        ),
        ExperimentSpec(
            "fig10cd",
            "Fig. 10(c)/(d)",
            "Training time per round (rFedAvg vs rFedAvg+ vs FedAvg)",
            "wall-clock per simulated round",
            {},
            ("repro.fl.metrics",),
            "benchmarks/test_fig10_efficiency.py",
        ),
        ExperimentSpec(
            "fig11",
            "Fig. 11",
            "Per-client fairness scatter (worst clients improve)",
            "synth_mnist / synth_cifar, per-client accuracy",
            {},
            ("repro.analysis.fairness",),
            "benchmarks/test_fig11_fairness.py",
        ),
        ExperimentSpec(
            "fig12",
            "Fig. 12",
            "DP Gaussian noise on delta",
            "sigma2 in {0, 1, 5, 10, 20}",
            {"sigma2": [0, 1, 5, 10, 20]},
            ("repro.core.privacy",),
            "benchmarks/test_fig12_privacy.py",
        ),
        ExperimentSpec(
            "table1",
            "Table I",
            "Cross-silo test accuracy, 3 datasets x 6 methods",
            "N=20 (scaled), E=5, SR=1.0",
            {"N": 20, "E": 5, "SR": 1.0},
            ("repro.experiments.runner",),
            "benchmarks/test_table1_cross_silo.py",
        ),
        ExperimentSpec(
            "table2",
            "Table II",
            "Cross-device test accuracy",
            "N=500 (scaled), E=10, SR=0.2",
            {"N": 500, "E": 10, "SR": 0.2},
            ("repro.experiments.runner",),
            "benchmarks/test_table2_cross_device.py",
        ),
        ExperimentSpec(
            "table3",
            "Table III",
            "Size of delta payload (bytes), CNN/RNN x silo/device",
            "analytic payload model + measured ledger",
            {},
            ("repro.core.delta", "repro.fl.comm"),
            "benchmarks/test_table3_delta_size.py",
        ),
        ExperimentSpec(
            "theory",
            "Thm. 1 / Thm. 2",
            "O(1/T) convergence; C2 < C3 constant ordering",
            "strongly convex logistic model, inverse-decay lr",
            {},
            ("repro.analysis.convergence",),
            "benchmarks/test_convergence_theory.py",
        ),
        ExperimentSpec(
            "ablation_reg",
            "Sec. IV (design)",
            "Delayed vs exact mapping; pairwise vs leave-one-out form; "
            "linear vs RBF MMD reduction",
            "synth_cifar Sim 0%, 8 clients",
            {},
            ("repro.algorithms.rfedavg_exact", "repro.core.mmd"),
            "benchmarks/test_ablation_regularizer_form.py",
        ),
        ExperimentSpec(
            "ablation_comm",
            "Related work (extensions)",
            "Compressed uploads; dropout robustness; byzantine limitation",
            "synth_cifar/mnist Sim 0%, 10 clients",
            {},
            ("repro.fl.compression", "repro.fl.faults"),
            "benchmarks/test_ablation_compression_robustness.py",
        ),
        ExperimentSpec(
            "ext_async_hierarchy",
            "Deployment regimes (extension)",
            "Asynchronous staleness-weighted FL; hierarchical region/cloud FL",
            "synth_mnist Sim 0%, heterogeneous speeds / 2 regions",
            {},
            ("repro.fl.async_engine", "repro.fl.hierarchy"),
            "benchmarks/test_extension_async_hierarchy.py",
        ),
        ExperimentSpec(
            "ext_feature_skew",
            "Ref. [32] (extension)",
            "Feature-distribution skew: IID labels + per-client styles",
            "synth_cifar, skew strength {0.5, 1.5}",
            {"skew_strength": [0.5, 1.5]},
            ("repro.data.transforms",),
            "benchmarks/test_extension_feature_skew.py",
        ),
    ]
}


def get_experiment(exp_id: str) -> ExperimentSpec:
    if exp_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; choose from {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[exp_id]


def _main() -> None:  # pragma: no cover - CLI convenience
    for spec in EXPERIMENTS.values():
        print(f"{spec.exp_id:10s} {spec.paper_ref:16s} {spec.description}")
        print(f"{'':10s} workload: {spec.workload}")
        print(f"{'':10s} bench:    {spec.bench}")


if __name__ == "__main__":  # pragma: no cover
    _main()
