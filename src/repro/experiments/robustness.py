"""Seed-robust method comparison.

FL accuracy differences are frequently within seed noise at small scale;
this module runs two methods over matched seeds and decides — with a
paired t-test and a bootstrap CI — whether the measured difference is
statistically meaningful.  Used to back the EXPERIMENTS.md claims and
available to users comparing their own configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.significance import ComparisonResult, bootstrap_ci, paired_comparison
from repro.data.dataset import FederatedDataset
from repro.exceptions import ConfigError
from repro.experiments.runner import run_grid
from repro.fl.config import FLConfig
from repro.models.split import SplitModel


@dataclass
class RobustComparison:
    """Full output of a matched-seed A-vs-B comparison."""

    name_a: str
    name_b: str
    accs_a: np.ndarray
    accs_b: np.ndarray
    stats: ComparisonResult
    ci_a: tuple[float, float]
    ci_b: tuple[float, float]

    def summary(self) -> str:
        verdict = "SIGNIFICANT" if self.stats.significant else "within seed noise"
        return (
            f"{self.name_a}: {100 * self.stats.mean_a:.2f}% "
            f"(95% CI {100 * self.ci_a[0]:.2f}-{100 * self.ci_a[1]:.2f})\n"
            f"{self.name_b}: {100 * self.stats.mean_b:.2f}% "
            f"(95% CI {100 * self.ci_b[0]:.2f}-{100 * self.ci_b[1]:.2f})\n"
            f"difference {100 * self.stats.difference:+.2f} pts, "
            f"p={self.stats.p_value:.4f} -> {verdict}"
        )


def compare_with_significance(
    algorithm_a: str,
    algorithm_b: str,
    fed_builder: Callable[[int], FederatedDataset],
    model_fn_builder: Callable[[FederatedDataset, int], Callable[[], SplitModel]],
    config: FLConfig,
    repeats: int = 5,
    kwargs_a: dict | None = None,
    kwargs_b: dict | None = None,
    alpha: float = 0.05,
) -> RobustComparison:
    """Run both methods over the same ``repeats`` seeds and test the gap.

    Seeds, data partitions and model initializations are matched
    pairwise between the two methods, so the t-test is a genuine paired
    comparison.
    """
    if repeats < 2:
        raise ConfigError("need at least 2 repeats for a paired test")
    run_a = run_grid(
        algorithm_a, fed_builder, model_fn_builder, config,
        repeats=repeats, **(kwargs_a or {}),
    )
    run_b = run_grid(
        algorithm_b, fed_builder, model_fn_builder, config,
        repeats=repeats, **(kwargs_b or {}),
    )
    accs_a = np.array([h.tail_mean_accuracy(3) for h in run_a.histories])
    accs_b = np.array([h.tail_mean_accuracy(3) for h in run_b.histories])
    return RobustComparison(
        name_a=algorithm_a,
        name_b=algorithm_b,
        accs_a=accs_a,
        accs_b=accs_b,
        stats=paired_comparison(accs_a, accs_b, alpha=alpha),
        ci_a=bootstrap_ci(accs_a),
        ci_b=bootstrap_ci(accs_b),
    )
