"""Dataset/model/config presets for the paper's two evaluation settings.

Paper settings:
* cross-silo:   N = 20,  E = 5,  SR = 1.0, batch 100
* cross-device: N = 500, E = 10, SR = 0.2, batch 32

The builders below default to CPU-budget scales (fewer clients, smaller
synthetic corpora, narrow models) but accept the paper-scale values —
every bench documents the scale it ran at in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data import (
    ArrayDataset,
    DatasetSpec,
    FederatedDataset,
    by_user_partition,
    iid_partition,
    make_synth_cifar,
    make_synth_femnist,
    make_synth_mnist,
    make_synth_sent140,
    similarity_partition,
)
from repro.data.synth_femnist import FemnistConfig
from repro.data.synth_sent140 import Sent140Config
from repro.exceptions import ConfigError
from repro.fl.config import FLConfig
from repro.models import SplitModel, build_model


def cross_silo_config(**overrides) -> FLConfig:
    """The paper's cross-silo setting (full participation)."""
    base = dict(rounds=30, local_steps=5, batch_size=100, sample_ratio=1.0, lr=0.1)
    base.update(overrides)
    return FLConfig(**base)


def cross_device_config(**overrides) -> FLConfig:
    """The paper's cross-device setting (20% participation)."""
    base = dict(rounds=30, local_steps=10, batch_size=32, sample_ratio=0.2, lr=0.1)
    base.update(overrides)
    return FLConfig(**base)


_IMAGE_MAKERS = {
    "synth_mnist": make_synth_mnist,
    "synth_cifar": make_synth_cifar,
}


def build_image_federation(
    dataset: str,
    num_clients: int = 10,
    similarity: float = 0.0,
    num_train: int = 2000,
    num_test: int = 500,
    image_size: int = 12,
    seed: int = 0,
) -> FederatedDataset:
    """Synth-MNIST/CIFAR partitioned with the paper's similarity split.

    ``similarity`` is the fraction s of IID data (0.0 = Sim 0%,
    0.1 = Sim 10%, 1.0 = Sim 100% in the paper's tables).
    """
    if dataset not in _IMAGE_MAKERS:
        raise ConfigError(f"unknown image dataset {dataset!r}; choose from {sorted(_IMAGE_MAKERS)}")
    spec, train, test = _IMAGE_MAKERS[dataset](
        num_train=num_train, num_test=num_test, image_size=image_size, seed=seed
    )
    rng = np.random.default_rng([seed, 0xDA7A])
    parts = similarity_partition(train.y, num_clients, similarity, rng)
    clients = [train.subset(p) for p in parts]
    return FederatedDataset(spec=spec, clients=clients, test=test)


def build_sent140_federation(
    num_users: int = 50,
    iid: bool = False,
    tweets_per_user: float = 20.0,
    seq_len: int = 10,
    vocab_size: int = 200,
    seed: int = 0,
) -> FederatedDataset:
    """Synth-Sent140, naturally non-IID by user (or shuffled for IID).

    Mirrors the paper: "we sample 500 users directly from the dataset as
    the non-IID setting, and randomly shuffle the subset and evenly
    allocate it to the 500 clients to simulate the IID setting."
    """
    cfg = Sent140Config(
        num_users=num_users,
        tweets_per_user_mean=tweets_per_user,
        seq_len=seq_len,
        vocab_size=vocab_size,
        seed=seed,
    )
    spec, train, test, user_ids = make_synth_sent140(cfg)
    if iid:
        rng = np.random.default_rng([seed, 0x11D])
        parts = iid_partition(len(train), num_users, rng)
    else:
        parts = by_user_partition(user_ids)
    clients = [train.subset(p) for p in parts]
    return FederatedDataset(spec=spec, clients=clients, test=test)


def build_femnist_federation(
    num_writers: int = 50,
    samples_per_writer: int = 20,
    image_size: int = 12,
    num_classes: int = 10,
    iid: bool = False,
    seed: int = 0,
) -> FederatedDataset:
    """Synth-FEMNIST, naturally non-IID by writer (or shuffled for IID)."""
    cfg = FemnistConfig(
        num_writers=num_writers,
        samples_per_writer_mean=samples_per_writer,
        image_size=image_size,
        num_classes=num_classes,
        seed=seed,
    )
    spec, train, test, writer_ids = make_synth_femnist(cfg)
    if iid:
        rng = np.random.default_rng([seed, 0x11D])
        parts = iid_partition(len(train), num_writers, rng)
    else:
        parts = by_user_partition(writer_ids)
    clients = [train.subset(p) for p in parts]
    return FederatedDataset(spec=spec, clients=clients, test=test)


def build_virtual_federation(
    population: int,
    similarity: float = 0.0,
    samples_per_client: int = 20,
    image_size: int = 12,
    size_sigma: float = 0.0,
    num_test: int = 256,
    max_live: int = 256,
    seed: int = 0,
):
    """A lazy synth-MNIST population for cross-device scale-out.

    Clients are ``(seed, partition-spec)`` recipes materialized on
    demand (:mod:`repro.data.virtual`), so ``population`` can be in the
    millions: resident memory is bounded by ``max_live`` shards, not N.
    Pair with ``sampler='reservoir'`` and ``history_mode='stream'`` to
    keep the whole run O(cohort) — see docs/scale.md.
    """
    from repro.data.virtual import make_virtual_federation

    return make_virtual_federation(
        population,
        seed=seed,
        similarity=similarity,
        samples_per_client=samples_per_client,
        image_size=image_size,
        size_sigma=size_sigma,
        num_test=num_test,
        max_live=max_live,
    )


def build_feature_skew_federation(
    dataset: str = "synth_mnist",
    num_clients: int = 10,
    skew_strength: float = 1.0,
    num_train: int = 2000,
    num_test: int = 500,
    image_size: int = 12,
    seed: int = 0,
) -> FederatedDataset:
    """Feature-distribution-skewed federation (Li et al. 2022's third
    non-IID type, and the regularizer's home turf).

    Labels are partitioned IID, then every client's inputs pass through
    a fixed client-specific style (brightness / shift / noise) from
    :func:`repro.data.transforms.client_style_pipeline`.  The test set
    is an equal mixture of all client styles, so the global model is
    scored on the union distribution.
    """
    from repro.data.transforms import client_style_pipeline

    if dataset not in _IMAGE_MAKERS:
        raise ConfigError(f"unknown image dataset {dataset!r}")
    spec, train, test = _IMAGE_MAKERS[dataset](
        num_train=num_train, num_test=num_test, image_size=image_size, seed=seed
    )
    rng = np.random.default_rng([seed, 0xFEA7])
    parts = iid_partition(len(train), num_clients, rng)
    clients = []
    for client_id, part in enumerate(parts):
        shard = train.subset(part)
        style = client_style_pipeline(client_id, skew_strength, base_seed=seed)
        clients.append(ArrayDataset(style.apply(shard.x, rng), shard.y))
    # Styled test mixture: chunk i gets client i's style.
    test_x = test.x.copy()
    for client_id, chunk in enumerate(np.array_split(np.arange(len(test)), num_clients)):
        style = client_style_pipeline(client_id, skew_strength, base_seed=seed)
        test_x[chunk] = style.apply(test.x[chunk], rng)
    styled_test = ArrayDataset(test_x, test.y)
    return FederatedDataset(spec=spec, clients=clients, test=styled_test)


def default_model_fn(
    model_name: str, spec: DatasetSpec, seed: int = 0, scale: float = 0.25
) -> Callable[[], SplitModel]:
    """A deterministic model factory for :func:`repro.fl.run_federated`.

    ``scale=1.0`` builds the paper-size architectures; the default 0.25
    is the CPU-budget width used by the benches.
    """

    def factory() -> SplitModel:
        return build_model(model_name, spec, seed=seed, scale=scale)

    return factory
