"""Experiment presets, the table/figure registry, and the runner."""

from repro.experiments.presets import (
    build_image_federation,
    build_sent140_federation,
    build_femnist_federation,
    build_feature_skew_federation,
    build_virtual_federation,
    default_model_fn,
    cross_silo_config,
    cross_device_config,
)
from repro.experiments.facade import RunPreset, RUN_PRESETS, list_presets
from repro.experiments.runner import run_grid, compare_algorithms, RunResult
from repro.experiments.registry import EXPERIMENTS, ExperimentSpec, get_experiment
from repro.experiments.report import format_accuracy_table, format_curve, format_rounds_table
from repro.experiments.robustness import RobustComparison, compare_with_significance
from repro.experiments.sweeps import (
    SweepResult,
    sweep_algorithm_param,
    sweep_config_field,
    sweep_federation,
)

__all__ = [
    "build_image_federation",
    "build_sent140_federation",
    "build_femnist_federation",
    "build_feature_skew_federation",
    "build_virtual_federation",
    "default_model_fn",
    "cross_silo_config",
    "cross_device_config",
    "RunPreset",
    "RUN_PRESETS",
    "list_presets",
    "run_grid",
    "compare_algorithms",
    "RunResult",
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
    "format_accuracy_table",
    "format_curve",
    "format_rounds_table",
    "SweepResult",
    "sweep_algorithm_param",
    "sweep_config_field",
    "sweep_federation",
    "RobustComparison",
    "compare_with_significance",
]
