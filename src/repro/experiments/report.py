"""Paper-style text rendering of experiment results."""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import RunResult

# Canonical display names matching the paper's tables.
DISPLAY_NAMES = {
    "fedavg": "FedAvg",
    "fedprox": "FedProx",
    "scaffold": "Scaffold",
    "qfedavg": "q-FedAvg",
    "rfedavg": "rFedAvg",
    "rfedavg+": "rFedAvg+",
    "rfedavg_exact": "rFedAvg-exact",
}


def display_name(key: str) -> str:
    return DISPLAY_NAMES.get(key, key)


def format_accuracy_table(
    columns: dict[str, dict[str, RunResult]],
    title: str = "",
    tail: int = 3,
) -> str:
    """Render a Table I/II-shaped block: methods x settings.

    Args:
        columns: setting name -> (algorithm name -> RunResult).
        title: table caption line.
        tail: tail length for the reported accuracy average.
    """
    settings = list(columns)
    methods: list[str] = []
    for results in columns.values():
        for name in results:
            if name not in methods:
                methods.append(name)
    width = max(14, max(len(display_name(m)) for m in methods) + 2)
    lines = []
    if title:
        lines.append(title)
    header = "Method".ljust(width) + "".join(s.rjust(18) for s in settings)
    lines.append(header)
    lines.append("-" * len(header))
    for method in methods:
        row = display_name(method).ljust(width)
        for setting in settings:
            result = columns[setting].get(method)
            if result is None:
                row += "-".rjust(18)
                continue
            mean, std = result.accuracy_mean_std(tail)
            row += f"{100 * mean:6.2f} +/- {100 * std:4.2f}".rjust(18)
        lines.append(row)
    return "\n".join(lines)


def format_curve(result: RunResult, metric: str = "accuracy") -> str:
    """Render one algorithm's per-round series as aligned text."""
    if metric == "accuracy":
        curve = result.mean_accuracy_curve()
        label = "acc"
    else:
        curve = result.mean_loss_curve()
        label = "loss"
    lines = [f"{display_name(result.algorithm)} ({label})"]
    for round_idx, value in curve:
        lines.append(f"  round {int(round_idx):4d}  {value:8.4f}")
    return "\n".join(lines)


def format_rounds_table(
    results: dict[str, RunResult], thresholds: list[float], title: str = ""
) -> str:
    """Fig. 10a/b: minimal rounds needed to reach each accuracy level."""
    lines = []
    if title:
        lines.append(title)
    header = "Method".ljust(16) + "".join(f"acc>={t:.2f}".rjust(12) for t in thresholds)
    lines.append(header)
    lines.append("-" * len(header))
    for name, result in results.items():
        row = display_name(name).ljust(16)
        for threshold in thresholds:
            rounds = result.rounds_to_reach(threshold)
            row += (str(rounds) if rounds is not None else ">max").rjust(12)
        lines.append(row)
    return "\n".join(lines)


def format_comm_table(rows: dict[str, dict[str, int]], title: str = "") -> str:
    """Table III-shaped block: per-method payload sizes in bytes."""
    lines = []
    if title:
        lines.append(title)
    settings = list(next(iter(rows.values())).keys()) if rows else []
    header = "Method".ljust(16) + "".join(s.rjust(16) for s in settings)
    lines.append(header)
    lines.append("-" * len(header))
    for name, cells in rows.items():
        row = display_name(name).ljust(16)
        for setting in settings:
            row += f"{cells[setting]:,}".rjust(16)
        lines.append(row)
    return "\n".join(lines)


def summarize_fairness(per_client: np.ndarray, worst_k: int = 5) -> dict[str, float]:
    """Worst-client statistics for the fairness evaluation (Fig. 11)."""
    sorted_acc = np.sort(per_client)
    return {
        "mean": float(per_client.mean()),
        "std": float(per_client.std()),
        "worst": float(sorted_acc[0]),
        f"worst{worst_k}_mean": float(sorted_acc[:worst_k].mean()),
        "best": float(sorted_acc[-1]),
    }
