"""Single public entry point for named, runnable experiments.

:func:`run_experiment` resolves a :class:`RunPreset` from the
:data:`RUN_PRESETS` registry, builds the federation / model / config /
algorithm it describes, runs one federated job, and (optionally) writes
run artifacts — so examples and the CLI don't each re-implement the
builder plumbing.

    import repro
    history, artifacts = repro.run_experiment(
        "quickstart", seed=0, overrides={"algorithm": "fedavg"}, trace=True
    )

``overrides`` keys are routed by name: :class:`RunPreset` fields
(``dataset``, ``algorithm``, ``clients``, ``similarity``, ...) override
the preset, :class:`~repro.fl.config.FLConfig` fields (``rounds``,
``lr``, ...) override the training config, and anything else is passed
to the algorithm constructor (``lam``, ``mu``, ``q``, ``eta_g``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Sequence

from repro.algorithms import make_algorithm
from repro.data.dataset import FederatedDataset
from repro.exceptions import ConfigError
from repro.experiments.presets import (
    build_femnist_federation,
    build_image_federation,
    build_sent140_federation,
    build_virtual_federation,
    cross_device_config,
    cross_silo_config,
    default_model_fn,
)
from repro.fl.config import FLConfig
from repro.fl.metrics import History
from repro.fl.trainer import run_federated
from repro.obs.exporters import write_run_artifacts
from repro.obs.trace import Tracer


@dataclass(frozen=True)
class RunPreset:
    """One named, directly runnable experiment configuration."""

    name: str
    description: str
    dataset: str = "synth_mnist"
    algorithm: str = "rfedavg+"
    algorithm_kwargs: dict = field(default_factory=dict)
    model: str | None = None  # None: mlp for images, lstm for sequences
    scale: float = 1.0
    clients: int = 10
    similarity: float = 0.0  # image datasets only
    iid: bool = False  # sent140 / femnist only
    num_train: int = 2000
    num_test: int = 400
    scenario: str = "cross_silo"  # 'cross_silo' | 'cross_device'
    population: int | None = None  # virtual (lazy) population size; overrides clients
    max_live: int = 256  # resident-shard LRU bound for virtual populations
    config: dict = field(default_factory=dict)


RUN_PRESETS: dict[str, RunPreset] = {
    preset.name: preset
    for preset in [
        RunPreset(
            "quickstart",
            "rFedAvg+ on fully non-IID synth-MNIST, example scale",
            dataset="synth_mnist",
            algorithm="rfedavg+",
            algorithm_kwargs={"lam": 1e-3},
            config=dict(rounds=60, batch_size=32, lr=0.5, eval_every=5),
        ),
        RunPreset(
            "cifar-noniid",
            "rFedAvg+ on fully non-IID synth-CIFAR (Table I column, example scale)",
            dataset="synth_cifar",
            algorithm="rfedavg+",
            algorithm_kwargs={"lam": 1e-3},
            config=dict(rounds=60, batch_size=32, lr=0.5, eval_every=4),
        ),
        RunPreset(
            "sent140-lstm",
            "LSTM + RMSProp on naturally non-IID synth-Sent140",
            dataset="synth_sent140",
            algorithm="rfedavg+",
            algorithm_kwargs={"lam": 0.1},
            clients=20,
            scale=0.25,
            config=dict(rounds=20, batch_size=16, optimizer="rmsprop", lr=0.01,
                        eval_every=5),
        ),
        RunPreset(
            "device-scale",
            "Cross-device scale-out: 100k virtual clients, 100-client cohorts, "
            "streaming ledgers (see docs/scale.md)",
            dataset="synth_mnist",
            algorithm="fedavg",
            population=100_000,
            scenario="cross_device",
            config=dict(rounds=10, local_steps=2, sample_ratio=0.001,
                        eval_every=5, sampler="reservoir",
                        history_mode="stream"),
        ),
        RunPreset(
            "femnist-device",
            "Cross-device FEMNIST (writer-skewed, 20% participation)",
            dataset="synth_femnist",
            algorithm="rfedavg+",
            algorithm_kwargs={"lam": 1e-3},
            clients=50,
            scale=0.25,
            scenario="cross_device",
            config=dict(rounds=30, eval_every=5),
        ),
    ]
}

_PRESET_FIELDS = {f.name for f in fields(RunPreset)} - {"name", "description", "config",
                                                        "algorithm_kwargs"}
_CONFIG_FIELDS = {f.name for f in fields(FLConfig)}


def list_presets() -> Sequence[RunPreset]:
    """The registered presets, in registration order."""
    return list(RUN_PRESETS.values())


def _resolve(name: str, overrides: dict | None) -> tuple[RunPreset, dict, dict]:
    """Split overrides into (preset, config overrides, algorithm kwargs)."""
    if name not in RUN_PRESETS:
        raise ConfigError(
            f"unknown experiment {name!r}; choose from {sorted(RUN_PRESETS)}"
        )
    preset = RUN_PRESETS[name]
    config_overrides: dict = {}
    algorithm_kwargs = dict(preset.algorithm_kwargs)
    preset_updates: dict = {}
    for key, value in (overrides or {}).items():
        if key in _PRESET_FIELDS:
            preset_updates[key] = value
        elif key in _CONFIG_FIELDS:
            config_overrides[key] = value
        else:
            algorithm_kwargs[key] = value
    if preset_updates.get("algorithm", preset.algorithm) != preset.algorithm:
        # Switching algorithms drops the preset's method-specific kwargs
        # (e.g. rfedavg+'s lam makes no sense for fedavg).
        algorithm_kwargs = {
            k: v for k, v in algorithm_kwargs.items()
            if k not in preset.algorithm_kwargs or k in (overrides or {})
        }
    if preset_updates:
        preset = replace(preset, **preset_updates)
    return preset, config_overrides, algorithm_kwargs


def _build_federation(preset: RunPreset, seed: int) -> FederatedDataset:
    if preset.population is not None:
        if preset.dataset != "synth_mnist":
            raise ConfigError(
                "virtual populations are procedural and currently back "
                f"'synth_mnist' only, not {preset.dataset!r}"
            )
        return build_virtual_federation(
            preset.population,
            similarity=preset.similarity,
            num_test=preset.num_test,
            max_live=preset.max_live,
            seed=seed,
        )
    if preset.dataset in ("synth_mnist", "synth_cifar"):
        return build_image_federation(
            preset.dataset,
            num_clients=preset.clients,
            similarity=preset.similarity,
            num_train=preset.num_train,
            num_test=preset.num_test,
            seed=seed,
        )
    if preset.dataset == "synth_sent140":
        return build_sent140_federation(
            num_users=preset.clients, iid=preset.iid, seed=seed
        )
    if preset.dataset == "synth_femnist":
        return build_femnist_federation(
            num_writers=preset.clients, iid=preset.iid, seed=seed
        )
    raise ConfigError(f"unknown dataset {preset.dataset!r}")


def run_experiment(
    name: str,
    *,
    seed: int = 0,
    overrides: dict | None = None,
    callbacks=None,
    trace: bool = False,
    artifacts_dir: str | Path | None = None,
    workers: int | None = None,
    transport: str | None = None,
    execution: str | None = None,
    runtime: str | None = None,
    buffer_size: int | None = None,
    staleness_exponent: float | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int | None = None,
    resume: bool = False,
    compression: str | None = None,
    sync_compression: str | None = None,
    error_feedback: bool | None = None,
    topology: str | None = None,
    cloud_compression: str | None = None,
    serve_addr: str | None = None,
    serve_timeout: float | None = None,
) -> tuple[History, Path | None]:
    """Run the named experiment preset; return ``(history, artifacts_path)``.

    Args:
        name: a :data:`RUN_PRESETS` key (see :func:`list_presets`).
        seed: master seed (fed partition, model init, round sampling).
        overrides: preset / config / algorithm overrides, routed by key.
        callbacks: per-round callables forwarded to
            :func:`~repro.fl.trainer.run_federated`.
        trace: collect spans + metrics and persist run artifacts
            (default directory ``runs/<name>-seed<seed>``).
        artifacts_dir: where to write artifacts (implies persistence
            even without ``trace``; with ``trace`` overrides the default
            directory).
        workers: client-execution worker processes (shorthand for the
            ``num_workers`` config override; results are bit-identical
            for any value).
        transport: parallel payload transport — 'wire' (packed
            shared-memory, the default) or 'pickle'; shorthand for the
            ``transport`` config override.
        execution: 'sync' (default), 'async' — the event-driven
            buffered engine (:mod:`repro.fl.async_engine`) — or 'serve'
            — the multi-process socket engine (:mod:`repro.serve`);
            shorthand for the ``execution`` config override.
        runtime: per-client latency model spec for async execution
            ('instant', 'gaussian:het=2', 'trace:<path.json>');
            shorthand for the ``runtime`` config override.
        buffer_size: aggregate after this many updates arrive (async;
            default: the full cohort); shorthand for the config
            override.
        staleness_exponent: staleness discount exponent ``a`` in
            ``(1+s)^-a`` (async); shorthand for the config override.
        checkpoint_dir: write crash-safe checkpoints here
            (:mod:`repro.ckpt`); shorthand for the config override.
        checkpoint_every: checkpoint cadence in rounds (shorthand).
        resume: resume from the newest valid checkpoint in
            ``checkpoint_dir``; the continued run is bit-identical to
            an uninterrupted one.
        compression: lossy upload-compression pipeline spec
            (``'topk:0.01|qsgd:8'``, see :mod:`repro.fl.compression`);
            shorthand for the ``compression`` config override.
        sync_compression: pipeline spec for the rFedAvg+ second
            synchronization (shorthand for the config override).
        error_feedback: keep per-client error-feedback residuals under
            lossy compression (default True; shorthand for the config
            override).
        topology: aggregation topology — 'flat' (default) or
            'hier:R:P' (R regions aggregating in parallel, cloud sync
            every P rounds; see :mod:`repro.fl.hierarchy`); shorthand
            for the ``topology`` config override.
        cloud_compression: compression pipeline spec for the region ->
            cloud uplink of hierarchical runs (shorthand for the config
            override).
        serve_addr: listen address for ``execution='serve'``
            (``'tcp:HOST:PORT'`` / ``'uds:/path.sock'``; shorthand for
            the config override).
        serve_timeout: serve-mode stall deadline in seconds (shorthand
            for the config override).

    Returns:
        The run's :class:`History` and the artifact directory (``None``
        when nothing was persisted).
    """
    preset, config_overrides, algorithm_kwargs = _resolve(name, overrides)

    fed = _build_federation(preset, seed)
    base_config = (
        cross_device_config if preset.scenario == "cross_device" else cross_silo_config
    )
    if workers is not None:
        config_overrides = {**config_overrides, "num_workers": workers}
    if transport is not None:
        config_overrides = {**config_overrides, "transport": transport}
    if execution is not None:
        config_overrides = {**config_overrides, "execution": execution}
    if runtime is not None:
        config_overrides = {**config_overrides, "runtime": runtime}
    if buffer_size is not None:
        config_overrides = {**config_overrides, "buffer_size": buffer_size}
    if staleness_exponent is not None:
        config_overrides = {
            **config_overrides, "staleness_exponent": staleness_exponent
        }
    if checkpoint_dir is not None:
        config_overrides = {**config_overrides, "checkpoint_dir": str(checkpoint_dir)}
    if checkpoint_every is not None:
        config_overrides = {**config_overrides, "checkpoint_every": checkpoint_every}
    if resume:
        config_overrides = {**config_overrides, "resume": True}
    if compression is not None:
        config_overrides = {**config_overrides, "compression": compression}
    if sync_compression is not None:
        config_overrides = {**config_overrides, "sync_compression": sync_compression}
    if error_feedback is not None:
        config_overrides = {**config_overrides, "error_feedback": error_feedback}
    if topology is not None:
        config_overrides = {**config_overrides, "topology": topology}
    if cloud_compression is not None:
        config_overrides = {**config_overrides, "cloud_compression": cloud_compression}
    if serve_addr is not None:
        config_overrides = {**config_overrides, "serve_addr": serve_addr}
    if serve_timeout is not None:
        config_overrides = {**config_overrides, "serve_timeout": serve_timeout}
    config = base_config(**{**preset.config, **config_overrides, "seed": seed})
    model_name = preset.model or ("lstm" if fed.spec.kind == "sequence" else "mlp")
    model_fn = default_model_fn(model_name, fed.spec, seed=seed, scale=preset.scale)
    try:
        algorithm = make_algorithm(preset.algorithm, **algorithm_kwargs)
    except TypeError as exc:
        # An override that matched neither a preset nor a config field
        # was routed here; surface it as a config problem, not a crash.
        raise ConfigError(
            f"bad overrides for algorithm {preset.algorithm!r}: {exc}"
        ) from exc

    tracer = Tracer() if trace else None
    history = run_federated(
        algorithm, fed, model_fn, config, callbacks=callbacks, tracer=tracer
    )

    artifacts_path: Path | None = None
    if trace or artifacts_dir is not None:
        from repro.ckpt.provenance import run_provenance

        out_dir = Path(artifacts_dir) if artifacts_dir is not None else (
            Path("runs") / f"{name}-seed{seed}"
        )
        artifacts_path = write_run_artifacts(
            out_dir, history, tracer,
            provenance=run_provenance(config, algorithm.name),
        )
    return history, artifacts_path
