"""Input transforms / augmentations for image datasets.

Client-side augmentation is standard practice in FL image pipelines;
these numpy transforms compose into a :class:`Pipeline` that can be
applied to an :class:`~repro.data.dataset.ArrayDataset` (eagerly, so the
training loop stays allocation-free) or per-batch.

All transforms accept and return (N, C, H, W) arrays and take an
explicit rng for reproducibility.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.exceptions import DataError


class Transform:
    """Interface: map an (N, C, H, W) batch to a same-shape batch."""

    def apply(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


class RandomShift(Transform):
    """Shift each image by up to ``max_pixels`` in each spatial axis."""

    def __init__(self, max_pixels: int = 1) -> None:
        if max_pixels < 0:
            raise DataError("max_pixels must be non-negative")
        self.max_pixels = max_pixels

    def apply(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = np.empty_like(images)
        m = self.max_pixels
        for i, img in enumerate(images):
            dy, dx = rng.integers(-m, m + 1, size=2)
            shifted = np.roll(img, (int(dy), int(dx)), axis=(1, 2))
            if dy > 0:
                shifted[:, :dy, :] = 0.0
            elif dy < 0:
                shifted[:, dy:, :] = 0.0
            if dx > 0:
                shifted[:, :, :dx] = 0.0
            elif dx < 0:
                shifted[:, :, dx:] = 0.0
            out[i] = shifted
        return out


class HorizontalFlip(Transform):
    """Flip each image left-right with probability ``prob``."""

    def __init__(self, prob: float = 0.5) -> None:
        if not 0.0 <= prob <= 1.0:
            raise DataError("prob must be in [0, 1]")
        self.prob = prob

    def apply(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flips = rng.random(len(images)) < self.prob
        out = images.copy()
        out[flips] = out[flips, :, :, ::-1]
        return out


class GaussianNoise(Transform):
    """Additive pixel noise, clipped back to [0, 1]."""

    def __init__(self, sigma: float = 0.05) -> None:
        if sigma < 0:
            raise DataError("sigma must be non-negative")
        self.sigma = sigma

    def apply(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.sigma == 0:
            return images.copy()
        noisy = images + rng.normal(0.0, self.sigma, size=images.shape)
        return np.clip(noisy, 0.0, 1.0)


class Cutout(Transform):
    """Zero a random square patch of side ``size`` per image."""

    def __init__(self, size: int = 3) -> None:
        if size <= 0:
            raise DataError("size must be positive")
        self.size = size

    def apply(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        _n, _c, height, width = images.shape
        if self.size > min(height, width):
            raise DataError("cutout larger than image")
        out = images.copy()
        for img in out:
            top = int(rng.integers(0, height - self.size + 1))
            left = int(rng.integers(0, width - self.size + 1))
            img[:, top : top + self.size, left : left + self.size] = 0.0
        return out


class Pipeline(Transform):
    """Apply transforms in order."""

    def __init__(self, *transforms: Transform) -> None:
        self.transforms = list(transforms)

    def apply(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            images = transform.apply(images, rng)
        return images


class BrightnessScale(Transform):
    """Multiply pixel intensities by a fixed factor (clipped to [0, 1])."""

    def __init__(self, factor: float) -> None:
        if factor <= 0:
            raise DataError("factor must be positive")
        self.factor = factor

    def apply(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.clip(images * self.factor, 0.0, 1.0)


class FixedShift(Transform):
    """Shift every image by the same (dy, dx) offset — a client 'camera
    misalignment' style."""

    def __init__(self, dy: int, dx: int) -> None:
        self.dy = dy
        self.dx = dx

    def apply(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = np.roll(images, (self.dy, self.dx), axis=(2, 3))
        if self.dy > 0:
            out[:, :, : self.dy, :] = 0.0
        elif self.dy < 0:
            out[:, :, self.dy :, :] = 0.0
        if self.dx > 0:
            out[:, :, :, : self.dx] = 0.0
        elif self.dx < 0:
            out[:, :, :, self.dx :] = 0.0
        return out


def client_style_pipeline(
    client_id: int, strength: float = 1.0, base_seed: int = 0
) -> Pipeline:
    """A deterministic per-client input style (feature-skew non-IIDness).

    Each client gets its own fixed brightness, shift and noise level —
    the "same physical- and device-dependent context" per client that
    the paper's Sec. III-B assumes.  ``strength`` in [0, ~2] scales how
    far styles diverge; 0 returns an identity-ish pipeline.
    """
    if strength < 0:
        raise DataError("strength must be non-negative")
    rng = np.random.default_rng([base_seed, 0x57F1E, client_id])
    factor = float(np.exp(rng.uniform(-0.5, 0.5) * strength))
    max_shift = int(round(2 * strength))
    dy = int(rng.integers(-max_shift, max_shift + 1)) if max_shift else 0
    dx = int(rng.integers(-max_shift, max_shift + 1)) if max_shift else 0
    sigma = float(rng.uniform(0.0, 0.08) * strength)
    return Pipeline(BrightnessScale(factor), FixedShift(dy, dx), GaussianNoise(sigma))


def augment_dataset(
    dataset: ArrayDataset, pipeline: Transform, rng: np.random.Generator, copies: int = 1
) -> ArrayDataset:
    """Return ``dataset`` plus ``copies`` augmented replicas of it."""
    if copies < 1:
        raise DataError("copies must be >= 1")
    xs = [dataset.x]
    ys = [dataset.y]
    for _ in range(copies):
        xs.append(pipeline.apply(dataset.x, rng))
        ys.append(dataset.y)
    return ArrayDataset(np.concatenate(xs), np.concatenate(ys))
