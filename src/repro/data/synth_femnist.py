"""Synthetic FEMNIST: per-writer styled glyphs with quantity skew.

FEMNIST partitions Extended MNIST by the *writer* of each character, so
clients differ in handwriting style (feature skew) and sample count
(quantity skew).  This generator fixes a random :class:`GlyphStyle` per
writer, draws lognormal per-writer sample counts, and renders glyphs
from a configurable class set (digits only by default; digits + A-Z for
the larger variant).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset, DatasetSpec
from repro.data.glyphs import GLYPH_SET, random_style, render_glyph
from repro.data.partition import quantity_skew_sizes
from repro.exceptions import DataError


@dataclass(frozen=True)
class FemnistConfig:
    """Generator knobs for the synthetic FEMNIST corpus."""

    num_writers: int = 100
    samples_per_writer_mean: int = 20
    image_size: int = 12
    num_classes: int = 10  # 10 = digits; up to 36 adds A-Z
    quantity_sigma: float = 0.8  # lognormal spread of writer sizes
    noise: float = 0.15
    test_fraction: float = 0.2
    seed: int = 0


def make_synth_femnist(
    config: FemnistConfig | None = None,
) -> tuple[DatasetSpec, ArrayDataset, ArrayDataset, np.ndarray]:
    """Generate the corpus.

    Returns (spec, train, test, train_writer_ids); writer ids align with
    the train set for natural by-user partitioning.
    """
    cfg = config if config is not None else FemnistConfig()
    if not 1 <= cfg.num_classes <= len(GLYPH_SET):
        raise DataError(f"num_classes must be in [1, {len(GLYPH_SET)}]")
    rng = np.random.default_rng(cfg.seed)

    total = cfg.num_writers * cfg.samples_per_writer_mean
    sizes = quantity_skew_sizes(
        total, cfg.num_writers, rng, sigma=cfg.quantity_sigma, min_size=4
    )

    images: list[np.ndarray] = []
    labels: list[int] = []
    writers: list[int] = []
    for writer, size in enumerate(sizes):
        style = random_style(rng, cfg.image_size, noise=cfg.noise)
        # Writers also have a mild label preference (they practice some
        # characters more), adding label skew on top of feature skew.
        pref = rng.dirichlet(2.0 * np.ones(cfg.num_classes))
        for _ in range(size):
            label = int(rng.choice(cfg.num_classes, p=pref))
            img = render_glyph(GLYPH_SET[label], cfg.image_size, style, rng, jitter=1)
            images.append(img[None, :, :])
            labels.append(label)
            writers.append(writer)

    x = np.stack(images)
    y = np.array(labels, dtype=np.int64)
    writer_ids = np.array(writers, dtype=np.int64)

    order = rng.permutation(len(y))
    cut = int(round((1.0 - cfg.test_fraction) * len(y)))
    train_idx, test_idx = order[:cut], order[cut:]

    spec = DatasetSpec(
        name="synth_femnist",
        kind="image",
        input_shape=(1, cfg.image_size, cfg.image_size),
        num_classes=cfg.num_classes,
    )
    train = ArrayDataset(x[train_idx], y[train_idx])
    test = ArrayDataset(x[test_idx], y[test_idx])
    return spec, train, test, writer_ids[train_idx]
