"""Virtual (lazy) federated populations for cross-device scale-out.

The paper's cross-device setting samples a ~100-client cohort from a
population that can be millions strong.  Because every dataset in
``repro.data`` is procedural, a client does not need to *exist* as an
array to be trainable — it only needs a recipe.  This module makes the
recipe first-class:

- :class:`VirtualPartition` is the ``(seed, partition-spec)`` handle: a
  frozen description of the whole population (dataset family, label
  skew, per-client sizes) from which any single client's shard can be
  rendered independently via :func:`materialize_client`.
- :class:`VirtualClientSet` is a lazy sequence of
  :class:`~repro.data.dataset.ArrayDataset` shards: ``clients[k]``
  materializes client ``k`` on demand and keeps at most ``max_live``
  shards resident (LRU), so a million-client population costs the
  memory of a cohort, not a census.
- :class:`VirtualFederatedDataset` duck-types
  :class:`~repro.data.dataset.FederatedDataset` (``clients`` /
  ``test`` / ``num_clients`` / ``client_sizes`` / ``weights``) so the
  trainer, the executors and every algorithm run unchanged on top of a
  virtual population.

Bit-identity contract: ``virtual.materialize()`` returns an eager
``FederatedDataset`` whose client shards are byte-for-byte the arrays
the lazy path would render, because both call the same
:func:`materialize_client` with the same per-client RNG stream
``[seed, _TAG_CLIENT, client_id]``.  A run over the virtual population
therefore produces bit-identical results to the same run over its
eager materialization (``tests/fl/test_scale_equivalence.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset, DatasetSpec, FederatedDataset
from repro.data.glyphs import GlyphStyle, render_glyph
from repro.data.synth_mnist import DIGITS
from repro.exceptions import DataError

# RNG stream tags: every virtual draw derives from [seed, tag, ...] so
# streams never collide with each other or with the trainer's
# [seed, round, client, ...] keys.
_TAG_CLIENT = 0xD7C1
_TAG_TEST = 0xD7E5
_TAG_SIZES = 0xD751


@dataclass(frozen=True)
class VirtualPartition:
    """Recipe for a procedurally generated federated population.

    Attributes:
        population: number of virtual clients N (any size; nothing here
            is O(N) except one int64 size vector).
        seed: master seed; every client's shard derives from
            ``[seed, tag, client_id]`` and nothing else, so shards can
            be rendered in any order, in any process, with identical
            bytes.
        dataset: procedural dataset family ('synth_mnist').
        samples_per_client: base shard size n_k (exact when
            ``size_sigma == 0``).
        similarity: the paper's s% knob — each sample is drawn IID
            uniform over labels with probability ``similarity``, and
            from the client's home label otherwise (0.0 = fully
            non-IID label skew, 1.0 = IID).
        image_size: glyph canvas side.
        noise: per-pixel render noise.
        size_sigma: lognormal quantity skew over shard sizes
            (0.0 = uniform ``samples_per_client`` everywhere).
        min_samples: shard-size floor under quantity skew.
        num_test: size of the eagerly rendered global test set.
    """

    population: int
    seed: int = 0
    dataset: str = "synth_mnist"
    samples_per_client: int = 20
    similarity: float = 0.0
    image_size: int = 12
    noise: float = 0.1
    size_sigma: float = 0.0
    min_samples: int = 4
    num_test: int = 256

    def __post_init__(self) -> None:
        if self.population <= 0:
            raise DataError("population must be positive")
        if self.dataset != "synth_mnist":
            raise DataError(
                f"unknown virtual dataset {self.dataset!r}; only procedural "
                "families can back a virtual population ('synth_mnist')"
            )
        if not 0.0 <= self.similarity <= 1.0:
            raise DataError("similarity must be in [0, 1]")
        if self.samples_per_client < 1:
            raise DataError("samples_per_client must be >= 1")
        if self.min_samples < 1:
            raise DataError("min_samples must be >= 1")
        if self.size_sigma < 0:
            raise DataError("size_sigma must be non-negative")
        if self.image_size < 9:
            raise DataError("image_size must be at least 9 to fit a glyph")

    @property
    def num_classes(self) -> int:
        return 10

    def dataset_spec(self) -> DatasetSpec:
        return DatasetSpec(
            name=self.dataset,
            kind="image",
            input_shape=(1, self.image_size, self.image_size),
            num_classes=self.num_classes,
        )

    def home_label(self, client_id: int) -> int:
        """The client's skewed label: contiguous id blocks share a label,
        so id-range strata align with label strata."""
        return (client_id * self.num_classes) // self.population

    def client_sizes(self) -> np.ndarray:
        """All N shard sizes as one vectorized draw (int64, O(N) but
        flat — 8 MB at a million clients)."""
        if self.size_sigma == 0.0:
            return np.full(self.population, self.samples_per_client, dtype=np.int64)
        rng = np.random.default_rng([self.seed, _TAG_SIZES])
        raw = rng.lognormal(mean=0.0, sigma=self.size_sigma, size=self.population)
        sizes = np.round(self.samples_per_client * raw).astype(np.int64)
        return np.maximum(sizes, self.min_samples)


def materialize_client(
    partition: VirtualPartition, client_id: int, size: int
) -> ArrayDataset:
    """Render client ``client_id``'s shard from its own RNG stream.

    Pure function of ``(partition, client_id, size)`` — the lazy path,
    the eager :meth:`VirtualPartition <VirtualFederatedDataset.materialize>`
    path, and forked worker processes all produce identical bytes.
    """
    if not 0 <= client_id < partition.population:
        raise DataError(
            f"client_id {client_id} out of range for population {partition.population}"
        )
    rng = np.random.default_rng([partition.seed, _TAG_CLIENT, client_id])
    coins = rng.random(size)
    iid_labels = rng.integers(0, partition.num_classes, size=size)
    labels = np.where(
        coins < partition.similarity, iid_labels, partition.home_label(client_id)
    ).astype(np.int64)
    images = np.zeros((size, 1, partition.image_size, partition.image_size))
    for i, label in enumerate(labels):
        style = GlyphStyle(
            shear=float(rng.uniform(-0.15, 0.15)),
            thickness=int(rng.integers(0, 2)),
            scale=1,
            intensity=float(rng.uniform(0.75, 1.0)),
            noise=partition.noise,
        )
        images[i, 0] = render_glyph(
            DIGITS[label], partition.image_size, style, rng, jitter=1
        )
    return ArrayDataset(images, labels)


def materialize_test(partition: VirtualPartition) -> ArrayDataset:
    """The (small, eager) global test set: IID over all labels."""
    rng = np.random.default_rng([partition.seed, _TAG_TEST])
    labels = rng.integers(0, partition.num_classes, size=partition.num_test)
    images = np.zeros((partition.num_test, 1, partition.image_size, partition.image_size))
    for i, label in enumerate(labels):
        style = GlyphStyle(
            shear=float(rng.uniform(-0.15, 0.15)),
            thickness=int(rng.integers(0, 2)),
            scale=1,
            intensity=float(rng.uniform(0.75, 1.0)),
            noise=partition.noise,
        )
        images[i, 0] = render_glyph(
            DIGITS[label], partition.image_size, style, rng, jitter=1
        )
    return ArrayDataset(images, labels)


class VirtualClientSet:
    """Lazy sequence of client shards with a bounded LRU of live ones.

    ``clients[k]`` renders client ``k`` on first touch and caches the
    shard; at most ``max_live`` shards stay resident, evicted least
    recently used.  Eviction only ever forces a re-render — the shard's
    bytes are a pure function of ``(partition, k)``, so lazy and eager
    access are bit-identical for any ``max_live``.
    """

    def __init__(
        self, partition: VirtualPartition, sizes: np.ndarray, max_live: int = 256
    ) -> None:
        if max_live < 1:
            raise DataError(f"max_live must be >= 1, got {max_live}")
        self.partition = partition
        self._sizes = sizes
        self.max_live = max_live
        self._live: OrderedDict[int, ArrayDataset] = OrderedDict()
        self.materializations = 0

    def __len__(self) -> int:
        return self.partition.population

    def __getitem__(self, client_id: int) -> ArrayDataset:
        client_id = int(client_id)
        shard = self._live.get(client_id)
        if shard is not None:
            self._live.move_to_end(client_id)
            return shard
        shard = materialize_client(
            self.partition, client_id, int(self._sizes[client_id])
        )
        self.materializations += 1
        self._live[client_id] = shard
        while len(self._live) > self.max_live:
            self._live.popitem(last=False)
        return shard

    def __iter__(self):
        # Iteration materializes every client (through the LRU) — fine
        # for small populations and opt-in full-population evaluation;
        # cohort-based code paths never iterate.
        for client_id in range(len(self)):
            yield self[client_id]

    @property
    def live_clients(self) -> int:
        """Number of currently materialized shards (bounded by max_live)."""
        return len(self._live)

    def release(self) -> None:
        """Drop every live shard (e.g. at a round boundary)."""
        self._live.clear()


class VirtualFederatedDataset:
    """A federated dataset whose clients are recipes, not arrays.

    Duck-types :class:`~repro.data.dataset.FederatedDataset`: the
    trainer, samplers, executors and algorithms only use ``clients[k]``,
    ``test``, ``num_clients``, ``client_sizes``, ``weights`` and
    ``total_train_samples()``, all of which work here without ever
    materializing the population.  ``virtual`` is True so scale-aware
    code (sharded delta tables, round-boundary shard release, RSS
    gauges) can detect it with ``getattr(fed, "virtual", False)``.
    """

    virtual = True

    def __init__(self, partition: VirtualPartition, max_live: int = 256) -> None:
        self.partition = partition
        self.spec = partition.dataset_spec()
        self._sizes = partition.client_sizes()
        self.clients = VirtualClientSet(partition, self._sizes, max_live=max_live)
        self.test = materialize_test(partition)
        self.client_test: list[ArrayDataset] = []

    @property
    def num_clients(self) -> int:
        return self.partition.population

    @property
    def client_sizes(self) -> np.ndarray:
        return self._sizes

    @property
    def weights(self) -> np.ndarray:
        sizes = self._sizes.astype(np.float64)
        return sizes / sizes.sum()

    def total_train_samples(self) -> int:
        return int(self._sizes.sum())

    def release(self) -> None:
        self.clients.release()

    def materialize(self) -> FederatedDataset:
        """The eager equivalent: every shard rendered up front.

        This is the bit-identity reference — only sensible for small
        populations (tests, benchmark gates).
        """
        shards = [
            materialize_client(self.partition, k, int(self._sizes[k]))
            for k in range(self.partition.population)
        ]
        return FederatedDataset(
            spec=self.spec, clients=shards, test=self.test, client_test=[]
        )


def make_virtual_federation(
    population: int,
    *,
    seed: int = 0,
    similarity: float = 0.0,
    samples_per_client: int = 20,
    image_size: int = 12,
    noise: float = 0.1,
    size_sigma: float = 0.0,
    num_test: int = 256,
    max_live: int = 256,
) -> VirtualFederatedDataset:
    """Convenience builder for a virtual synthetic-MNIST population."""
    partition = VirtualPartition(
        population=population,
        seed=seed,
        similarity=similarity,
        samples_per_client=samples_per_client,
        image_size=image_size,
        noise=noise,
        size_sigma=size_sigma,
        num_test=num_test,
    )
    return VirtualFederatedDataset(partition, max_live=max_live)
