"""Synthetic CIFAR10: noisy class-conditional colored textures.

A *hard* 10-class RGB image task.  Each class is defined by a base hue
and an oriented sinusoidal texture; every sample draws a random phase,
contrast, hue jitter and heavy additive noise, so achievable accuracy is
well below 100% and non-IID partitions cost tens of points — matching
the role CIFAR10 plays in the paper's evaluation (Sec. VI-B2).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ArrayDataset, DatasetSpec
from repro.exceptions import DataError

NUM_CLASSES = 10


def _class_prototypes(
    image_size: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-class (hue RGB triple, texture frequency, texture angle)."""
    hues = rng.uniform(0.2, 1.0, size=(NUM_CLASSES, 3))
    freqs = rng.uniform(1.0, 3.5, size=NUM_CLASSES)
    angles = rng.uniform(0.0, np.pi, size=NUM_CLASSES)
    return hues, freqs, angles


def make_synth_cifar(
    num_train: int = 2000,
    num_test: int = 500,
    image_size: int = 12,
    seed: int = 0,
    noise: float = 0.35,
) -> tuple[DatasetSpec, ArrayDataset, ArrayDataset]:
    """Generate the synthetic CIFAR train/test sets.

    Returns (spec, train, test).  Images are (3, image_size, image_size)
    float64 in [0, 1].
    """
    if image_size < 4:
        raise DataError("image_size must be at least 4")
    rng = np.random.default_rng(seed)
    hues, freqs, angles = _class_prototypes(image_size, rng)
    spec = DatasetSpec(
        name="synth_cifar",
        kind="image",
        input_shape=(3, image_size, image_size),
        num_classes=NUM_CLASSES,
    )
    train = _render_split(num_train, image_size, noise, hues, freqs, angles, rng)
    test = _render_split(num_test, image_size, noise, hues, freqs, angles, rng)
    return spec, train, test


def _render_split(
    count: int,
    image_size: int,
    noise: float,
    hues: np.ndarray,
    freqs: np.ndarray,
    angles: np.ndarray,
    rng: np.random.Generator,
) -> ArrayDataset:
    labels = rng.integers(0, NUM_CLASSES, size=count)
    yy, xx = np.meshgrid(
        np.linspace(0, 1, image_size), np.linspace(0, 1, image_size), indexing="ij"
    )
    images = np.zeros((count, 3, image_size, image_size))
    for i, label in enumerate(labels):
        phase = rng.uniform(0, 2 * np.pi)
        contrast = rng.uniform(0.5, 1.0)
        angle = angles[label] + rng.normal(0.0, 0.15)
        coord = np.cos(angle) * xx + np.sin(angle) * yy
        texture = 0.5 + 0.5 * np.sin(2 * np.pi * freqs[label] * coord + phase)
        hue = np.clip(hues[label] + rng.normal(0.0, 0.08, size=3), 0.0, 1.0)
        img = contrast * hue[:, None, None] * texture[None, :, :]
        img = img + rng.normal(0.0, noise, size=img.shape)
        images[i] = np.clip(img, 0.0, 1.0)
    return ArrayDataset(images, labels)
