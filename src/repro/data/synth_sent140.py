"""Synthetic Sent140: token sequences with per-user vocabulary skew.

Sent140's role in the paper is a *naturally* non-IID sequence dataset:
each Twitter user writes with their own vocabulary (feature skew) and
posts a different number of tweets (quantity skew).  This generator
reproduces both:

* a global vocabulary is split into positive-sentiment, negative-
  sentiment, and neutral words;
* each user owns a sparse preference distribution over the neutral
  vocabulary (their personal "style"), plus a personal sentiment prior;
* each tweet is a length-T mixture of sentiment-bearing and style words,
  labeled by its sentiment.

Partitioning ``by_user`` yields the natural non-IID split; shuffling all
tweets and splitting evenly yields the paper's simulated IID setting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset, DatasetSpec
from repro.exceptions import DataError


@dataclass(frozen=True)
class Sent140Config:
    """Generator knobs for the synthetic Sent140 corpus."""

    num_users: int = 50
    tweets_per_user_mean: float = 20.0
    seq_len: int = 10
    vocab_size: int = 200
    num_sentiment_words: int = 30  # per polarity
    sentiment_word_rate: float = 0.35  # fraction of tokens that carry sentiment
    style_dim: int = 12  # neutral words each user actually uses
    seed: int = 0


def make_synth_sent140(
    config: Sent140Config | None = None,
) -> tuple[DatasetSpec, ArrayDataset, ArrayDataset, np.ndarray]:
    """Generate the corpus.

    Returns (spec, train, test, train_user_ids).  ``train_user_ids``
    aligns with the train set and feeds
    :func:`repro.data.partition.by_user_partition` for the natural
    non-IID split.
    """
    cfg = config if config is not None else Sent140Config()
    if cfg.vocab_size < 2 * cfg.num_sentiment_words + cfg.style_dim:
        raise DataError("vocab too small for the requested word groups")
    rng = np.random.default_rng(cfg.seed)

    pos_words = np.arange(0, cfg.num_sentiment_words)
    neg_words = np.arange(cfg.num_sentiment_words, 2 * cfg.num_sentiment_words)
    neutral_words = np.arange(2 * cfg.num_sentiment_words, cfg.vocab_size)

    xs: list[np.ndarray] = []
    ys: list[int] = []
    users: list[int] = []
    for user in range(cfg.num_users):
        count = max(2, int(rng.poisson(cfg.tweets_per_user_mean)))
        style = rng.choice(neutral_words, size=cfg.style_dim, replace=False)
        style_probs = rng.dirichlet(np.ones(cfg.style_dim))
        sentiment_prior = float(rng.beta(2.0, 2.0))
        for _ in range(count):
            label = int(rng.random() < sentiment_prior)
            sentiment_pool = pos_words if label == 1 else neg_words
            tokens = np.empty(cfg.seq_len, dtype=np.int64)
            for t in range(cfg.seq_len):
                if rng.random() < cfg.sentiment_word_rate:
                    tokens[t] = rng.choice(sentiment_pool)
                else:
                    tokens[t] = rng.choice(style, p=style_probs)
            xs.append(tokens)
            ys.append(label)
            users.append(user)

    x = np.stack(xs)
    y = np.array(ys, dtype=np.int64)
    user_ids = np.array(users, dtype=np.int64)

    # Hold out a stratified-by-user test slice.
    order = rng.permutation(len(y))
    cut = int(round(0.8 * len(y)))
    train_idx, test_idx = order[:cut], order[cut:]

    spec = DatasetSpec(
        name="synth_sent140",
        kind="sequence",
        input_shape=(cfg.seq_len,),
        num_classes=2,
        vocab_size=cfg.vocab_size,
    )
    train = ArrayDataset(x[train_idx], y[train_idx])
    test = ArrayDataset(x[test_idx], y[test_idx])
    return spec, train, test, user_ids[train_idx]
