"""Disk caching for generated datasets.

The synthetic generators are deterministic but not free (glyph rendering
is per-sample Python); callers that rebuild the same corpus repeatedly —
the benchmark suite, notebook-style exploration — can wrap any generator
in :func:`cached_dataset` to persist the arrays as ``.npz`` keyed by the
generator's arguments.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable

import numpy as np

from repro.data.dataset import ArrayDataset, DatasetSpec
from repro.exceptions import DataError


def _cache_key(name: str, params: dict) -> str:
    """Stable filename for a (generator, arguments) pair."""
    payload = json.dumps({"name": name, "params": params}, sort_keys=True, default=str)
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    return f"{name}-{digest}.npz"


def cached_dataset(
    cache_dir: str,
    name: str,
    params: dict,
    generator: Callable[[], tuple[DatasetSpec, ArrayDataset, ArrayDataset]],
) -> tuple[DatasetSpec, ArrayDataset, ArrayDataset]:
    """Load (spec, train, test) from cache, generating on a miss.

    Args:
        cache_dir: directory for ``.npz`` files (created if missing).
        name: generator identity (part of the cache key).
        params: the generator's arguments (part of the cache key).
        generator: zero-arg callable producing (spec, train, test).
    """
    os.makedirs(cache_dir, exist_ok=True)
    path = os.path.join(cache_dir, _cache_key(name, params))
    if os.path.exists(path):
        return _load(path)
    spec, train, test = generator()
    _save(path, spec, train, test)
    return spec, train, test


def _save(path: str, spec: DatasetSpec, train: ArrayDataset, test: ArrayDataset) -> None:
    np.savez_compressed(
        path,
        train_x=train.x,
        train_y=train.y,
        test_x=test.x,
        test_y=test.y,
        spec=json.dumps(
            {
                "name": spec.name,
                "kind": spec.kind,
                "input_shape": list(spec.input_shape),
                "num_classes": spec.num_classes,
                "vocab_size": spec.vocab_size,
            }
        ),
    )


def _load(path: str) -> tuple[DatasetSpec, ArrayDataset, ArrayDataset]:
    try:
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["spec"]))
            spec = DatasetSpec(
                name=meta["name"],
                kind=meta["kind"],
                input_shape=tuple(meta["input_shape"]),
                num_classes=meta["num_classes"],
                vocab_size=meta["vocab_size"],
            )
            train = ArrayDataset(data["train_x"], data["train_y"])
            test = ArrayDataset(data["test_x"], data["test_y"])
            return spec, train, test
    except (KeyError, ValueError, json.JSONDecodeError) as exc:
        raise DataError(f"corrupt dataset cache file {path}: {exc}") from exc


def clear_cache(cache_dir: str, name: str | None = None) -> int:
    """Delete cached datasets; returns the number of files removed."""
    if not os.path.isdir(cache_dir):
        return 0
    removed = 0
    for filename in os.listdir(cache_dir):
        if not filename.endswith(".npz"):
            continue
        if name is not None and not filename.startswith(f"{name}-"):
            continue
        os.remove(os.path.join(cache_dir, filename))
        removed += 1
    return removed
