"""A tiny bitmap glyph font and a procedural glyph renderer.

This is the image-generation engine behind the synthetic MNIST and
FEMNIST stand-ins: each sample is a 5x7 glyph pasted onto a canvas with
randomized shift, shear (slant), thickness (dilation) and pixel noise.
Per-*sample* randomization gives MNIST-like intra-class variation;
per-*writer* randomization (fixing the style parameters per writer)
gives FEMNIST-like feature-distribution skew.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError

_FONT_ROWS = {
    "0": ["01110", "10001", "10011", "10101", "11001", "10001", "01110"],
    "1": ["00100", "01100", "00100", "00100", "00100", "00100", "01110"],
    "2": ["01110", "10001", "00001", "00110", "01000", "10000", "11111"],
    "3": ["11111", "00010", "00100", "00010", "00001", "10001", "01110"],
    "4": ["00010", "00110", "01010", "10010", "11111", "00010", "00010"],
    "5": ["11111", "10000", "11110", "00001", "00001", "10001", "01110"],
    "6": ["00110", "01000", "10000", "11110", "10001", "10001", "01110"],
    "7": ["11111", "00001", "00010", "00100", "01000", "01000", "01000"],
    "8": ["01110", "10001", "10001", "01110", "10001", "10001", "01110"],
    "9": ["01110", "10001", "10001", "01111", "00001", "00010", "01100"],
    "A": ["01110", "10001", "10001", "11111", "10001", "10001", "10001"],
    "B": ["11110", "10001", "10001", "11110", "10001", "10001", "11110"],
    "C": ["01110", "10001", "10000", "10000", "10000", "10001", "01110"],
    "D": ["11100", "10010", "10001", "10001", "10001", "10010", "11100"],
    "E": ["11111", "10000", "10000", "11110", "10000", "10000", "11111"],
    "F": ["11111", "10000", "10000", "11110", "10000", "10000", "10000"],
    "G": ["01110", "10001", "10000", "10111", "10001", "10001", "01111"],
    "H": ["10001", "10001", "10001", "11111", "10001", "10001", "10001"],
    "I": ["01110", "00100", "00100", "00100", "00100", "00100", "01110"],
    "J": ["00111", "00010", "00010", "00010", "00010", "10010", "01100"],
    "K": ["10001", "10010", "10100", "11000", "10100", "10010", "10001"],
    "L": ["10000", "10000", "10000", "10000", "10000", "10000", "11111"],
    "M": ["10001", "11011", "10101", "10101", "10001", "10001", "10001"],
    "N": ["10001", "10001", "11001", "10101", "10011", "10001", "10001"],
    "O": ["01110", "10001", "10001", "10001", "10001", "10001", "01110"],
    "P": ["11110", "10001", "10001", "11110", "10000", "10000", "10000"],
    "Q": ["01110", "10001", "10001", "10001", "10101", "10010", "01101"],
    "R": ["11110", "10001", "10001", "11110", "10100", "10010", "10001"],
    "S": ["01111", "10000", "10000", "01110", "00001", "00001", "11110"],
    "T": ["11111", "00100", "00100", "00100", "00100", "00100", "00100"],
    "U": ["10001", "10001", "10001", "10001", "10001", "10001", "01110"],
    "V": ["10001", "10001", "10001", "10001", "10001", "01010", "00100"],
    "W": ["10001", "10001", "10001", "10101", "10101", "10101", "01010"],
    "X": ["10001", "10001", "01010", "00100", "01010", "10001", "10001"],
    "Y": ["10001", "10001", "01010", "00100", "00100", "00100", "00100"],
    "Z": ["11111", "00001", "00010", "00100", "01000", "10000", "11111"],
}

GLYPH_SET = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def glyph_bitmap(char: str) -> np.ndarray:
    """Return the 7x5 float bitmap for a supported character."""
    if char not in _FONT_ROWS:
        raise DataError(f"no glyph for {char!r}")
    rows = _FONT_ROWS[char]
    return np.array([[float(c) for c in row] for row in rows])


@dataclass(frozen=True)
class GlyphStyle:
    """Rendering style knobs; fixed per writer for FEMNIST-like skew.

    Attributes:
        shear: horizontal slant in pixels per row (negative = left).
        thickness: 0 = thin strokes, 1 = dilated strokes.
        scale: integer upscale factor of the 5x7 bitmap.
        intensity: stroke brightness in (0, 1].
        noise: per-pixel Gaussian noise sigma.
    """

    shear: float = 0.0
    thickness: int = 0
    scale: int = 1
    intensity: float = 1.0
    noise: float = 0.1


def _dilate(bitmap: np.ndarray) -> np.ndarray:
    """4-neighborhood binary dilation (stroke thickening)."""
    padded = np.pad(bitmap, 1)
    out = (
        padded[1:-1, 1:-1]
        + padded[:-2, 1:-1]
        + padded[2:, 1:-1]
        + padded[1:-1, :-2]
        + padded[1:-1, 2:]
    )
    return (out > 0).astype(np.float64)


def _shear_rows(img: np.ndarray, shear: float) -> np.ndarray:
    """Shift each row horizontally by round(shear * row_index)."""
    out = np.zeros_like(img)
    for row in range(img.shape[0]):
        shift = int(round(shear * row))
        out[row] = np.roll(img[row], shift)
        if shift > 0:
            out[row, :shift] = 0.0
        elif shift < 0:
            out[row, shift:] = 0.0
    return out


def render_glyph(
    char: str,
    canvas_size: int,
    style: GlyphStyle,
    rng: np.random.Generator,
    jitter: int = 1,
) -> np.ndarray:
    """Render one noisy glyph sample onto a (canvas_size, canvas_size) canvas.

    The glyph is scaled, thickened, sheared, placed with a random
    ``jitter``-pixel offset around the center, then corrupted with
    Gaussian pixel noise.  Output values are clipped to [0, 1].
    """
    bitmap = glyph_bitmap(char)
    for _ in range(style.thickness):
        bitmap = _dilate(bitmap)
    if style.scale > 1:
        bitmap = np.kron(bitmap, np.ones((style.scale, style.scale)))
    if style.shear:
        bitmap = _shear_rows(bitmap, style.shear)
    glyph_h, glyph_w = bitmap.shape
    if glyph_h > canvas_size or glyph_w > canvas_size:
        raise DataError(
            f"glyph {glyph_h}x{glyph_w} does not fit canvas {canvas_size}"
        )
    canvas = np.zeros((canvas_size, canvas_size))
    top0 = (canvas_size - glyph_h) // 2
    left0 = (canvas_size - glyph_w) // 2
    top = int(np.clip(top0 + rng.integers(-jitter, jitter + 1), 0, canvas_size - glyph_h))
    left = int(np.clip(left0 + rng.integers(-jitter, jitter + 1), 0, canvas_size - glyph_w))
    canvas[top : top + glyph_h, left : left + glyph_w] = bitmap * style.intensity
    canvas += rng.normal(0.0, style.noise, size=canvas.shape)
    return np.clip(canvas, 0.0, 1.0)


def random_style(
    rng: np.random.Generator,
    canvas_size: int,
    noise: float = 0.1,
) -> GlyphStyle:
    """Draw a random writer style that is guaranteed to fit the canvas."""
    max_scale = max(1, min((canvas_size - 2) // 7, (canvas_size - 2) // 5))
    scale = int(rng.integers(1, max_scale + 1))
    return GlyphStyle(
        shear=float(rng.uniform(-0.4, 0.4)),
        thickness=int(rng.integers(0, 2)),
        scale=scale,
        intensity=float(rng.uniform(0.7, 1.0)),
        noise=noise,
    )
