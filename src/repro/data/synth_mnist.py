"""Synthetic MNIST: rendered digit glyphs with per-sample jitter.

An *easy* 10-class grayscale image task.  Like real MNIST in the paper's
evaluation, even extreme label-skew partitions only cost a few points of
accuracy here, because the classes are nearly linearly separable.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ArrayDataset, DatasetSpec
from repro.data.glyphs import GlyphStyle, render_glyph
from repro.exceptions import DataError

DIGITS = "0123456789"


def make_synth_mnist(
    num_train: int = 2000,
    num_test: int = 500,
    image_size: int = 12,
    seed: int = 0,
    noise: float = 0.1,
) -> tuple[DatasetSpec, ArrayDataset, ArrayDataset]:
    """Generate the synthetic MNIST train/test sets.

    Returns (spec, train, test).  Images are (1, image_size, image_size)
    float64 in [0, 1]; labels are the digit value.
    """
    if image_size < 9:
        raise DataError("image_size must be at least 9 to fit a glyph")
    rng = np.random.default_rng(seed)
    spec = DatasetSpec(
        name="synth_mnist",
        kind="image",
        input_shape=(1, image_size, image_size),
        num_classes=10,
    )
    train = _render_split(num_train, image_size, noise, rng)
    test = _render_split(num_test, image_size, noise, rng)
    return spec, train, test


def _render_split(
    count: int, image_size: int, noise: float, rng: np.random.Generator
) -> ArrayDataset:
    labels = rng.integers(0, 10, size=count)
    images = np.zeros((count, 1, image_size, image_size))
    for i, label in enumerate(labels):
        style = GlyphStyle(
            shear=float(rng.uniform(-0.15, 0.15)),
            thickness=int(rng.integers(0, 2)),
            scale=1,
            intensity=float(rng.uniform(0.75, 1.0)),
            noise=noise,
        )
        images[i, 0] = render_glyph(DIGITS[label], image_size, style, rng, jitter=1)
    return ArrayDataset(images, labels)
