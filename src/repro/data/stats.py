"""Quantitative skew measures for federated partitions.

Used by tests (to verify the partitioners actually produce the skew they
claim) and by the experiment reports (to characterize each setting).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ArrayDataset


def label_histograms(
    clients: list[ArrayDataset], num_classes: int, normalize: bool = True
) -> np.ndarray:
    """Per-client label distributions, shape (num_clients, num_classes)."""
    hist = np.stack([c.label_counts(num_classes).astype(np.float64) for c in clients])
    if normalize:
        hist /= np.maximum(hist.sum(axis=1, keepdims=True), 1.0)
    return hist


def mean_pairwise_tv_distance(hist: np.ndarray) -> float:
    """Mean total-variation distance between all client label pairs.

    0 = identical label distributions (IID); 1 = disjoint label support
    (extreme non-IID).
    """
    n = hist.shape[0]
    if n < 2:
        return 0.0
    total = 0.0
    count = 0
    for i in range(n):
        diffs = np.abs(hist[i + 1 :] - hist[i]).sum(axis=1) / 2.0
        total += float(diffs.sum())
        count += len(diffs)
    return total / count


def label_entropy(hist: np.ndarray) -> np.ndarray:
    """Per-client label entropy in nats (low entropy = concentrated labels)."""
    safe = np.where(hist > 0, hist, 1.0)
    return -(hist * np.log(safe)).sum(axis=1)


def quantity_imbalance(sizes: np.ndarray) -> float:
    """Coefficient of variation of client sizes (0 = perfectly balanced)."""
    sizes = np.asarray(sizes, dtype=np.float64)
    if sizes.mean() == 0:
        return 0.0
    return float(sizes.std() / sizes.mean())
