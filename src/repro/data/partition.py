"""Client partitioning strategies.

The paper's main split (following Karimireddy et al. / SCAFFOLD) is the
*similarity* split: ``s%`` of the data is allocated IID, the remaining
``(100 - s)%`` is sorted by label and dealt to clients in contiguous
shards.  ``s = 0`` is fully non-IID (each client sees few labels),
``s = 100`` is IID.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError


def _even_chunks(indices: np.ndarray, num_clients: int) -> list[np.ndarray]:
    """Deal ``indices`` into ``num_clients`` near-equal contiguous chunks."""
    return [chunk for chunk in np.array_split(indices, num_clients)]


def iid_partition(
    num_samples: int, num_clients: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Uniformly random even split."""
    if num_clients <= 0:
        raise DataError("num_clients must be positive")
    if num_samples < num_clients:
        raise DataError(f"{num_samples} samples cannot cover {num_clients} clients")
    order = rng.permutation(num_samples)
    return _even_chunks(order, num_clients)


def similarity_partition(
    labels: np.ndarray,
    num_clients: int,
    similarity: float,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """The paper's s% similarity split.

    Args:
        labels: integer label array for the full training set.
        num_clients: number of clients N.
        similarity: s in [0, 1]; fraction of data allocated IID.
        rng: source of randomness.

    Returns:
        One index array per client.  Every client is guaranteed at least
        one sample.
    """
    if not 0.0 <= similarity <= 1.0:
        raise DataError(f"similarity must be in [0, 1], got {similarity}")
    labels = np.asarray(labels)
    num_samples = len(labels)
    if num_samples < num_clients:
        raise DataError(f"{num_samples} samples cannot cover {num_clients} clients")

    order = rng.permutation(num_samples)
    num_iid = int(round(similarity * num_samples))
    iid_part, skew_part = order[:num_iid], order[num_iid:]

    parts = [list(chunk) for chunk in _even_chunks(iid_part, num_clients)]

    # Sort the remainder by label (ties broken randomly via the
    # pre-shuffle) and deal contiguous shards to clients.
    skew_sorted = skew_part[np.argsort(labels[skew_part], kind="stable")]
    for client, chunk in enumerate(_even_chunks(skew_sorted, num_clients)):
        parts[client].extend(chunk)

    result = [np.array(sorted(p), dtype=np.int64) for p in parts]
    _fill_empty(result, rng)
    return result


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Dirichlet(alpha) label-skew split (Hsu et al. 2019 convention).

    For each class, the class's samples are distributed across clients
    according to a Dirichlet(alpha) draw.  Small alpha = extreme skew.
    """
    if alpha <= 0:
        raise DataError(f"alpha must be positive, got {alpha}")
    labels = np.asarray(labels)
    num_classes = int(labels.max()) + 1
    parts: list[list[int]] = [[] for _ in range(num_clients)]
    for cls in range(num_classes):
        cls_idx = np.flatnonzero(labels == cls)
        rng.shuffle(cls_idx)
        proportions = rng.dirichlet(alpha * np.ones(num_clients))
        cuts = (np.cumsum(proportions)[:-1] * len(cls_idx)).astype(int)
        for client, chunk in enumerate(np.split(cls_idx, cuts)):
            parts[client].extend(chunk)
    result = [np.array(sorted(p), dtype=np.int64) for p in parts]
    _fill_empty(result, rng)
    return result


def quantity_skew_sizes(
    num_samples: int,
    num_clients: int,
    rng: np.random.Generator,
    sigma: float = 1.0,
    min_size: int = 2,
) -> np.ndarray:
    """Lognormal client sizes summing to ``num_samples`` (quantity skew).

    FEMNIST-style: a few prolific writers, many sparse ones.
    """
    if num_samples < num_clients * min_size:
        raise DataError(
            f"{num_samples} samples cannot give {num_clients} clients >= {min_size} each"
        )
    raw = rng.lognormal(mean=0.0, sigma=sigma, size=num_clients)
    sizes = np.maximum(min_size, (raw / raw.sum() * num_samples).astype(int))
    # Fix rounding drift while respecting the minimum size.
    drift = int(num_samples - sizes.sum())
    order = np.argsort(-sizes)  # adjust the largest clients first
    i = 0
    while drift != 0:
        k = order[i % num_clients]
        step = 1 if drift > 0 else -1
        if sizes[k] + step >= min_size:
            sizes[k] += step
            drift -= step
        i += 1
    return sizes


def shard_partition(
    labels: np.ndarray,
    num_clients: int,
    shards_per_client: int,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """McMahan et al.'s original pathological split.

    Sort by label, cut into ``num_clients * shards_per_client`` equal
    shards, deal ``shards_per_client`` random shards to each client.
    With 2 shards per client on a 10-class dataset, most clients see
    only 2 labels — the classic "pathological non-IID" benchmark.
    """
    if shards_per_client <= 0:
        raise DataError("shards_per_client must be positive")
    labels = np.asarray(labels)
    num_samples = len(labels)
    total_shards = num_clients * shards_per_client
    if num_samples < total_shards:
        raise DataError(
            f"{num_samples} samples cannot fill {total_shards} shards"
        )
    order = rng.permutation(num_samples)  # random tie-breaking
    by_label = order[np.argsort(labels[order], kind="stable")]
    shards = np.array_split(by_label, total_shards)
    shard_order = rng.permutation(total_shards)
    parts = []
    for client in range(num_clients):
        mine = shard_order[client * shards_per_client : (client + 1) * shards_per_client]
        parts.append(np.sort(np.concatenate([shards[s] for s in mine])))
    return parts


def by_user_partition(user_ids: np.ndarray) -> list[np.ndarray]:
    """Natural partition: one client per distinct user id."""
    user_ids = np.asarray(user_ids)
    users = np.unique(user_ids)
    return [np.flatnonzero(user_ids == u).astype(np.int64) for u in users]


def _fill_empty(parts: list[np.ndarray], rng: np.random.Generator) -> None:
    """Move one sample from the largest client into any empty client."""
    for i, part in enumerate(parts):
        if len(part) == 0:
            donor = max(range(len(parts)), key=lambda j: len(parts[j]))
            if len(parts[donor]) <= 1:
                raise DataError("not enough samples to cover all clients")
            take = rng.integers(0, len(parts[donor]))
            parts[i] = parts[donor][take : take + 1]
            parts[donor] = np.delete(parts[donor], take)
