"""Datasets and non-IID partitioners.

Real MNIST / CIFAR10 / Sent140 / FEMNIST downloads are unavailable
offline, so this package provides procedural stand-ins that preserve the
properties the paper's evaluation depends on (see DESIGN.md section 2):

* :mod:`repro.data.synth_mnist` — rendered digit glyphs, an *easy*
  10-class image task (the paper notes non-IID MNIST barely hurts).
* :mod:`repro.data.synth_cifar` — noisy class-conditional textures, a
  *hard* 10-class image task where non-IID splits cost real accuracy.
* :mod:`repro.data.synth_sent140` — token sequences with per-user
  vocabulary skew (natural feature-distribution non-IIDness) for LSTMs.
* :mod:`repro.data.synth_femnist` — per-writer styled glyphs with
  quantity skew.

Partitioners in :mod:`repro.data.partition` implement the paper's
similarity-s% split (s% IID + label-sorted shards), Dirichlet label
skew, quantity skew, and natural by-user partitioning.

For cross-device scale, :mod:`repro.data.virtual` turns a population
into a recipe: :class:`VirtualFederatedDataset` materializes client
shards on demand from per-client seeded streams, so a million-client
population costs the memory of a cohort (see docs/scale.md).
"""

from repro.data.dataset import ArrayDataset, DatasetSpec, FederatedDataset
from repro.data.partition import (
    similarity_partition,
    dirichlet_partition,
    quantity_skew_sizes,
    by_user_partition,
    shard_partition,
    iid_partition,
)
from repro.data.synth_mnist import make_synth_mnist
from repro.data.virtual import (
    VirtualPartition,
    VirtualClientSet,
    VirtualFederatedDataset,
    make_virtual_federation,
    materialize_client,
)
from repro.data.synth_cifar import make_synth_cifar
from repro.data.synth_sent140 import make_synth_sent140
from repro.data.synth_femnist import make_synth_femnist
from repro.data.stats import (
    label_histograms,
    mean_pairwise_tv_distance,
    label_entropy,
    quantity_imbalance,
)

__all__ = [
    "ArrayDataset",
    "DatasetSpec",
    "FederatedDataset",
    "similarity_partition",
    "dirichlet_partition",
    "quantity_skew_sizes",
    "by_user_partition",
    "shard_partition",
    "iid_partition",
    "make_synth_mnist",
    "VirtualPartition",
    "VirtualClientSet",
    "VirtualFederatedDataset",
    "make_virtual_federation",
    "materialize_client",
    "make_synth_cifar",
    "make_synth_sent140",
    "make_synth_femnist",
    "label_histograms",
    "mean_pairwise_tv_distance",
    "label_entropy",
    "quantity_imbalance",
]
