"""Dataset containers used throughout the library."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DataError


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a dataset, consumed by the model zoo.

    Attributes:
        name: dataset identifier ('synth_mnist', ...).
        kind: 'image' (inputs are (C, H, W) float arrays) or
            'sequence' (inputs are (T,) integer token ids).
        input_shape: per-sample shape.
        num_classes: number of label classes.
        vocab_size: token vocabulary size for sequence datasets.
    """

    name: str
    kind: str
    input_shape: tuple[int, ...]
    num_classes: int
    vocab_size: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("image", "sequence"):
            raise DataError(f"unknown dataset kind {self.kind!r}")
        if self.kind == "sequence" and self.vocab_size is None:
            raise DataError("sequence datasets need vocab_size")

    @property
    def flat_dim(self) -> int:
        """Flattened per-sample input dimension (images only)."""
        return int(np.prod(self.input_shape))


class ArrayDataset:
    """An in-memory (x, y) pair with batching helpers."""

    def __init__(self, x: np.ndarray, y: np.ndarray) -> None:
        x = np.asarray(x)
        y = np.asarray(y, dtype=np.int64)
        if len(x) != len(y):
            raise DataError(f"x has {len(x)} samples but y has {len(y)}")
        self.x = x
        self.y = y

    def __len__(self) -> int:
        return len(self.y)

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        indices = np.asarray(indices, dtype=np.int64)
        return ArrayDataset(self.x[indices], self.y[indices])

    def split(self, frac: float, rng: np.random.Generator) -> tuple["ArrayDataset", "ArrayDataset"]:
        """Random split into (first frac, remainder)."""
        if not 0.0 < frac < 1.0:
            raise DataError(f"split frac must be in (0, 1), got {frac}")
        order = rng.permutation(len(self))
        cut = int(round(frac * len(self)))
        return self.subset(order[:cut]), self.subset(order[cut:])

    def batches(self, batch_size: int, rng: np.random.Generator | None = None):
        """Yield (x, y) minibatches; shuffles when an rng is given."""
        if batch_size <= 0:
            raise DataError(f"batch_size must be positive, got {batch_size}")
        order = rng.permutation(len(self)) if rng is not None else np.arange(len(self))
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.x[idx], self.y[idx]

    def sample_batch(self, batch_size: int, rng: np.random.Generator):
        """Draw one random minibatch (with replacement if needed)."""
        replace = batch_size > len(self)
        idx = rng.choice(len(self), size=min(batch_size, len(self)), replace=replace)
        return self.x[idx], self.y[idx]

    def label_counts(self, num_classes: int) -> np.ndarray:
        return np.bincount(self.y, minlength=num_classes)

    def content_fingerprint(self) -> bytes:
        """Content hash of the samples (blake2b-128).

        Computed fresh on every call (never memoized) so in-place
        mutation of ``x``/``y`` is always detected — the delta cache
        keys on this to notice client-data drift.
        """
        import hashlib

        digest = hashlib.blake2b(digest_size=16)
        for arr in (self.x, self.y):
            arr = np.ascontiguousarray(arr)
            digest.update(str(arr.dtype).encode())
            digest.update(str(arr.shape).encode())
            digest.update(arr.tobytes())
        return digest.digest()


@dataclass
class FederatedDataset:
    """A dataset already partitioned across clients, plus a global test set."""

    spec: DatasetSpec
    clients: list[ArrayDataset]
    test: ArrayDataset
    client_test: list[ArrayDataset] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.clients:
            raise DataError("FederatedDataset needs at least one client")
        empty = [i for i, c in enumerate(self.clients) if len(c) == 0]
        if empty:
            raise DataError(f"clients {empty} have no samples")

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    @property
    def client_sizes(self) -> np.ndarray:
        return np.array([len(c) for c in self.clients], dtype=np.int64)

    @property
    def weights(self) -> np.ndarray:
        """FedAvg aggregation weights p_k = n_k / n."""
        sizes = self.client_sizes.astype(np.float64)
        return sizes / sizes.sum()

    def total_train_samples(self) -> int:
        return int(self.client_sizes.sum())
