"""repro — reproduction of "Distribution-Regularized Federated Learning
on Non-IID Data" (Wang et al., ICDE 2023).

Public API tour:

* :mod:`repro.nn` — numpy neural-network substrate (layers, losses,
  optimizers, flat-parameter serialization).
* :mod:`repro.models` — the paper's CNN and LSTM as
  feature-extractor/head :class:`~repro.models.SplitModel` pairs.
* :mod:`repro.data` — synthetic MNIST / CIFAR10 / Sent140 / FEMNIST
  stand-ins plus the paper's non-IID partitioners.
* :mod:`repro.core` — MMD, delta tables, the distribution regularizer,
  and DP noise on delta.
* :mod:`repro.algorithms` — FedAvg, FedProx, SCAFFOLD, q-FedAvg,
  rFedAvg, rFedAvg+ (and an exact-regularizer reference).
* :mod:`repro.fl` — the federated simulation runtime.
* :mod:`repro.experiments` — presets and the per-table/figure registry.
* :mod:`repro.analysis` — convergence bounds, fairness stats, t-SNE.

Quickstart::

    from repro.experiments import build_image_federation, default_model_fn
    from repro.algorithms import make_algorithm
    from repro.fl import FLConfig, run_federated

    fed = build_image_federation("synth_mnist", num_clients=10, similarity=0.0)
    config = FLConfig(rounds=20, local_steps=5, batch_size=32, lr=0.1)
    history = run_federated(
        make_algorithm("rfedavg+", lam=1e-3), fed,
        default_model_fn("mlp", fed.spec), config,
    )
    print(history.last_accuracy())
"""

__version__ = "1.0.0"

from repro import nn  # noqa: F401  (re-export the substrate)
from repro.exceptions import ConfigError, DataError, ProtocolError, ReproError

__all__ = [
    "nn",
    "ReproError",
    "ConfigError",
    "DataError",
    "ProtocolError",
    "__version__",
]
