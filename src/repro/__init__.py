"""repro — reproduction of "Distribution-Regularized Federated Learning
on Non-IID Data" (Wang et al., ICDE 2023).

Public API tour:

* :mod:`repro.nn` — numpy neural-network substrate (layers, losses,
  optimizers, flat-parameter serialization).
* :mod:`repro.models` — the paper's CNN and LSTM as
  feature-extractor/head :class:`~repro.models.SplitModel` pairs.
* :mod:`repro.data` — synthetic MNIST / CIFAR10 / Sent140 / FEMNIST
  stand-ins plus the paper's non-IID partitioners.
* :mod:`repro.core` — MMD, delta tables, the distribution regularizer,
  and DP noise on delta.
* :mod:`repro.algorithms` — FedAvg, FedProx, SCAFFOLD, q-FedAvg,
  rFedAvg, rFedAvg+ (and an exact-regularizer reference).
* :mod:`repro.fl` — the federated simulation runtime.
* :mod:`repro.experiments` — presets and the per-table/figure registry.
* :mod:`repro.analysis` — convergence bounds, fairness stats, t-SNE.

* :mod:`repro.obs` — zero-dependency observability: span tracing,
  counters/gauges/histograms, JSONL/CSV run artifacts, layer profiler.
* :mod:`repro.ckpt` — crash-safe checkpoint/resume with bit-identical
  deterministic replay (see ``docs/checkpointing.md``).

Quickstart::

    import repro

    history, artifacts = repro.run_experiment(
        "quickstart", seed=0, overrides={"rounds": 20}
    )
    print(history.last_accuracy())

Anything beyond the named presets composes from the building blocks::

    from repro.experiments import build_image_federation, default_model_fn
    from repro.algorithms import make_algorithm
    from repro.fl import FLConfig, run_federated

    fed = build_image_federation("synth_mnist", num_clients=10, similarity=0.0)
    config = FLConfig(rounds=20, local_steps=5, batch_size=32, lr=0.1)
    history = run_federated(
        make_algorithm("rfedavg+", lam=1e-3), fed,
        default_model_fn("mlp", fed.spec), config,
    )
    print(history.last_accuracy())
"""

__version__ = "1.0.0"

from repro import nn  # noqa: F401  (re-export the substrate)
from repro.exceptions import (
    CheckpointError,
    CheckpointMismatchError,
    ConfigError,
    DataError,
    ProtocolError,
    ReproError,
)

__all__ = [
    "nn",
    "ReproError",
    "ConfigError",
    "DataError",
    "ProtocolError",
    "CheckpointError",
    "CheckpointMismatchError",
    "run_experiment",
    "list_presets",
    "__version__",
]

_LAZY = {"run_experiment", "list_presets"}


def __getattr__(name: str):
    # Lazy so that `import repro` stays light: the facade pulls in the
    # full experiment stack (data builders, algorithms, trainer).
    if name in _LAZY:
        from repro.experiments import facade

        return getattr(facade, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
