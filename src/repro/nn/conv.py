"""2-D convolution implemented with im2col.

Inputs follow the (batch, channels, height, width) convention.  The
im2col/col2im pair turns convolution into a single matrix multiply, which
is the only way to make a numpy CNN fast enough for the federated
benchmarks on one CPU core.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import he_normal, zeros
from repro.nn.module import Module, Parameter


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Unfold ``x`` (B, C, H, W) into columns of shape (B*OH*OW, C*K*K).

    Implemented with :func:`numpy.lib.stride_tricks.sliding_window_view`:
    the window gather is a zero-copy view and the only data movement is
    the single contiguous copy into GEMM layout — no Python loops.
    Bit-identical to the loop-based reference
    (:func:`repro.nn.reference.im2col_reference`): the same elements land
    in the same slots, only the gather strategy differs.

    Returns the column matrix and the output spatial dims (OH, OW).
    """
    batch, channels, height, width = x.shape
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    # (B, C, H', W', K, K) zero-copy view of every kernel window.
    windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
    if stride > 1:
        windows = windows[:, :, ::stride, ::stride]
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch * out_h * out_w, channels * kernel * kernel
    )
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to image shape.

    Overlapping windows make the scatter-add inherently sequential over
    the K*K kernel offsets, so those stay as a (tiny) loop of whole-array
    adds; the optimization over the reference is one up-front contiguous
    copy into (B, C, K, K, OH, OW) layout so every offset's add streams
    over contiguous memory instead of a 6-D strided view.  The
    accumulation order matches the reference exactly, so float64 results
    are bit-identical.
    """
    batch, channels, height, width = x_shape
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    cols6 = np.ascontiguousarray(
        cols.reshape(batch, out_h, out_w, channels, kernel, kernel).transpose(
            0, 3, 4, 5, 1, 2
        )
    )
    for ki in range(kernel):
        i_end = ki + stride * out_h
        for kj in range(kernel):
            j_end = kj + stride * out_w
            padded[:, :, ki:i_end:stride, kj:j_end:stride] += cols6[:, :, ki, kj]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2d(Module):
    """Standard 2-D convolution with square kernels."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            he_normal(rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in),
            name="conv.weight",
        )
        self.bias = Parameter(zeros((out_channels,)), name="conv.bias")
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def _free_buffers(self) -> None:
        self._cols = None
        self._x_shape = None
        self._out_hw = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch = x.shape[0]
        cols, out_h, out_w = im2col(x, self.kernel_size, self.stride, self.padding)
        w_mat = self.weight.data.reshape(self.out_channels, -1)  # (O, C*K*K)
        out = cols @ w_mat.T + self.bias.data  # (B*OH*OW, O)
        self._cols = cols
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        return out.reshape(batch, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        batch = grad_out.shape[0]
        out_h, out_w = self._out_hw
        grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(batch * out_h * out_w, -1)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        self.weight.grad += (grad_mat.T @ self._cols).reshape(self.weight.data.shape)
        self.bias.grad += grad_mat.sum(axis=0)
        grad_cols = grad_mat @ w_mat  # (B*OH*OW, C*K*K)
        return col2im(
            grad_cols, self._x_shape, self.kernel_size, self.stride, self.padding, out_h, out_w
        )
