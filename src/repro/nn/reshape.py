"""Shape-manipulation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Flatten(Module):
    """Collapse all non-batch dims: (B, ...) -> (B, prod(...))."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._x_shape)
