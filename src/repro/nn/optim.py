"""Optimizers and learning-rate schedules.

The paper trains the CNN models with plain SGD and the Sent140 LSTM with
RMSProp; the convergence theory (Sec. V) requires the inverse-decay
schedule ``eta_t = 2 / (mu * (gamma + t))``, provided here as
:class:`InverseDecayLR`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class LRSchedule:
    """Maps a global step index to a learning rate."""

    def rate(self, step: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    def __init__(self, lr: float) -> None:
        self.lr = lr

    def rate(self, step: int) -> float:
        return self.lr


class InverseDecayLR(LRSchedule):
    """``eta_t = scale / (gamma + t)`` — the Thm. 1/2 schedule.

    With ``scale = 2 / mu`` and ``gamma = max(8 L / mu, E)`` this is
    exactly the schedule assumed by the convergence analysis.
    """

    def __init__(self, scale: float, gamma: float) -> None:
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.scale = scale
        self.gamma = gamma

    def rate(self, step: int) -> float:
        return self.scale / (self.gamma + step)


class StepLR(LRSchedule):
    """Multiply the base rate by ``decay`` every ``every`` steps."""

    def __init__(self, lr: float, every: int, decay: float = 0.5) -> None:
        self.lr = lr
        self.every = every
        self.decay = decay

    def rate(self, step: int) -> float:
        return self.lr * (self.decay ** (step // self.every))


def _as_schedule(lr: float | LRSchedule) -> LRSchedule:
    if isinstance(lr, LRSchedule):
        return lr
    return ConstantLR(float(lr))


class Optimizer:
    """Base class: owns a parameter list and a step counter.

    ``max_grad_norm`` optionally applies global-norm gradient clipping
    before every update (the standard stabilizer for recurrent models
    and for SCAFFOLD-style corrected gradients).

    Subclasses declare their per-parameter slot buffers in ``_slots``
    (attribute names holding one array per parameter), which makes
    :meth:`state_dict` / :meth:`load_state_dict` work for every
    optimizer here without per-class serialization code.
    """

    _slots: tuple[str, ...] = ()

    def __init__(
        self,
        params: list[Parameter],
        lr: float | LRSchedule,
        max_grad_norm: float | None = None,
    ) -> None:
        self.params = list(params)
        self.schedule = _as_schedule(lr)
        self.step_count = 0
        if max_grad_norm is not None and max_grad_norm <= 0:
            raise ValueError("max_grad_norm must be positive")
        self.max_grad_norm = max_grad_norm

    @property
    def current_lr(self) -> float:
        return self.schedule.rate(self.step_count)

    def _clip_gradients(self) -> None:
        if self.max_grad_norm is None:
            return
        total_sq = sum(float((p.grad**2).sum()) for p in self.params)
        norm = np.sqrt(total_sq)
        if norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for p in self.params:
                p.grad *= scale

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self._clip_gradients()
        lr = self.current_lr
        self._apply(lr)
        self.step_count += 1

    def _apply(self, lr: float) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Step counter plus every per-parameter slot buffer (copies)."""
        return {
            "step_count": self.step_count,
            "slots": {
                name.lstrip("_"): [np.array(a, copy=True) for a in getattr(self, name)]
                for name in self._slots
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this optimizer.

        The optimizer must wrap the same parameter list the snapshot was
        taken from — slot names, counts, and per-slot shapes are all
        checked, and values are copied into the existing buffers.
        """
        expected = {name.lstrip("_") for name in self._slots}
        stored = set(state.get("slots", {}))
        if stored != expected:
            raise ValueError(
                f"optimizer slot mismatch: snapshot has {sorted(stored)}, "
                f"{type(self).__name__} expects {sorted(expected)}"
            )
        # Validate fully before mutating, so a bad snapshot cannot leave
        # the optimizer half-loaded.
        checked: list[tuple[list[np.ndarray], list[np.ndarray]]] = []
        for name in self._slots:
            buffers = getattr(self, name)
            arrays = [np.asarray(a) for a in state["slots"][name.lstrip("_")]]
            if len(arrays) != len(buffers):
                raise ValueError(
                    f"slot {name.lstrip('_')!r} has {len(arrays)} arrays, "
                    f"optimizer has {len(buffers)} parameters"
                )
            for i, (buf, arr) in enumerate(zip(buffers, arrays)):
                if arr.shape != buf.shape:
                    raise ValueError(
                        f"slot {name.lstrip('_')!r}[{i}] shape mismatch: "
                        f"{arr.shape} vs {buf.shape}"
                    )
            checked.append((buffers, arrays))
        for buffers, arrays in checked:
            for buf, arr in zip(buffers, arrays):
                buf[...] = arr
        self.step_count = int(state["step_count"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    _slots = ("_velocity",)

    def __init__(
        self,
        params: list[Parameter],
        lr: float | LRSchedule,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        max_grad_norm: float | None = None,
    ) -> None:
        super().__init__(params, lr, max_grad_norm)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def _apply(self, lr: float) -> None:
        for p, vel in zip(self.params, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            p.data -= lr * grad


class RMSProp(Optimizer):
    """RMSProp as used for the paper's Sent140 LSTM (lr=0.01)."""

    _slots = ("_sq_avg",)

    def __init__(
        self,
        params: list[Parameter],
        lr: float | LRSchedule,
        decay: float = 0.99,
        eps: float = 1e-8,
        max_grad_norm: float | None = None,
    ) -> None:
        super().__init__(params, lr, max_grad_norm)
        self.decay = decay
        self.eps = eps
        self._sq_avg = [np.zeros_like(p.data) for p in self.params]

    def _apply(self, lr: float) -> None:
        for p, sq in zip(self.params, self._sq_avg):
            sq *= self.decay
            sq += (1.0 - self.decay) * p.grad**2
            p.data -= lr * p.grad / (np.sqrt(sq) + self.eps)


class Adam(Optimizer):
    _slots = ("_m", "_v")

    def __init__(
        self,
        params: list[Parameter],
        lr: float | LRSchedule,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        max_grad_norm: float | None = None,
    ) -> None:
        super().__init__(params, lr, max_grad_norm)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _apply(self, lr: float) -> None:
        t = self.step_count + 1
        bc1 = 1.0 - self.beta1**t
        bc2 = 1.0 - self.beta2**t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            p.data -= lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


def make_optimizer(
    name: str, params: list[Parameter], lr: float | LRSchedule
) -> Optimizer:
    """Factory used by experiment configs ('sgd' | 'rmsprop' | 'adam')."""
    table = {"sgd": SGD, "rmsprop": RMSProp, "adam": Adam}
    key = name.lower()
    if key not in table:
        raise ValueError(f"unknown optimizer {name!r}; choose from {sorted(table)}")
    return table[key](params, lr)
