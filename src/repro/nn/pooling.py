"""Spatial pooling layers for (batch, channels, H, W) inputs."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class MaxPool2d(Module):
    """Non-overlapping max pooling with a square window.

    Requires the spatial dims to be divisible by ``pool_size`` (the model
    zoo pads inputs so this always holds), which lets the implementation
    be a cheap reshape instead of a windowed scan.
    """

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        self.pool_size = pool_size
        self._mask: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def _free_buffers(self) -> None:
        self._mask = None
        self._x_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        p = self.pool_size
        if height % p or width % p:
            raise ValueError(
                f"MaxPool2d: spatial dims ({height},{width}) not divisible by {p}"
            )
        blocks = x.reshape(batch, channels, height // p, p, width // p, p)
        out = blocks.max(axis=(3, 5))
        # A mask of argmax positions; ties are broken by keeping all maxima,
        # then renormalizing, which still yields a valid subgradient.  The
        # mask follows the input dtype so float32 stays float32 (the
        # 1/count weights are exact in both precisions for pool windows).
        expanded = out[:, :, :, None, :, None]
        mask = (blocks == expanded).astype(x.dtype)
        mask /= mask.sum(axis=(3, 5), keepdims=True)
        self._mask = mask
        self._x_shape = x.shape
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        grad_blocks = self._mask * grad_out[:, :, :, None, :, None]
        return grad_blocks.reshape(self._x_shape)


class AvgPool2d(Module):
    """Non-overlapping average pooling with a square window."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        self.pool_size = pool_size
        self._x_shape: tuple[int, ...] | None = None

    def _free_buffers(self) -> None:
        self._x_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        p = self.pool_size
        if height % p or width % p:
            raise ValueError(
                f"AvgPool2d: spatial dims ({height},{width}) not divisible by {p}"
            )
        self._x_shape = x.shape
        blocks = x.reshape(batch, channels, height // p, p, width // p, p)
        return blocks.mean(axis=(3, 5))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        p = self.pool_size
        grad = grad_out[:, :, :, None, :, None] / (p * p)
        grad = np.broadcast_to(
            grad, grad_out.shape[:3] + (p,) + grad_out.shape[3:4] + (p,)
        )
        return grad.reshape(self._x_shape)
