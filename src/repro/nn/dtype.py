"""Global floating-point dtype policy for the numpy substrate.

Training at float32 roughly doubles GEMM throughput and halves memory
bandwidth on one CPU core, but the gradient checks that make this
reproduction trustworthy need float64.  The policy here lets both
coexist: :func:`set_default_dtype` (or the :func:`default_dtype` context
manager) selects the dtype that :class:`~repro.nn.module.Parameter`,
the initializers, and every layer workspace use from then on, while the
default stays float64 so existing code and the gradcheck suite are
bit-for-bit unchanged.

The policy is process-global (inherited by forked client-execution
workers) and intentionally *not* per-model: a federated run picks one
dtype for the whole job via ``FLConfig.dtype`` and
:func:`~repro.fl.trainer.run_federated` scopes it around the run.

Usage::

    from repro import nn

    nn.set_default_dtype("float32")        # permanent switch
    with nn.default_dtype("float32"):      # scoped switch
        model = build_cnn(...)             # float32 parameters
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_default_dtype = np.dtype(np.float64)


def _validate(dtype) -> np.dtype:
    dt = np.dtype(dtype)
    if dt not in SUPPORTED_DTYPES:
        names = ", ".join(d.name for d in SUPPORTED_DTYPES)
        raise ValueError(f"unsupported default dtype {dt.name!r}; choose from {names}")
    return dt


def get_default_dtype() -> np.dtype:
    """The dtype new parameters and layer workspaces are created with."""
    return _default_dtype


def set_default_dtype(dtype) -> np.dtype:
    """Set the global default floating dtype; returns the previous one.

    Accepts anything :class:`numpy.dtype` accepts ('float32',
    ``np.float64``, ...); only float32 and float64 are supported.
    """
    global _default_dtype
    previous = _default_dtype
    _default_dtype = _validate(dtype)
    return previous


@contextmanager
def default_dtype(dtype) -> Iterator[np.dtype]:
    """Scope the default dtype for the duration of a ``with`` block."""
    previous = set_default_dtype(dtype)
    try:
        yield _default_dtype
    finally:
        set_default_dtype(previous)


def astype_default(x: np.ndarray) -> np.ndarray:
    """Cast floating arrays to the active default dtype (no-copy when
    already there); integer arrays (token ids, labels) pass through."""
    x = np.asarray(x)
    dt = get_default_dtype()
    if x.dtype != dt and np.issubdtype(x.dtype, np.floating):
        return x.astype(dt)
    return x
