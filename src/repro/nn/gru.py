"""GRU layer with exact backpropagation through time.

The paper's sequence model is an LSTM; the GRU is the standard lighter
alternative (fewer parameters per unit — relevant when the model itself
is the federated payload), provided for library completeness and
payload-size experiments.  Gate convention follows Cho et al. 2014:

    z_t = sigmoid(x_t W_z + h_{t-1} U_z + b_z)        (update gate)
    r_t = sigmoid(x_t W_r + h_{t-1} U_r + b_r)        (reset gate)
    n_t = tanh(x_t W_n + r_t * (h_{t-1} U_n) + b_n)   (candidate)
    h_t = (1 - z_t) * n_t + z_t * h_{t-1}
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import sigmoid
from repro.nn.initializers import glorot_uniform, orthogonal, zeros
from repro.nn.module import Module, Parameter


class GRUCell(Module):
    """Single GRU layer unrolled over time: (B, T, D) -> (B, T, H)."""

    def __init__(
        self, input_dim: int, hidden_dim: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_x = Parameter(
            glorot_uniform(rng, (input_dim, 3 * hidden_dim), input_dim, hidden_dim),
            name="gru.w_x",
        )
        self.w_h = Parameter(
            np.concatenate(
                [orthogonal(rng, (hidden_dim, hidden_dim)) for _ in range(3)], axis=1
            ),
            name="gru.w_h",
        )
        self.bias = Parameter(zeros((3 * hidden_dim,)), name="gru.bias")
        self._cache: dict | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, steps, _ = x.shape
        hid = self.hidden_dim
        h = np.zeros((batch, hid))
        hs = np.zeros((batch, steps, hid))
        cache = {
            "x": x,
            "z": np.zeros((batch, steps, hid)),
            "r": np.zeros((batch, steps, hid)),
            "n": np.zeros((batch, steps, hid)),
            "h_prev": np.zeros((batch, steps, hid)),
            "hu_n": np.zeros((batch, steps, hid)),
        }
        u_z = self.w_h.data[:, :hid]
        u_r = self.w_h.data[:, hid : 2 * hid]
        u_n = self.w_h.data[:, 2 * hid :]
        for t in range(steps):
            cache["h_prev"][:, t] = h
            xw = x[:, t] @ self.w_x.data + self.bias.data
            z = sigmoid(xw[:, :hid] + h @ u_z)
            r = sigmoid(xw[:, hid : 2 * hid] + h @ u_r)
            hu_n = h @ u_n
            n = np.tanh(xw[:, 2 * hid :] + r * hu_n)
            h = (1.0 - z) * n + z * h
            cache["z"][:, t], cache["r"][:, t] = z, r
            cache["n"][:, t], cache["hu_n"][:, t] = n, hu_n
            hs[:, t] = h
        self._cache = cache
        return hs

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        x = cache["x"]
        batch, steps, _ = x.shape
        hid = self.hidden_dim
        u_z = self.w_h.data[:, :hid]
        u_r = self.w_h.data[:, hid : 2 * hid]
        u_n = self.w_h.data[:, 2 * hid :]
        grad_x = np.zeros_like(x)
        dh_next = np.zeros((batch, hid))
        for t in reversed(range(steps)):
            z, r = cache["z"][:, t], cache["r"][:, t]
            n, hu_n = cache["n"][:, t], cache["hu_n"][:, t]
            h_prev = cache["h_prev"][:, t]
            dh = grad_out[:, t] + dh_next
            dz = dh * (h_prev - n)
            dn = dh * (1.0 - z)
            dh_prev = dh * z
            # Pre-activation gradients.
            dn_pre = dn * (1.0 - n**2)
            dr = dn_pre * hu_n
            dz_pre = dz * z * (1.0 - z)
            dr_pre = dr * r * (1.0 - r)
            # Parameter gradients (fused layout [z, r, n]).
            dxw = np.concatenate([dz_pre, dr_pre, dn_pre], axis=1)
            self.w_x.grad += x[:, t].T @ dxw
            self.bias.grad += dxw.sum(axis=0)
            self.w_h.grad[:, :hid] += h_prev.T @ dz_pre
            self.w_h.grad[:, hid : 2 * hid] += h_prev.T @ dr_pre
            self.w_h.grad[:, 2 * hid :] += h_prev.T @ (dn_pre * r)
            # Input and recurrent gradients.
            grad_x[:, t] = dxw @ self.w_x.data.T
            dh_prev = (
                dh_prev
                + dz_pre @ u_z.T
                + dr_pre @ u_r.T
                + (dn_pre * r) @ u_n.T
            )
            dh_next = dh_prev
        return grad_x


class GRU(Module):
    """A stack of :class:`GRUCell` layers."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_layers = num_layers
        dims = [input_dim] + [hidden_dim] * num_layers
        self.cells = [GRUCell(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for cell in self.cells:
            x = cell.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for cell in reversed(self.cells):
            grad_out = cell.backward(grad_out)
        return grad_out
