"""GRU layer with exact backpropagation through time.

The paper's sequence model is an LSTM; the GRU is the standard lighter
alternative (fewer parameters per unit — relevant when the model itself
is the federated payload), provided for library completeness and
payload-size experiments.  Gate convention follows Cho et al. 2014:

    z_t = sigmoid(x_t W_z + h_{t-1} U_z + b_z)        (update gate)
    r_t = sigmoid(x_t W_r + h_{t-1} U_r + b_r)        (reset gate)
    n_t = tanh(x_t W_n + r_t * (h_{t-1} U_n) + b_n)   (candidate)
    h_t = (1 - z_t) * n_t + z_t * h_{t-1}
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import sigmoid
from repro.nn.initializers import glorot_uniform, orthogonal, zeros
from repro.nn.module import Module, Parameter


class GRUCell(Module):
    """Single GRU layer unrolled over time: (B, T, D) -> (B, T, H)."""

    def __init__(
        self, input_dim: int, hidden_dim: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_x = Parameter(
            glorot_uniform(rng, (input_dim, 3 * hidden_dim), input_dim, hidden_dim),
            name="gru.w_x",
        )
        self.w_h = Parameter(
            np.concatenate(
                [orthogonal(rng, (hidden_dim, hidden_dim)) for _ in range(3)], axis=1
            ),
            name="gru.w_h",
        )
        self.bias = Parameter(zeros((3 * hidden_dim,)), name="gru.bias")
        self._cache: dict | None = None

    def _free_buffers(self) -> None:
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, steps, _ = x.shape
        hid = self.hidden_dim
        dtype = np.result_type(x.dtype, self.w_x.data.dtype)
        # Input projection for the whole sequence in one GEMM; rows are
        # independent, so xw_all[:, t] + bias matches the per-step
        # x[:, t] @ w_x + bias of the reference bit for bit.
        xw_all = (x.reshape(batch * steps, -1) @ self.w_x.data).reshape(
            batch, steps, 3 * hid
        )
        xw_all += self.bias.data
        h = np.zeros((batch, hid), dtype=dtype)
        hs = np.empty((batch, steps, hid), dtype=dtype)
        cache = {
            "x": x,
            "z": np.empty((batch, steps, hid), dtype=dtype),
            "r": np.empty((batch, steps, hid), dtype=dtype),
            "n": np.empty((batch, steps, hid), dtype=dtype),
            "hu_n": np.empty((batch, steps, hid), dtype=dtype),
        }
        u_z = self.w_h.data[:, :hid]
        u_r = self.w_h.data[:, hid : 2 * hid]
        u_n = self.w_h.data[:, 2 * hid :]
        for t in range(steps):
            xw = xw_all[:, t]
            z = sigmoid(xw[:, :hid] + h @ u_z, out=cache["z"][:, t])
            r = sigmoid(xw[:, hid : 2 * hid] + h @ u_r, out=cache["r"][:, t])
            hu_n = np.matmul(h, u_n, out=cache["hu_n"][:, t])
            n = np.tanh(xw[:, 2 * hid :] + r * hu_n, out=cache["n"][:, t])
            ht = hs[:, t]
            np.multiply(1.0 - z, n, out=ht)
            ht += z * h
            h = ht
        cache["hs"] = hs
        self._cache = cache
        return hs

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        x = cache["x"]
        # h_t is exactly hs[:, t], so h_prev at step t is hs[:, t-1] —
        # no separate h_prev cache needed.
        hs = cache["hs"]
        batch, steps, _ = x.shape
        hid = self.hidden_dim
        dtype = cache["z"].dtype
        u_z = self.w_h.data[:, :hid]
        u_r = self.w_h.data[:, hid : 2 * hid]
        u_n = self.w_h.data[:, 2 * hid :]
        # grad_x stays per-step to match the reference's BLAS call shapes
        # exactly (see the LSTM backward note on transposed operands).
        grad_x = np.empty(x.shape, dtype=dtype)
        dxw = np.empty((batch, 3 * hid), dtype=dtype)  # contiguous scratch
        dh_next = np.zeros((batch, hid), dtype=dtype)
        zero_state = np.zeros((batch, hid), dtype=dtype)
        # Preallocated GEMM destinations — same values as fresh
        # temporaries, without the per-step mmap churn (see the LSTM
        # backward note).
        gw_x = np.empty(self.w_x.data.shape, dtype=dtype)
        gbias = np.empty(3 * hid, dtype=dtype)
        gw_hb = np.empty((hid, hid), dtype=dtype)
        gx = np.empty((batch, x.shape[2]), dtype=dtype)
        for t in reversed(range(steps)):
            z, r = cache["z"][:, t], cache["r"][:, t]
            n, hu_n = cache["n"][:, t], cache["hu_n"][:, t]
            h_prev = hs[:, t - 1] if t > 0 else zero_state
            dh = grad_out[:, t] + dh_next
            dz = dh * (h_prev - n)
            dn = dh * (1.0 - z)
            dh_prev = dh * z
            # Pre-activation gradients (fused layout [z, r, n]).
            dn_pre = dn * (1.0 - n**2)
            dr = dn_pre * hu_n
            dxw[:, :hid] = dz * z * (1.0 - z)
            dxw[:, hid : 2 * hid] = dr * r * (1.0 - r)
            dxw[:, 2 * hid :] = dn_pre
            dz_pre = dxw[:, :hid]
            dr_pre = dxw[:, hid : 2 * hid]
            # Parameter gradients.
            np.matmul(x[:, t].T, dxw, out=gw_x)
            self.w_x.grad += gw_x
            np.sum(dxw, axis=0, out=gbias)
            self.bias.grad += gbias
            h_prev_t = h_prev.T
            np.matmul(h_prev_t, dz_pre, out=gw_hb)
            self.w_h.grad[:, :hid] += gw_hb
            np.matmul(h_prev_t, dr_pre, out=gw_hb)
            self.w_h.grad[:, hid : 2 * hid] += gw_hb
            np.matmul(h_prev_t, dn_pre * r, out=gw_hb)
            self.w_h.grad[:, 2 * hid :] += gw_hb
            np.matmul(dxw, self.w_x.data.T, out=gx)
            grad_x[:, t] = gx
            # Recurrent gradient.
            dh_prev = (
                dh_prev
                + dz_pre @ u_z.T
                + dr_pre @ u_r.T
                + (dn_pre * r) @ u_n.T
            )
            dh_next = dh_prev
        return grad_x


class GRU(Module):
    """A stack of :class:`GRUCell` layers."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_layers = num_layers
        dims = [input_dim] + [hidden_dim] * num_layers
        self.cells = [GRUCell(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for cell in self.cells:
            x = cell.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for cell in reversed(self.cells):
            grad_out = cell.backward(grad_out)
        return grad_out
