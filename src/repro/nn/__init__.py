"""A from-scratch neural-network library on numpy.

This package is the autograd substrate of the reproduction: the paper's
implementation uses PyTorch, which is unavailable offline, so every layer
here implements an exact manual ``forward``/``backward`` pair.  Gradients
are verified against central finite differences in the test suite.

Design notes
------------
* Layers subclass :class:`~repro.nn.module.Module` and cache whatever the
  backward pass needs during ``forward``.
* ``backward`` *accumulates* into ``Parameter.grad`` (like PyTorch), so a
  single batch may receive gradient contributions from several objective
  terms (e.g. cross-entropy loss + the MMD distribution regularizer).
* Arithmetic follows a process-global dtype policy (:mod:`repro.nn.dtype`).
  The default is float64 — numerically trustworthy gradient checks — while
  ``set_default_dtype("float32")`` (or the ``default_dtype`` context
  manager) switches training to float32 end to end for speed.
"""

from repro.nn.dtype import (
    default_dtype,
    get_default_dtype,
    set_default_dtype,
)
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.linear import Linear
from repro.nn.conv import Conv2d
from repro.nn.pooling import MaxPool2d, AvgPool2d
from repro.nn.activations import ReLU, Tanh, Sigmoid, LeakyReLU
from repro.nn.dropout import Dropout
from repro.nn.norm import LayerNorm, BatchNorm1d
from repro.nn.embedding import Embedding
from repro.nn.recurrent import LSTM, LSTMCell, LastTimestep
from repro.nn.gru import GRU, GRUCell
from repro.nn.reshape import Flatten
from repro.nn.losses import (
    Loss,
    SoftmaxCrossEntropy,
    MeanSquaredError,
    BinaryCrossEntropy,
)
from repro.nn.optim import (
    Optimizer,
    SGD,
    RMSProp,
    Adam,
    ConstantLR,
    InverseDecayLR,
    StepLR,
)
from repro.nn.serialization import (
    get_flat_params,
    set_flat_params,
    get_flat_grads,
    num_params,
    save_params,
    load_params,
    save_state,
    load_state,
)
from repro.nn import functional

__all__ = [
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "LeakyReLU",
    "Dropout",
    "LayerNorm",
    "BatchNorm1d",
    "Embedding",
    "LSTM",
    "LSTMCell",
    "GRU",
    "GRUCell",
    "LastTimestep",
    "Flatten",
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "BinaryCrossEntropy",
    "Optimizer",
    "SGD",
    "RMSProp",
    "Adam",
    "ConstantLR",
    "InverseDecayLR",
    "StepLR",
    "get_flat_params",
    "set_flat_params",
    "get_flat_grads",
    "num_params",
    "save_params",
    "load_params",
    "save_state",
    "load_state",
    "functional",
]
