"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class LeakyReLU(Module):
    def __init__(self, alpha: float = 0.01) -> None:
        super().__init__()
        self.alpha = alpha
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.alpha * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * np.where(self._mask, 1.0, self.alpha)


class Tanh(Module):
    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._out**2)


class Sigmoid(Module):
    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = sigmoid(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._out * (1.0 - self._out)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out
