"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def _free_buffers(self) -> None:
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class LeakyReLU(Module):
    def __init__(self, alpha: float = 0.01) -> None:
        super().__init__()
        self.alpha = alpha
        self._mask: np.ndarray | None = None

    def _free_buffers(self) -> None:
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.alpha * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        # grad * 1 on the positive side, grad * alpha on the negative side,
        # phrased to preserve grad_out's dtype (a bare np.where(mask, 1.0,
        # alpha) materializes float64 and would upcast float32 gradients).
        return np.where(self._mask, grad_out, grad_out * self.alpha)


class Tanh(Module):
    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def _free_buffers(self) -> None:
        self._out = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._out**2)


class Sigmoid(Module):
    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def _free_buffers(self) -> None:
        self._out = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = sigmoid(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._out * (1.0 - self._out)


def sigmoid(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Numerically stable logistic function.

    Branchless form of the classic two-sided formulation: with
    ``t = exp(-|x|)`` the positive side is ``1 / (1 + t)`` and the
    negative side is ``t / (1 + t)`` — exactly the values the original
    boolean-indexed implementation produced (``-|x|`` *is* ``x`` on the
    negative side, and both sides share the ``1 + t`` denominator), so
    results are bit-identical while avoiding the fancy-indexing
    gather/scatter that dominated its runtime.

    Follows the input dtype (float32 in, float32 out) and accepts an
    ``out`` array so recurrent kernels can write gate activations into a
    preallocated workspace.
    """
    if out is None:
        dt = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
        out = np.empty(x.shape, dtype=dt)
    t = np.abs(x)
    np.negative(t, out=t)
    np.exp(t, out=t)  # t = exp(-|x|)
    denom = 1.0 + t
    np.divide(t, denom, out=t)  # negative-side value t / (1 + t)
    np.divide(1.0, denom, out=denom)  # positive-side value 1 / (1 + t)
    np.copyto(out, t)
    np.copyto(out, denom, where=x >= 0)
    return out
