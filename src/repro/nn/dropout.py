"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Dropout(Module):
    """Inverted dropout: active only in training mode.

    The mask is drawn from the layer's own generator (seeded at
    construction) so federated runs remain reproducible regardless of
    client scheduling order.
    """

    def __init__(self, rate: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def _free_buffers(self) -> None:
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        # Build the mask in the input dtype (a bare bool/keep division
        # would materialize float64 and upcast float32 activations).
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype)
        mask /= keep
        self._mask = mask
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
