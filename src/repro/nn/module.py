"""Base classes for layers: :class:`Parameter`, :class:`Module`, :class:`Sequential`."""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import get_default_dtype


class Parameter:
    """A trainable tensor with an accumulated gradient.

    ``data`` holds the current value; ``grad`` accumulates gradient
    contributions across :meth:`Module.backward` calls until
    :meth:`zero_grad` resets it.  Both are numpy arrays of the same
    shape in the dtype-policy dtype active at construction (float64 by
    default — see :mod:`repro.nn.dtype`); the dtype then sticks with
    the parameter for its lifetime.
    """

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=get_default_dtype())
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses implement :meth:`forward` (caching anything backward
    needs) and :meth:`backward` (consuming the cache, accumulating
    parameter gradients, and returning the gradient with respect to the
    forward input).
    """

    def __init__(self) -> None:
        self.training = True

    # -- parameter management -------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """Return this module's parameters, recursing into sub-modules.

        Discovery is attribute-based: any attribute that is a
        :class:`Parameter`, a :class:`Module`, or a list of modules is
        included, in attribute definition order.
        """
        params: list[Parameter] = []
        for value in vars(self).values():
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        params.append(item)
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- cache management ------------------------------------------------------
    def free_buffers(self) -> None:
        """Drop cached forward activations, recursively.

        Every layer caches whatever its ``backward`` needs during
        ``forward`` (im2col columns, gate activations, pooling masks).
        Between training steps those caches are dead weight — a full
        round of clients would otherwise pin one batch of activations
        per workspace model.  Calling this after the optimizer step
        releases them; the next ``forward`` rebuilds everything, and a
        ``backward`` without a fresh ``forward`` raises exactly as it
        does on a newly constructed module.
        """
        self._free_buffers()
        for value in vars(self).values():
            if isinstance(value, Module):
                value.free_buffers()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item.free_buffers()

    def _free_buffers(self) -> None:
        """Hook: subclasses drop their own cached tensors here."""

    # -- train / eval mode -----------------------------------------------------
    def train(self) -> "Module":
        """Put the module (recursively) in training mode."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Put the module (recursively) in evaluation mode."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    # -- computation -----------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """A chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def append(self, layer: Module) -> None:
        self.layers.append(layer)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
