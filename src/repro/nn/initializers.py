"""Weight initialization schemes.

Every initializer takes an explicit :class:`numpy.random.Generator` so
model construction is bit-reproducible — a requirement for the federated
experiments, where all clients must start from an identical global model.

Sampling always happens in float64 (so a given seed yields the same
underlying draw regardless of the dtype policy) and the result is cast
to the active default dtype from :mod:`repro.nn.dtype`; under the
default float64 policy the cast is a no-op and values are bit-identical
to the pre-policy behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import get_default_dtype


def glorot_uniform(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    out = rng.uniform(-limit, limit, size=shape)
    return out.astype(get_default_dtype(), copy=False)


def he_normal(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    """He normal: N(0, 2 / fan_in), the standard choice before ReLU."""
    std = np.sqrt(2.0 / fan_in)
    out = rng.normal(0.0, std, size=shape)
    return out.astype(get_default_dtype(), copy=False)


def orthogonal(rng: np.random.Generator, shape: tuple[int, int], gain: float = 1.0) -> np.ndarray:
    """Orthogonal init for square-ish recurrent weight matrices."""
    rows, cols = shape
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))  # make the decomposition unique
    if rows < cols:
        q = q.T
    return (gain * q[:rows, :cols]).astype(get_default_dtype(), copy=False)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=get_default_dtype())
