"""Stateless numerical helpers shared across the library."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError("label out of range")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    preds = logits.argmax(axis=-1)
    return float((preds == np.asarray(labels)).mean())


def clip_by_norm(vec: np.ndarray, max_norm: float) -> np.ndarray:
    """Scale ``vec`` down so its L2 norm is at most ``max_norm``."""
    norm = float(np.linalg.norm(vec))
    if norm <= max_norm or norm == 0.0:
        return vec
    return vec * (max_norm / norm)
