"""Normalization layers.

BatchNorm is a known trouble-spot in federated learning (client batch
statistics diverge under non-IID data), which makes it a useful model
component for FL experimentation; LayerNorm is the standard remedy.
Both implement exact manual backprop and are gradient-checked in tests.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import get_default_dtype
from repro.nn.module import Module, Parameter


class LayerNorm(Module):
    """Normalize each sample over its last dimension, then affine."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim), name="layernorm.gamma")
        self.beta = Parameter(np.zeros(dim), name="layernorm.beta")
        self._cache: tuple | None = None

    def _free_buffers(self) -> None:
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.dim:
            raise ValueError(f"LayerNorm expects last dim {self.dim}, got {x.shape[-1]}")
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return self.gamma.data * x_hat + self.beta.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std = self._cache
        reduce_axes = tuple(range(grad_out.ndim - 1))
        self.gamma.grad += (grad_out * x_hat).sum(axis=reduce_axes)
        self.beta.grad += grad_out.sum(axis=reduce_axes)
        g = grad_out * self.gamma.data
        # d/dx of (x - mean) / std, vectorized over leading dims.
        return inv_std * (
            g
            - g.mean(axis=-1, keepdims=True)
            - x_hat * (g * x_hat).mean(axis=-1, keepdims=True)
        )


class BatchNorm1d(Module):
    """Batch normalization over axis 0 for (batch, features) inputs.

    Running statistics are used in eval mode.  In federated training,
    running stats are part of the parameter vector *only* through gamma
    and beta — the running mean/var buffers stay local (the standard
    FedAvg-with-BN pitfall this layer lets experiments demonstrate).
    """

    def __init__(self, dim: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(dim), name="batchnorm.gamma")
        self.beta = Parameter(np.zeros(dim), name="batchnorm.beta")
        # Running stats follow the dtype policy like every other buffer so
        # float32 training never mixes precisions at the normalize step.
        self.running_mean = np.zeros(dim, dtype=get_default_dtype())
        self.running_var = np.ones(dim, dtype=get_default_dtype())
        self._cache: tuple | None = None

    def _free_buffers(self) -> None:
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.dim:
            raise ValueError(f"BatchNorm1d expects (batch, {self.dim}), got {x.shape}")
        if self.training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std, x.shape[0], self.training)
        return self.gamma.data * x_hat + self.beta.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, batch, was_training = self._cache
        self.gamma.grad += (grad_out * x_hat).sum(axis=0)
        self.beta.grad += grad_out.sum(axis=0)
        g = grad_out * self.gamma.data
        if not was_training:
            # Eval mode: mean/var are constants.
            return g * inv_std
        return inv_std / batch * (
            batch * g - g.sum(axis=0) - x_hat * (g * x_hat).sum(axis=0)
        )
