"""Fully connected (dense) layer."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform, zeros
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x @ W + b`` for inputs of shape (batch, in_features)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        bias: bool = True,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            glorot_uniform(rng, (in_features, out_features), in_features, out_features),
            name="linear.weight",
        )
        self.bias = Parameter(zeros((out_features,)), name="linear.bias") if bias else None
        self._x: np.ndarray | None = None

    def _free_buffers(self) -> None:
        self._x = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._x.T @ grad_out
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.data.T
