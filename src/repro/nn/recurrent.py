"""Multi-layer LSTM with exact backpropagation through time.

The Sent140 model in the paper is a 2-layer LSTM followed by a fully
connected layer.  This module implements an :class:`LSTMCell` (one step),
an :class:`LSTM` (a stack of layers unrolled over a full sequence), and
:class:`LastTimestep` (extracts the final hidden state for
classification heads).
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import sigmoid
from repro.nn.initializers import glorot_uniform, orthogonal, zeros
from repro.nn.module import Module, Parameter


class LSTMCell(Module):
    """Single LSTM layer unrolled over time.

    Input: (B, T, input_dim).  Output: the full hidden sequence
    (B, T, hidden_dim).  Gate order in the fused weight matrix is
    [input, forget, cell, output].  The forget-gate bias starts at 1.0
    (standard remedy for vanishing memory early in training).
    """

    def __init__(
        self, input_dim: int, hidden_dim: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_x = Parameter(
            glorot_uniform(rng, (input_dim, 4 * hidden_dim), input_dim, hidden_dim),
            name="lstm.w_x",
        )
        self.w_h = Parameter(
            np.concatenate(
                [orthogonal(rng, (hidden_dim, hidden_dim)) for _ in range(4)], axis=1
            ),
            name="lstm.w_h",
        )
        bias = zeros((4 * hidden_dim,))
        bias[hidden_dim : 2 * hidden_dim] = 1.0  # forget gate
        self.bias = Parameter(bias, name="lstm.bias")
        self._cache: dict | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, steps, _ = x.shape
        hid = self.hidden_dim
        h = np.zeros((batch, hid))
        c = np.zeros((batch, hid))
        hs = np.zeros((batch, steps, hid))
        gates_i = np.zeros((batch, steps, hid))
        gates_f = np.zeros((batch, steps, hid))
        gates_g = np.zeros((batch, steps, hid))
        gates_o = np.zeros((batch, steps, hid))
        cells = np.zeros((batch, steps, hid))
        h_prevs = np.zeros((batch, steps, hid))
        c_prevs = np.zeros((batch, steps, hid))
        for t in range(steps):
            h_prevs[:, t] = h
            c_prevs[:, t] = c
            z = x[:, t] @ self.w_x.data + h @ self.w_h.data + self.bias.data
            gi = sigmoid(z[:, :hid])
            gf = sigmoid(z[:, hid : 2 * hid])
            gg = np.tanh(z[:, 2 * hid : 3 * hid])
            go = sigmoid(z[:, 3 * hid :])
            c = gf * c + gi * gg
            h = go * np.tanh(c)
            gates_i[:, t], gates_f[:, t] = gi, gf
            gates_g[:, t], gates_o[:, t] = gg, go
            cells[:, t] = c
            hs[:, t] = h
        self._cache = {
            "x": x,
            "i": gates_i,
            "f": gates_f,
            "g": gates_g,
            "o": gates_o,
            "c": cells,
            "h_prev": h_prevs,
            "c_prev": c_prevs,
        }
        return hs

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        x = cache["x"]
        batch, steps, _ = x.shape
        hid = self.hidden_dim
        grad_x = np.zeros_like(x)
        dh_next = np.zeros((batch, hid))
        dc_next = np.zeros((batch, hid))
        for t in reversed(range(steps)):
            gi, gf = cache["i"][:, t], cache["f"][:, t]
            gg, go = cache["g"][:, t], cache["o"][:, t]
            c, c_prev = cache["c"][:, t], cache["c_prev"][:, t]
            h_prev = cache["h_prev"][:, t]
            dh = grad_out[:, t] + dh_next
            tanh_c = np.tanh(c)
            dc = dh * go * (1.0 - tanh_c**2) + dc_next
            d_go = dh * tanh_c
            d_gi = dc * gg
            d_gg = dc * gi
            d_gf = dc * c_prev
            dz = np.concatenate(
                [
                    d_gi * gi * (1.0 - gi),
                    d_gf * gf * (1.0 - gf),
                    d_gg * (1.0 - gg**2),
                    d_go * go * (1.0 - go),
                ],
                axis=1,
            )
            self.w_x.grad += x[:, t].T @ dz
            self.w_h.grad += h_prev.T @ dz
            self.bias.grad += dz.sum(axis=0)
            grad_x[:, t] = dz @ self.w_x.data.T
            dh_next = dz @ self.w_h.data.T
            dc_next = dc * gf
        return grad_x


class LSTM(Module):
    """A stack of :class:`LSTMCell` layers (the paper uses 2)."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_layers = num_layers
        dims = [input_dim] + [hidden_dim] * num_layers
        self.cells = [
            LSTMCell(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)
        ]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for cell in self.cells:
            x = cell.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for cell in reversed(self.cells):
            grad_out = cell.backward(grad_out)
        return grad_out


class LastTimestep(Module):
    """Select the last timestep of a sequence: (B, T, H) -> (B, H)."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x[:, -1, :]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        grad = np.zeros(self._shape, dtype=np.float64)
        grad[:, -1, :] = grad_out
        return grad
