"""Multi-layer LSTM with exact backpropagation through time.

The Sent140 model in the paper is a 2-layer LSTM followed by a fully
connected layer.  This module implements an :class:`LSTMCell` (one step),
an :class:`LSTM` (a stack of layers unrolled over a full sequence), and
:class:`LastTimestep` (extracts the final hidden state for
classification heads).

Kernel design (see ``docs/performance.md``): the input projection for
the whole sequence is hoisted out of the time loop into one
``(B*T, in) @ (in, 4H)`` GEMM, gate activations are computed with a
fused sigmoid/tanh block into a preallocated ``(B, T, 4H)`` workspace,
and the per-step recurrent GEMM reuses one scratch buffer.  BLAS GEMM
results are row-independent, so every value matches the per-timestep
reference (:class:`repro.nn.reference.ReferenceLSTMCell`) bit for bit
in float64 — the equivalence tests enforce exactly that.  All state and
workspaces follow the input/parameter dtype instead of silently
upcasting to float64, so float32 training stays float32 end to end.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import sigmoid
from repro.nn.initializers import glorot_uniform, orthogonal, zeros
from repro.nn.module import Module, Parameter


class LSTMCell(Module):
    """Single LSTM layer unrolled over time.

    Input: (B, T, input_dim).  Output: the full hidden sequence
    (B, T, hidden_dim).  Gate order in the fused weight matrix is
    [input, forget, cell, output].  The forget-gate bias starts at 1.0
    (standard remedy for vanishing memory early in training).
    """

    def __init__(
        self, input_dim: int, hidden_dim: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_x = Parameter(
            glorot_uniform(rng, (input_dim, 4 * hidden_dim), input_dim, hidden_dim),
            name="lstm.w_x",
        )
        self.w_h = Parameter(
            np.concatenate(
                [orthogonal(rng, (hidden_dim, hidden_dim)) for _ in range(4)], axis=1
            ),
            name="lstm.w_h",
        )
        bias = zeros((4 * hidden_dim,))
        bias[hidden_dim : 2 * hidden_dim] = 1.0  # forget gate
        self.bias = Parameter(bias, name="lstm.bias")
        self._cache: dict | None = None

    def _free_buffers(self) -> None:
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, steps, _ = x.shape
        hid = self.hidden_dim
        w_h = self.w_h.data
        dtype = np.result_type(x.dtype, self.w_x.data.dtype)
        # Input projection for the full sequence: one big GEMM instead of
        # T small ones.  GEMM rows are independent, so xw[:, t] is
        # bit-identical to x[:, t] @ w_x.
        xw = (x.reshape(batch * steps, -1) @ self.w_x.data).reshape(
            batch, steps, 4 * hid
        )
        h = np.zeros((batch, hid), dtype=dtype)
        c = np.zeros((batch, hid), dtype=dtype)
        hs = np.empty((batch, steps, hid), dtype=dtype)
        cells = np.empty((batch, steps, hid), dtype=dtype)
        gates = np.empty((batch, steps, 4 * hid), dtype=dtype)
        # tanh(c_t) is needed again by backward; caching it here saves one
        # transcendental per step in the backward loop.
        tanh_cells = np.empty((batch, steps, hid), dtype=dtype)
        # Per-step scratch, reused across the whole sequence.
        z = np.empty((batch, 4 * hid), dtype=dtype)
        prod = np.empty((batch, hid), dtype=dtype)
        for t in range(steps):
            np.matmul(h, w_h, out=z)
            z += xw[:, t]
            z += self.bias.data
            # Fused gate block: one sigmoid over [i|f], one tanh over g,
            # one sigmoid over o, written straight into the cache.
            g = gates[:, t]
            sigmoid(z[:, : 2 * hid], out=g[:, : 2 * hid])
            np.tanh(z[:, 2 * hid : 3 * hid], out=g[:, 2 * hid : 3 * hid])
            sigmoid(z[:, 3 * hid :], out=g[:, 3 * hid :])
            gi, gf = g[:, :hid], g[:, hid : 2 * hid]
            gg, go = g[:, 2 * hid : 3 * hid], g[:, 3 * hid :]
            # c = gf * c_prev + gi * gg, accumulated in the cache slot.
            ct = cells[:, t]
            np.multiply(gf, c, out=ct)
            np.multiply(gi, gg, out=prod)
            ct += prod
            c = ct
            # h = go * tanh(c)
            tc = tanh_cells[:, t]
            np.tanh(ct, out=tc)
            ht = hs[:, t]
            np.multiply(go, tc, out=ht)
            h = ht
        self._cache = {
            "x": x,
            "gates": gates,
            "cells": cells,
            "hs": hs,
            "tanh_cells": tanh_cells,
        }
        return hs

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        x = cache["x"]
        gates, cells, hs = cache["gates"], cache["cells"], cache["hs"]
        tanh_cells = cache["tanh_cells"]
        batch, steps, _ = x.shape
        hid = self.hidden_dim
        dtype = gates.dtype
        w_h = self.w_h.data
        # grad_x stays per-step: a hoisted (B*T, 4H) @ w_x.T GEMM gives
        # different BLAS blocking than the per-step reference and breaks
        # bitwise float64 identity (transposed operands are shape-sensitive).
        grad_x = np.empty(x.shape, dtype=dtype)
        # Preallocated per-step workspaces.  Every elementwise chain below
        # replays the reference expressions operation-for-operation (same
        # operands, same association), so writing through scratch buffers
        # instead of fresh temporaries changes nothing bitwise.
        dz = np.empty((batch, 4 * hid), dtype=dtype)
        dh = np.empty((batch, hid), dtype=dtype)
        dc = np.empty((batch, hid), dtype=dtype)
        s = np.empty((batch, hid), dtype=dtype)
        dh_next = np.zeros((batch, hid), dtype=dtype)
        dc_next = np.zeros((batch, hid), dtype=dtype)
        zero_state = np.zeros((batch, hid), dtype=dtype)
        w_h_t = w_h.T
        w_x_t = self.w_x.data.T
        # GEMM destinations.  The per-step parameter-gradient products are
        # large enough (hundreds of KB) that fresh temporaries go through
        # mmap on every step; writing them into preallocated buffers via
        # out= produces the same values without the allocator churn.
        gw_x = np.empty(self.w_x.data.shape, dtype=dtype)
        gw_h = np.empty(w_h.shape, dtype=dtype)
        gbias = np.empty(4 * hid, dtype=dtype)
        gx = np.empty((batch, x.shape[2]), dtype=dtype)
        for t in reversed(range(steps)):
            g = gates[:, t]
            gi, gf = g[:, :hid], g[:, hid : 2 * hid]
            gg, go = g[:, 2 * hid : 3 * hid], g[:, 3 * hid :]
            c_prev = cells[:, t - 1] if t > 0 else zero_state
            h_prev = hs[:, t - 1] if t > 0 else zero_state
            tanh_c = tanh_cells[:, t]
            # dh = grad_out_t + dh_next
            np.add(grad_out[:, t], dh_next, out=dh)
            # dc = dh * go * (1 - tanh_c**2) + dc_next
            np.multiply(dh, go, out=dc)
            np.multiply(tanh_c, tanh_c, out=s)
            np.subtract(1.0, s, out=s)
            dc *= s
            dc += dc_next
            # dz_i = dc * gg * gi * (1 - gi)
            dzi = dz[:, :hid]
            np.multiply(dc, gg, out=dzi)
            dzi *= gi
            np.subtract(1.0, gi, out=s)
            dzi *= s
            # dz_f = dc * c_prev * gf * (1 - gf)
            dzf = dz[:, hid : 2 * hid]
            np.multiply(dc, c_prev, out=dzf)
            dzf *= gf
            np.subtract(1.0, gf, out=s)
            dzf *= s
            # dz_g = dc * gi * (1 - gg**2)
            dzg = dz[:, 2 * hid : 3 * hid]
            np.multiply(dc, gi, out=dzg)
            np.multiply(gg, gg, out=s)
            np.subtract(1.0, s, out=s)
            dzg *= s
            # dz_o = dh * tanh_c * go * (1 - go)
            dzo = dz[:, 3 * hid :]
            np.multiply(dh, tanh_c, out=dzo)
            dzo *= go
            np.subtract(1.0, go, out=s)
            dzo *= s
            np.matmul(x[:, t].T, dz, out=gw_x)
            self.w_x.grad += gw_x
            np.matmul(h_prev.T, dz, out=gw_h)
            self.w_h.grad += gw_h
            np.sum(dz, axis=0, out=gbias)
            self.bias.grad += gbias
            np.matmul(dz, w_x_t, out=gx)
            grad_x[:, t] = gx
            np.matmul(dz, w_h_t, out=dh_next)
            np.multiply(dc, gf, out=dc_next)
        return grad_x


class LSTM(Module):
    """A stack of :class:`LSTMCell` layers (the paper uses 2)."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_layers = num_layers
        dims = [input_dim] + [hidden_dim] * num_layers
        self.cells = [
            LSTMCell(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)
        ]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for cell in self.cells:
            x = cell.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for cell in reversed(self.cells):
            grad_out = cell.backward(grad_out)
        return grad_out


class LastTimestep(Module):
    """Select the last timestep of a sequence: (B, T, H) -> (B, H)."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def _free_buffers(self) -> None:
        self._shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x[:, -1, :]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        grad = np.zeros(self._shape, dtype=grad_out.dtype)
        grad[:, -1, :] = grad_out
        return grad
