"""Flat-vector (de)serialization of model parameters.

Federated payloads cross the client-server boundary as single flat
vectors; these helpers define the canonical layout (parameter discovery
order, row-major flattening) used by every algorithm and by the
communication accountant.  Vectors carry the parameters' own dtype —
under the default float64 policy this is exactly the historical
behaviour, while a float32 policy halves the payload.  Writing a vector
back into a model casts to each parameter's dtype.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.exceptions import CheckpointMismatchError
from repro.nn.dtype import get_default_dtype
from repro.nn.module import Module
from repro.nn.optim import Optimizer


def num_params(model: Module) -> int:
    """Total number of scalar parameters in ``model``."""
    return sum(p.size for p in model.parameters())


def get_flat_params(model: Module) -> np.ndarray:
    """Concatenate all parameters into one flat vector (a copy)."""
    parts = [p.data.reshape(-1) for p in model.parameters()]
    if not parts:
        return np.zeros(0, dtype=get_default_dtype())
    return np.concatenate(parts)


def set_flat_params(model: Module, flat: np.ndarray) -> None:
    """Write ``flat`` back into the model, preserving shapes and dtypes."""
    flat = np.asarray(flat)
    expected = num_params(model)
    if flat.size != expected:
        raise ValueError(f"flat vector has {flat.size} entries, model needs {expected}")
    offset = 0
    for p in model.parameters():
        p.data[...] = flat[offset : offset + p.size].reshape(p.shape)
        offset += p.size


def get_flat_grads(model: Module) -> np.ndarray:
    """Concatenate all accumulated gradients into one vector (a copy)."""
    parts = [p.grad.reshape(-1) for p in model.parameters()]
    if not parts:
        return np.zeros(0, dtype=get_default_dtype())
    return np.concatenate(parts)


def add_flat_to_grads(model: Module, flat: np.ndarray) -> None:
    """Add a flat vector into the model's gradient buffers.

    Used by SCAFFOLD to inject control-variate corrections and by
    FedProx to add the proximal-term gradient before the optimizer step.
    """
    flat = np.asarray(flat)
    expected = num_params(model)
    if flat.size != expected:
        raise ValueError(f"flat vector has {flat.size} entries, model needs {expected}")
    offset = 0
    for p in model.parameters():
        p.grad += flat[offset : offset + p.size].reshape(p.shape)
        offset += p.size


def params_fingerprint(model: Module) -> bytes:
    """Content hash of a module's parameters (blake2b-128).

    Bit-exact: two parameter sets fingerprint equal iff every tensor is
    byte-identical (shape, dtype and values).  Used to key the
    delta-embedding cache on the feature extractor's version — hashing
    a small model is an order of magnitude cheaper than one forward
    pass over a client shard.
    """
    digest = hashlib.blake2b(digest_size=16)
    for p in model.parameters():
        data = np.ascontiguousarray(p.data)
        digest.update(str(data.dtype).encode())
        digest.update(str(data.shape).encode())
        digest.update(data.tobytes())
    return digest.digest()


def save_params(model: Module, path: str) -> None:
    """Persist parameters to an ``.npz`` file."""
    arrays = {f"p{i}": p.data for i, p in enumerate(model.parameters())}
    np.savez(path, **arrays)


def load_params(model: Module, path: str) -> None:
    """Load parameters saved by :func:`save_params` into ``model``."""
    with np.load(path) as data:
        params = model.parameters()
        if len(data.files) != len(params):
            raise ValueError(
                f"checkpoint has {len(data.files)} tensors, model has {len(params)}"
            )
        for i, p in enumerate(params):
            stored = data[f"p{i}"]
            if stored.shape != p.data.shape:
                raise ValueError(
                    f"tensor {i} shape mismatch: {stored.shape} vs {p.data.shape}"
                )
            p.data[...] = stored


def save_state(path: str, model: Module, optimizer: Optimizer | None = None) -> None:
    """Persist model parameters + optimizer slots + the dtype-policy tag.

    Unlike :func:`save_params`, the resulting ``.npz`` is self-describing
    enough to resume *training*, not just inference: SGD momentum /
    RMSProp square averages / Adam moment buffers and the step counter
    round-trip exactly, and the active dtype policy is recorded so a
    load under a different policy fails loudly instead of silently
    casting (a float32 resume of a float64 run would diverge bit-wise
    while looking plausible).
    """
    arrays: dict[str, np.ndarray] = {
        f"p{i}": p.data for i, p in enumerate(model.parameters())
    }
    arrays["meta_dtype"] = np.array(np.dtype(get_default_dtype()).name)
    if optimizer is not None:
        state = optimizer.state_dict()
        arrays["opt_class"] = np.array(type(optimizer).__name__)
        arrays["opt_step_count"] = np.array(state["step_count"], dtype=np.int64)
        for slot, buffers in state["slots"].items():
            for i, buf in enumerate(buffers):
                arrays[f"opt_{slot}_{i}"] = buf
    np.savez(path, **arrays)


def load_state(path: str, model: Module, optimizer: Optimizer | None = None) -> None:
    """Load a :func:`save_state` file into ``model`` (and ``optimizer``).

    Raises :class:`~repro.exceptions.CheckpointMismatchError` when the
    file was written under a different dtype policy or for a different
    optimizer class — no silent casting, no partially applied state.
    """
    with np.load(path) as data:
        if "meta_dtype" not in data.files:
            raise ValueError(
                f"{path} is not a save_state() file (no dtype tag); "
                "use load_params() for plain parameter files"
            )
        stored_dtype = str(data["meta_dtype"])
        active_dtype = np.dtype(get_default_dtype()).name
        if stored_dtype != active_dtype:
            raise CheckpointMismatchError(
                f"state file {path} was saved under the {stored_dtype} dtype "
                f"policy but the active policy is {active_dtype}; refusing to "
                f"cast silently — switch policies with "
                f"set_default_dtype({stored_dtype!r}) or re-save the state"
            )
        params = model.parameters()
        for i, p in enumerate(params):
            key = f"p{i}"
            if key not in data.files:
                raise ValueError(
                    f"state file has fewer tensors than the model ({i} < {len(params)})"
                )
            stored = data[key]
            if stored.shape != p.data.shape:
                raise ValueError(
                    f"tensor {i} shape mismatch: {stored.shape} vs {p.data.shape}"
                )
        if optimizer is not None:
            if "opt_class" not in data.files:
                raise ValueError(f"state file {path} carries no optimizer state")
            stored_class = str(data["opt_class"])
            if stored_class != type(optimizer).__name__:
                raise CheckpointMismatchError(
                    f"state file {path} holds {stored_class} state, cannot load "
                    f"into {type(optimizer).__name__}"
                )
            slots = {
                slot.lstrip("_"): [
                    data[f"opt_{slot.lstrip('_')}_{i}"]
                    for i in range(len(getattr(optimizer, slot)))
                ]
                for slot in optimizer._slots
            }
            optimizer.load_state_dict(
                {"step_count": int(data["opt_step_count"]), "slots": slots}
            )
        # Model params written last: every check above passed, so a
        # raised error leaves model and optimizer untouched.
        for i, p in enumerate(params):
            p.data[...] = data[f"p{i}"]
