"""Flat-vector (de)serialization of model parameters.

Federated payloads cross the client-server boundary as single flat
vectors; these helpers define the canonical layout (parameter discovery
order, row-major flattening) used by every algorithm and by the
communication accountant.  Vectors carry the parameters' own dtype —
under the default float64 policy this is exactly the historical
behaviour, while a float32 policy halves the payload.  Writing a vector
back into a model casts to each parameter's dtype.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.nn.dtype import get_default_dtype
from repro.nn.module import Module


def num_params(model: Module) -> int:
    """Total number of scalar parameters in ``model``."""
    return sum(p.size for p in model.parameters())


def get_flat_params(model: Module) -> np.ndarray:
    """Concatenate all parameters into one flat vector (a copy)."""
    parts = [p.data.reshape(-1) for p in model.parameters()]
    if not parts:
        return np.zeros(0, dtype=get_default_dtype())
    return np.concatenate(parts)


def set_flat_params(model: Module, flat: np.ndarray) -> None:
    """Write ``flat`` back into the model, preserving shapes and dtypes."""
    flat = np.asarray(flat)
    expected = num_params(model)
    if flat.size != expected:
        raise ValueError(f"flat vector has {flat.size} entries, model needs {expected}")
    offset = 0
    for p in model.parameters():
        p.data[...] = flat[offset : offset + p.size].reshape(p.shape)
        offset += p.size


def get_flat_grads(model: Module) -> np.ndarray:
    """Concatenate all accumulated gradients into one vector (a copy)."""
    parts = [p.grad.reshape(-1) for p in model.parameters()]
    if not parts:
        return np.zeros(0, dtype=get_default_dtype())
    return np.concatenate(parts)


def add_flat_to_grads(model: Module, flat: np.ndarray) -> None:
    """Add a flat vector into the model's gradient buffers.

    Used by SCAFFOLD to inject control-variate corrections and by
    FedProx to add the proximal-term gradient before the optimizer step.
    """
    flat = np.asarray(flat)
    expected = num_params(model)
    if flat.size != expected:
        raise ValueError(f"flat vector has {flat.size} entries, model needs {expected}")
    offset = 0
    for p in model.parameters():
        p.grad += flat[offset : offset + p.size].reshape(p.shape)
        offset += p.size


def params_fingerprint(model: Module) -> bytes:
    """Content hash of a module's parameters (blake2b-128).

    Bit-exact: two parameter sets fingerprint equal iff every tensor is
    byte-identical (shape, dtype and values).  Used to key the
    delta-embedding cache on the feature extractor's version — hashing
    a small model is an order of magnitude cheaper than one forward
    pass over a client shard.
    """
    digest = hashlib.blake2b(digest_size=16)
    for p in model.parameters():
        data = np.ascontiguousarray(p.data)
        digest.update(str(data.dtype).encode())
        digest.update(str(data.shape).encode())
        digest.update(data.tobytes())
    return digest.digest()


def save_params(model: Module, path: str) -> None:
    """Persist parameters to an ``.npz`` file."""
    arrays = {f"p{i}": p.data for i, p in enumerate(model.parameters())}
    np.savez(path, **arrays)


def load_params(model: Module, path: str) -> None:
    """Load parameters saved by :func:`save_params` into ``model``."""
    with np.load(path) as data:
        params = model.parameters()
        if len(data.files) != len(params):
            raise ValueError(
                f"checkpoint has {len(data.files)} tensors, model has {len(params)}"
            )
        for i, p in enumerate(params):
            stored = data[f"p{i}"]
            if stored.shape != p.data.shape:
                raise ValueError(
                    f"tensor {i} shape mismatch: {stored.shape} vs {p.data.shape}"
                )
            p.data[...] = stored
