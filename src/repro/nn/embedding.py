"""Token embedding lookup layer."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter


class Embedding(Module):
    """Map integer token ids (B, T) to dense vectors (B, T, dim).

    Supports loading frozen pre-trained vectors (the paper uses
    pre-trained word vectors for Sent140); set ``trainable=False`` to
    exclude the table from gradient updates while still counting it in
    the parameter vector layout (mirroring a frozen PyTorch embedding
    with ``requires_grad=False`` would *exclude* it, so we instead zero
    its gradient, which keeps the FL flat-vector layout stable).
    """

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        rng: np.random.Generator | None = None,
        trainable: bool = True,
        pretrained: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.vocab_size = vocab_size
        self.dim = dim
        self.trainable = trainable
        if pretrained is not None:
            if pretrained.shape != (vocab_size, dim):
                raise ValueError(
                    f"pretrained shape {pretrained.shape} != ({vocab_size}, {dim})"
                )
            # Parameter casts to the active dtype policy.
            table = np.array(pretrained)
        else:
            table = rng.normal(0.0, 0.1, size=(vocab_size, dim))
        self.weight = Parameter(table, name="embedding.weight")
        self._ids: np.ndarray | None = None

    def _free_buffers(self) -> None:
        self._ids = None

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(token_ids, dtype=np.int64)
        if ids.min() < 0 or ids.max() >= self.vocab_size:
            raise ValueError("token id out of range")
        self._ids = ids
        return self.weight.data[ids]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._ids is None:
            raise RuntimeError("backward called before forward")
        if self.trainable:
            np.add.at(
                self.weight.grad,
                self._ids.reshape(-1),
                grad_out.reshape(-1, self.dim),
            )
        # Token ids are not differentiable; return a zero placeholder of
        # the input's shape so Sequential chaining stays uniform.
        return np.zeros(self._ids.shape, dtype=self.weight.data.dtype)
