"""Loss functions with exact gradients.

Each loss exposes ``forward(pred, target) -> float`` and
``backward() -> grad_wrt_pred``.  Losses are mean-reduced over the batch,
matching the paper's per-client empirical risk (Eq. 4 normalized by n_k).
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax, softmax
from repro.nn.activations import sigmoid


class Loss:
    """Interface for batch-mean losses."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.forward(pred, target)


class SoftmaxCrossEntropy(Loss):
    """Multiclass cross-entropy on raw logits with integer labels."""

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        labels = np.asarray(target, dtype=np.int64)
        logp = log_softmax(pred, axis=-1)
        self._probs = softmax(pred, axis=-1)
        self._labels = labels
        batch = pred.shape[0]
        return float(-logp[np.arange(batch), labels].mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        batch = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(batch), self._labels] -= 1.0
        return grad / batch


class MeanSquaredError(Loss):
    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        # Cast the target to the prediction dtype so float32 training
        # does not silently upcast the whole backward pass to float64.
        self._diff = pred - np.asarray(target, dtype=pred.dtype)
        return float((self._diff**2).mean())

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size


class BinaryCrossEntropy(Loss):
    """Binary cross-entropy on a single logit column (B,) or (B, 1)."""

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._target: np.ndarray | None = None
        self._shape: tuple[int, ...] | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        self._shape = pred.shape
        logits = pred.reshape(-1)
        target = np.asarray(target, dtype=pred.dtype).reshape(-1)
        probs = sigmoid(logits)
        self._probs = probs
        self._target = target
        eps = 1e-12
        return float(
            -(target * np.log(probs + eps) + (1 - target) * np.log(1 - probs + eps)).mean()
        )

    def backward(self) -> np.ndarray:
        if self._probs is None or self._target is None or self._shape is None:
            raise RuntimeError("backward called before forward")
        grad = (self._probs - self._target) / self._probs.shape[0]
        return grad.reshape(self._shape)
