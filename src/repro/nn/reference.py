"""Reference (pre-optimization) kernels kept as equivalence oracles.

The optimized hot-path kernels in :mod:`repro.nn.conv`,
:mod:`repro.nn.recurrent` and :mod:`repro.nn.gru` are required to be
*bit-for-bit* identical to these straightforward implementations in
float64 — that is the contract that lets the kernel rewrites ship
without re-validating every paper experiment.  The equivalence tests
(``tests/nn/test_kernel_equivalence.py``) and the benchmark regression
harness (``benchmarks/bench_kernels.py``) both compare against this
module; it is not used on any training path.

The code here is the original loop-based implementation, frozen on
purpose — do not "optimize" it.
"""

from __future__ import annotations

import numpy as np

from repro.nn.conv import Conv2d
from repro.nn.gru import GRUCell
from repro.nn.module import Module
from repro.nn.recurrent import LSTMCell


def sigmoid_reference(x: np.ndarray) -> np.ndarray:
    """Original logistic function: two boolean-indexed exp branches."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def im2col_reference(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Original im2col: gather kernel offsets with a K x K Python loop."""
    batch, channels, height, width = x.shape
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = np.empty((batch, channels, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for ki in range(kernel):
        i_end = ki + stride * out_h
        for kj in range(kernel):
            j_end = kj + stride * out_w
            cols[:, :, ki, kj, :, :] = x[:, :, ki:i_end:stride, kj:j_end:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(batch * out_h * out_w, -1)
    return cols, out_h, out_w


def col2im_reference(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Original col2im: scatter-add through a transposed 6-D view."""
    batch, channels, height, width = x_shape
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    cols6 = cols.reshape(batch, out_h, out_w, channels, kernel, kernel).transpose(
        0, 3, 4, 5, 1, 2
    )
    for ki in range(kernel):
        i_end = ki + stride * out_h
        for kj in range(kernel):
            j_end = kj + stride * out_w
            padded[:, :, ki:i_end:stride, kj:j_end:stride] += cols6[:, :, ki, kj, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class ReferenceConv2d(Conv2d):
    """:class:`~repro.nn.conv.Conv2d` on the reference im2col/col2im."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch = x.shape[0]
        cols, out_h, out_w = im2col_reference(
            x, self.kernel_size, self.stride, self.padding
        )
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ w_mat.T + self.bias.data
        self._cols = cols
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        return out.reshape(batch, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        batch = grad_out.shape[0]
        out_h, out_w = self._out_hw
        grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(batch * out_h * out_w, -1)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        self.weight.grad += (grad_mat.T @ self._cols).reshape(self.weight.data.shape)
        self.bias.grad += grad_mat.sum(axis=0)
        grad_cols = grad_mat @ w_mat
        return col2im_reference(
            grad_cols, self._x_shape, self.kernel_size, self.stride, self.padding,
            out_h, out_w,
        )


class ReferenceLSTMCell(LSTMCell):
    """Original LSTM step: per-timestep input GEMM, unfused gates."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, steps, _ = x.shape
        hid = self.hidden_dim
        h = np.zeros((batch, hid))
        c = np.zeros((batch, hid))
        hs = np.zeros((batch, steps, hid))
        gates_i = np.zeros((batch, steps, hid))
        gates_f = np.zeros((batch, steps, hid))
        gates_g = np.zeros((batch, steps, hid))
        gates_o = np.zeros((batch, steps, hid))
        cells = np.zeros((batch, steps, hid))
        h_prevs = np.zeros((batch, steps, hid))
        c_prevs = np.zeros((batch, steps, hid))
        for t in range(steps):
            h_prevs[:, t] = h
            c_prevs[:, t] = c
            z = x[:, t] @ self.w_x.data + h @ self.w_h.data + self.bias.data
            gi = sigmoid_reference(z[:, :hid])
            gf = sigmoid_reference(z[:, hid : 2 * hid])
            gg = np.tanh(z[:, 2 * hid : 3 * hid])
            go = sigmoid_reference(z[:, 3 * hid :])
            c = gf * c + gi * gg
            h = go * np.tanh(c)
            gates_i[:, t], gates_f[:, t] = gi, gf
            gates_g[:, t], gates_o[:, t] = gg, go
            cells[:, t] = c
            hs[:, t] = h
        self._cache = {
            "x": x,
            "i": gates_i,
            "f": gates_f,
            "g": gates_g,
            "o": gates_o,
            "c": cells,
            "h_prev": h_prevs,
            "c_prev": c_prevs,
        }
        return hs

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        x = cache["x"]
        batch, steps, _ = x.shape
        hid = self.hidden_dim
        grad_x = np.zeros_like(x)
        dh_next = np.zeros((batch, hid))
        dc_next = np.zeros((batch, hid))
        for t in reversed(range(steps)):
            gi, gf = cache["i"][:, t], cache["f"][:, t]
            gg, go = cache["g"][:, t], cache["o"][:, t]
            c, c_prev = cache["c"][:, t], cache["c_prev"][:, t]
            h_prev = cache["h_prev"][:, t]
            dh = grad_out[:, t] + dh_next
            tanh_c = np.tanh(c)
            dc = dh * go * (1.0 - tanh_c**2) + dc_next
            d_go = dh * tanh_c
            d_gi = dc * gg
            d_gg = dc * gi
            d_gf = dc * c_prev
            dz = np.concatenate(
                [
                    d_gi * gi * (1.0 - gi),
                    d_gf * gf * (1.0 - gf),
                    d_gg * (1.0 - gg**2),
                    d_go * go * (1.0 - go),
                ],
                axis=1,
            )
            self.w_x.grad += x[:, t].T @ dz
            self.w_h.grad += h_prev.T @ dz
            self.bias.grad += dz.sum(axis=0)
            grad_x[:, t] = dz @ self.w_x.data.T
            dh_next = dz @ self.w_h.data.T
            dc_next = dc * gf
        return grad_x


class ReferenceGRUCell(GRUCell):
    """Original GRU step: per-timestep input GEMM."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, steps, _ = x.shape
        hid = self.hidden_dim
        h = np.zeros((batch, hid))
        hs = np.zeros((batch, steps, hid))
        cache = {
            "x": x,
            "z": np.zeros((batch, steps, hid)),
            "r": np.zeros((batch, steps, hid)),
            "n": np.zeros((batch, steps, hid)),
            "h_prev": np.zeros((batch, steps, hid)),
            "hu_n": np.zeros((batch, steps, hid)),
        }
        u_z = self.w_h.data[:, :hid]
        u_r = self.w_h.data[:, hid : 2 * hid]
        u_n = self.w_h.data[:, 2 * hid :]
        for t in range(steps):
            cache["h_prev"][:, t] = h
            xw = x[:, t] @ self.w_x.data + self.bias.data
            z = sigmoid_reference(xw[:, :hid] + h @ u_z)
            r = sigmoid_reference(xw[:, hid : 2 * hid] + h @ u_r)
            hu_n = h @ u_n
            n = np.tanh(xw[:, 2 * hid :] + r * hu_n)
            h = (1.0 - z) * n + z * h
            cache["z"][:, t], cache["r"][:, t] = z, r
            cache["n"][:, t], cache["hu_n"][:, t] = n, hu_n
            hs[:, t] = h
        self._cache = cache
        return hs

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        x = cache["x"]
        batch, steps, _ = x.shape
        hid = self.hidden_dim
        u_z = self.w_h.data[:, :hid]
        u_r = self.w_h.data[:, hid : 2 * hid]
        u_n = self.w_h.data[:, 2 * hid :]
        grad_x = np.zeros_like(x)
        dh_next = np.zeros((batch, hid))
        for t in reversed(range(steps)):
            z, r = cache["z"][:, t], cache["r"][:, t]
            n, hu_n = cache["n"][:, t], cache["hu_n"][:, t]
            h_prev = cache["h_prev"][:, t]
            dh = grad_out[:, t] + dh_next
            dz = dh * (h_prev - n)
            dn = dh * (1.0 - z)
            dh_prev = dh * z
            dn_pre = dn * (1.0 - n**2)
            dr = dn_pre * hu_n
            dz_pre = dz * z * (1.0 - z)
            dr_pre = dr * r * (1.0 - r)
            dxw = np.concatenate([dz_pre, dr_pre, dn_pre], axis=1)
            self.w_x.grad += x[:, t].T @ dxw
            self.bias.grad += dxw.sum(axis=0)
            self.w_h.grad[:, :hid] += h_prev.T @ dz_pre
            self.w_h.grad[:, hid : 2 * hid] += h_prev.T @ dr_pre
            self.w_h.grad[:, 2 * hid :] += h_prev.T @ (dn_pre * r)
            grad_x[:, t] = dxw @ self.w_x.data.T
            dh_prev = (
                dh_prev
                + dz_pre @ u_z.T
                + dr_pre @ u_r.T
                + (dn_pre * r) @ u_n.T
            )
            dh_next = dh_prev
        return grad_x


_REFERENCE_CLASSES = {
    Conv2d: ReferenceConv2d,
    LSTMCell: ReferenceLSTMCell,
    GRUCell: ReferenceGRUCell,
}


def as_reference(module: Module) -> Module:
    """Swap every optimized-kernel layer in a module tree to its
    reference twin, in place, and return the tree.

    The reference classes only override ``forward``/``backward``, so
    rebinding ``__class__`` is safe: parameters, caches and attribute
    layout are untouched.  Used by the benchmark harness to time the
    "before" path on an identically initialized model.
    """
    swap = _REFERENCE_CLASSES.get(type(module))
    if swap is not None:
        module.__class__ = swap
    for value in vars(module).values():
        if isinstance(value, Module):
            as_reference(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Module):
                    as_reference(item)
    return module
