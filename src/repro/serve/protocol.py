"""The message vocabulary spoken between the serve server and workers.

Every message on the socket is one RFW1 wire message wrapped in a
length-prefixed frame (:func:`repro.fl.wire.frame`).  Four shapes occur:

``state`` (RFW1 kind ``state``)
    Server -> worker, once per round (per region under a hierarchical
    topology): the algorithm's :meth:`_worker_state` segments plus a
    ``serve.seq`` sequence number.  Exactly the payload the in-process
    shared-memory pool broadcasts, so the worker-side adoption path is
    shared code.
``generic`` control messages (RFW1 kind ``generic``)
    Discriminated by an integer ``serve.op`` segment: ``HELLO`` (worker
    -> server, announces readiness and how many connect attempts it
    took), ``TASK`` (server -> worker: round / client / sequence plus
    the dense ``model`` segment — the per-client downlink), and
    ``SHUTDOWN`` (server -> worker).
``update`` (RFW1 kind ``update``)
    Worker -> server: one packed :class:`~repro.fl.parallel.ClientUpdate`
    (:func:`repro.fl.wire.pack_client_update`).
``generic`` pickled update (``serve.op == UPDATE_PICKLE``)
    The fallback when an update carries a payload the wire format
    cannot express, mirroring the process pool's pickle fallback.  The
    blob is a pickle produced by our own forked worker — the serve
    sockets are a private transport between processes of one run, not
    an untrusted network surface (see ``docs/serving.md``).

Address specs (``serve_addr``) parse here too, so the config layer can
reject a bad address at construction time without importing sockets.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.exceptions import ConfigError, WireError
from repro.fl import wire

OP_HELLO = 1
OP_TASK = 2
OP_SHUTDOWN = 3
OP_UPDATE_PICKLE = 4


def parse_serve_addr(spec) -> tuple[str, object]:
    """Parse a serve address spec into ``(kind, address)``.

    Grammar: ``'tcp:HOST:PORT'`` (PORT 0 lets the OS pick an ephemeral
    port; the bound port is logged and irrelevant to workers, which the
    server hands the resolved address) or ``'uds:/path/to.sock'``.
    """
    text = str(spec)
    kind, _, rest = text.partition(":")
    if kind == "tcp":
        host, sep, port_text = rest.rpartition(":")
        if not sep or not host:
            raise ConfigError(
                f"serve_addr 'tcp' needs HOST:PORT ('tcp:127.0.0.1:0'), got {spec!r}"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise ConfigError(
                f"serve_addr port must be an integer, got {spec!r}"
            ) from None
        if not 0 <= port <= 65535:
            raise ConfigError(f"serve_addr port must be in [0, 65535], got {port}")
        return "tcp", (host, port)
    if kind == "uds":
        if not rest:
            raise ConfigError(
                f"serve_addr 'uds' needs a socket path ('uds:/tmp/fl.sock'), got {spec!r}"
            )
        return "uds", rest
    raise ConfigError(
        f"serve_addr must be 'tcp:HOST:PORT' or 'uds:/path/to.sock', got {spec!r}"
    )


# -- frame builders (each returns ready-to-send length-prefixed bytes) --------------


def build_hello(worker_id: int, attempts: int) -> bytes:
    return wire.frame(
        wire.pack(
            "generic",
            {"serve.op": OP_HELLO, "serve.worker": worker_id, "serve.attempts": attempts},
        )
    )


def build_state(state: dict, seq: int) -> bytes:
    """The round-state broadcast; raises :class:`WireError` when the
    algorithm's state cannot ride the packed format (the server then
    degrades — there is no pickled state transport over sockets)."""
    return wire.frame(wire.pack_state({**state, "serve.seq": seq}))


def build_task(
    round_idx: int, position: int, client_id: int, seq: int, model: np.ndarray
) -> bytes:
    return wire.frame(
        wire.pack(
            "generic",
            {
                "serve.op": OP_TASK,
                "serve.round": round_idx,
                "serve.position": position,
                "serve.client": client_id,
                "serve.seq": seq,
                "model": model,
            },
        )
    )


def build_shutdown() -> bytes:
    return wire.frame(wire.pack("generic", {"serve.op": OP_SHUTDOWN}))


def build_update(update) -> bytes:
    """Pack one finished client update (wire format, pickle fallback)."""
    try:
        return wire.frame(wire.pack_client_update(update))
    except WireError:
        blob = np.frombuffer(pickle.dumps(update), dtype=np.uint8)
        return wire.frame(
            wire.pack("generic", {"serve.op": OP_UPDATE_PICKLE, "blob": blob})
        )


def parse_message(message: bytes):
    """Decode one de-framed message into ``(kind, payload)``.

    Kinds: ``('state', segments)``, ``('hello', segments)``,
    ``('task', segments)``, ``('shutdown', None)``, or
    ``('update', ClientUpdate)``.  Unknown shapes raise
    :class:`WireError` — the connection is then treated as broken.
    """
    kind, segments = wire.unpack(message)
    if kind == "state":
        return "state", segments
    if kind == "update":
        return "update", wire.unpack_client_update(message)
    op = segments.get("serve.op")
    if op == OP_HELLO:
        return "hello", segments
    if op == OP_TASK:
        return "task", segments
    if op == OP_SHUTDOWN:
        return "shutdown", None
    if op == OP_UPDATE_PICKLE:
        return "update", pickle.loads(segments["blob"].tobytes())
    raise WireError(f"unknown serve message (kind={kind!r}, serve.op={op!r})")


def update_model_bytes(update) -> int:
    """The bytes an update's model payload occupied on the wire — the
    dense ``params`` segment or the sum of its compressed streams.
    This is the socket-side quantity the ledger reconciliation compares
    against :meth:`WireSize.nbytes` charges."""
    if update.params is not None:
        return int(update.params.nbytes)
    if update.params_streams:
        return int(sum(v.nbytes for v in update.params_streams.values()))
    return 0
