"""Multi-process federated serving over real sockets.

RFW1 (:mod:`repro.fl.wire`) started life as a memory format; this
subsystem promotes it to a network protocol.  A federated round runs as
a **server process** — the ordinary synchronous trainer loop with a
:class:`~repro.serve.server.ServeExecutor` plugged in as the client
execution engine — plus N **client worker processes** connected over
TCP or Unix-domain sockets, every exchange a length-prefixed RFW1 frame
(:func:`repro.fl.wire.frame`).

The executor contract keeps the house invariant for free: the server
commits updates in selection order regardless of arrival order, so a
serve-mode run is bit-identical to the in-process serial engine — for
all algorithms, under compression pipelines, and across a mid-round
server kill + checkpoint resume (the sync loop's between-rounds
checkpoints are the recovery points; workers are stateless between
rounds because every round's state is re-broadcast).

Select with ``FLConfig(execution="serve")`` (knobs: ``serve_addr``,
``serve_timeout``, ``serve_retries``, ``serve_backoff``,
``serve_max_inflight``, ``serve_queue_bytes``) or the CLI's
``--execution serve --serve-addr tcp:127.0.0.1:0``.  See
``docs/serving.md`` for the frame layout, retry/backoff/timeout
semantics, backpressure and the crash-recovery story.
"""

from repro.serve.protocol import parse_serve_addr
from repro.serve.server import ServeError, ServeExecutor
from repro.serve.worker import worker_main

__all__ = [
    "ServeError",
    "ServeExecutor",
    "parse_serve_addr",
    "worker_main",
]
