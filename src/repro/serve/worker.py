"""The client worker process of the serving subsystem.

A worker is forked by :class:`~repro.serve.server.ServeExecutor` (so the
algorithm — model workspace, federated dataset, config — arrives as
inherited memory, exactly like the process-pool engines), connects back
to the server socket with retry + exponential backoff, and then loops:

* ``state`` frame -> adopt the round state via the same
  ``_install_worker_state`` path the shared-memory pool uses.
* ``task`` frame  -> point ``global_params`` at the frame's ``model``
  segment (the per-client downlink), run ``_client_update``, send the
  packed update back.
* ``shutdown`` frame or EOF -> exit.

Retry semantics: connects retry ``serve_retries`` times with doubling
backoff; reads block with a ``serve_timeout`` socket timeout and an
idle timeout simply loops (a worker waiting between rounds is normal) —
unless the parent died, in which case the worker exits instead of
lingering as an orphan; writes track their position and retry timed-out
sends with the same backoff, so a retry never duplicates bytes.
"""

from __future__ import annotations

import os
import socket
import time

from repro.fl import wire
from repro.obs.trace import NULL_TRACER
from repro.serve import protocol

RECV_CHUNK = 1 << 16


def connect_with_retry(
    resolved: tuple[str, object], retries: int, backoff: float, timeout: float
) -> tuple[socket.socket, int]:
    """Connect to the server, retrying with exponential backoff.

    Returns ``(socket, attempts_used)``; raises :class:`OSError` after
    the last attempt fails.
    """
    kind, addr = resolved
    delay = backoff
    last: OSError | None = None
    for attempt in range(1, retries + 1):
        try:
            if kind == "tcp":
                sock = socket.create_connection(addr, timeout=timeout)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            else:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(timeout)
                sock.connect(addr)
            return sock, attempt
        except OSError as exc:
            last = exc
            if attempt < retries:
                time.sleep(delay)
                delay *= 2
    raise OSError(f"could not connect to {addr!r} after {retries} attempts: {last}")


def send_with_retry(
    sock: socket.socket, payload: bytes, retries: int, backoff: float
) -> None:
    """Send all of ``payload``, retrying timed-out writes with backoff.

    Tracks the write position explicitly so a retry resumes where the
    stalled send left off — ``sendall`` after a timeout would not know
    how much already went out.
    """
    view = memoryview(payload)
    delay = backoff
    stalls = 0
    while view.nbytes:
        try:
            sent = sock.send(view)
        except socket.timeout:
            stalls += 1
            if stalls >= retries:
                raise OSError(f"send stalled {stalls} times; giving up") from None
            time.sleep(delay)
            delay = min(delay * 2, 1.0)
            continue
        stalls = 0
        view = view[sent:]


def worker_main(
    algorithm,
    resolved: tuple[str, object],
    worker_id: int,
    timeout: float,
    retries: int,
    backoff: float,
    inherited: tuple = (),
) -> None:
    """Run one worker's serve loop (the forked child's entry point)."""
    # Sockets inherited from the parent (the listener, other workers'
    # accepted connections) must close here: a lingering duplicate fd
    # would keep a peer's connection half-open after its real owner
    # exits, defeating EOF-based death detection.
    for sock in inherited:
        try:
            sock.close()
        except OSError:
            pass
    # Children never report spans directly; timings ride back inside
    # the update frames and the server re-emits them.
    algorithm.tracer = NULL_TRACER
    parent_pid = os.getppid()
    try:
        sock, attempts = connect_with_retry(resolved, retries, backoff, timeout)
    except OSError:
        return
    state_seq = -1
    with sock:
        sock.settimeout(timeout)
        try:
            send_with_retry(sock, protocol.build_hello(worker_id, attempts), retries, backoff)
            assembler = wire.FrameAssembler()
            while True:
                try:
                    data = sock.recv(RECV_CHUNK)
                except socket.timeout:
                    # Idle between rounds is normal — but if the server
                    # process died (SIGKILL leaves sibling fd duplicates
                    # holding our connection open), exit rather than
                    # wait on a socket nobody owns.
                    if os.getppid() != parent_pid:
                        return
                    continue
                if not data:
                    return
                for message in assembler.feed(data):
                    kind, payload = protocol.parse_message(message)
                    if kind == "state":
                        algorithm._install_worker_state(payload)
                        state_seq = int(payload.get("serve.seq", -1))
                    elif kind == "task":
                        if int(payload["serve.seq"]) != state_seq:
                            # A task for a round whose state this
                            # connection never saw: per-connection TCP
                            # ordering makes this a protocol bug, not a
                            # race.  Exit; the server redispatches.
                            return
                        algorithm.global_params = payload["model"]
                        update = algorithm._client_update(
                            int(payload["serve.round"]), int(payload["serve.client"])
                        )
                        update.worker = os.getpid()
                        send_with_retry(
                            sock, protocol.build_update(update), retries, backoff
                        )
                    elif kind == "shutdown":
                        return
        except (OSError, wire.WireError):
            return
