"""The serving server: a selector-loop client-execution engine.

:class:`ServeExecutor` is a :class:`~repro.fl.parallel.ClientExecutor`,
so the ordinary synchronous trainer loop *is* the federated server —
selection, commit order, aggregation, checkpointing and crash-resume
all come from the existing round decomposition; this engine only
changes where the per-client work runs: in N forked worker processes
reached over real TCP / Unix-domain sockets speaking length-prefixed
RFW1 frames.

One round, from the server's seat:

1. Pack the algorithm's round state once and queue it to every live
   connection (sequence-numbered, like the shared-memory pool's
   broadcast).
2. Drive a non-blocking :mod:`selectors` loop: accept late workers,
   flush bounded per-connection write queues, reassemble frames from
   partial reads, dispatch ``task`` frames (least-loaded connection
   first, capped by ``serve_max_inflight``), and slot arriving updates
   by client id.
3. A dead connection's unfinished tasks are redispatched to surviving
   workers (the determinism contract makes any duplicate identical);
   when every worker is gone, or nothing makes progress for
   ``serve_timeout`` seconds, the engine degrades to in-process serial
   execution with a :class:`RuntimeWarning` — same fault story as the
   process pool.
4. After the round, socket-level model-payload bytes are reconciled
   against what the :class:`~repro.fl.comm.CommLedger` charges (see
   :meth:`ServeExecutor._reconcile`) so BENCH_comm numbers stay honest
   on a real wire.

Per-request latency lands in the ``serve.request_latency_sec`` quantile
metric (p50/p95/p99 in ``summary.json``), traffic and connection
counters under ``serve.*``.
"""

from __future__ import annotations

import multiprocessing
import os
import selectors
import socket
import tempfile
import time
import warnings
import weakref
from collections import deque

from repro.exceptions import ProtocolError
from repro.fl.parallel import ClientExecutor, SerialExecutor
from repro.fl.wire import FrameAssembler
from repro.serve import protocol

RECV_CHUNK = 1 << 16
POLL_SEC = 0.05


class ServeError(RuntimeError):
    """A serving-loop failure (worker loss, stall) that triggers the
    degrade-to-serial fallback rather than killing the run."""


class _Conn:
    """Per-connection server-side state."""

    __slots__ = ("sock", "assembler", "outq", "out_bytes", "ready", "inflight", "seq")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.assembler = FrameAssembler()
        self.outq: deque[memoryview] = deque()
        self.out_bytes = 0
        self.ready = False  # becomes True on the worker's hello
        self.inflight: dict[int, int] = {}  # position -> client_id
        self.seq = -1


class _RoundStats:
    """Socket-side accounting for one served round."""

    __slots__ = (
        "sent_bytes", "recv_bytes", "down_model_bytes", "up_model_bytes",
        "redispatch_bytes", "redispatches", "disconnects", "duplicates",
        "connects", "worker_retries", "latencies",
    )

    def __init__(self) -> None:
        self.sent_bytes = 0
        self.recv_bytes = 0
        self.down_model_bytes = 0
        self.up_model_bytes = 0
        self.redispatch_bytes = 0
        self.redispatches = 0
        self.disconnects = 0
        self.duplicates = 0
        self.connects = 0
        self.worker_retries = 0
        self.latencies: list[float] = []


class ServeExecutor(ClientExecutor):
    """Run selected clients in socket-connected worker processes.

    Args:
        num_workers: worker processes to fork.
        addr: ``serve_addr`` spec (``'tcp:HOST:PORT'`` / ``'uds:PATH'``)
            or ``None`` for an ephemeral Unix-domain socket.
        timeout: stall deadline (seconds), reset on any socket progress.
        retries / backoff: worker-side connect/write retry policy.
        max_inflight: dispatched-but-unfinished client cap
            (``None`` = ``2 * num_workers``).
        queue_bytes: per-connection outbound queue bound; a connection
            at or over it receives no new task until it drains (one
            frame may always be queued so progress never deadlocks).
    """

    name = "serve"

    def __init__(
        self,
        num_workers: int,
        addr: str | None = None,
        timeout: float = 30.0,
        retries: int = 5,
        backoff: float = 0.05,
        max_inflight: int | None = None,
        queue_bytes: int = 8 << 20,
    ) -> None:
        self.num_workers = max(1, int(num_workers))
        self.addr_spec = addr
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_inflight = (
            2 * self.num_workers if max_inflight is None else int(max_inflight)
        )
        self.queue_bytes = int(queue_bytes)
        self._fallback: SerialExecutor | None = None
        self._listener: socket.socket | None = None
        self._selector: selectors.BaseSelector | None = None
        self._resolved: tuple[str, object] | None = None
        self._uds_dir: str | None = None
        self._conns: dict[int, _Conn] = {}
        self._procs: list = []
        self._bound = None  # weakref to the algorithm forked into workers
        self._seq = 0
        self._next_worker_id = 0

    @classmethod
    def from_config(cls, config) -> "ServeExecutor":
        return cls(
            num_workers=int(getattr(config, "num_workers", 1)),
            addr=getattr(config, "serve_addr", None),
            timeout=float(getattr(config, "serve_timeout", 30.0)),
            retries=int(getattr(config, "serve_retries", 5)),
            backoff=float(getattr(config, "serve_backoff", 0.05)),
            max_inflight=getattr(config, "serve_max_inflight", None),
            queue_bytes=int(getattr(config, "serve_queue_bytes", 8 << 20)),
        )

    # -- degradation ---------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True once the engine has fallen back to in-process execution."""
        return self._fallback is not None

    def _degrade(self, reason: str) -> SerialExecutor:
        self._shutdown_serving()
        warnings.warn(
            f"socket client serving disabled ({reason}); "
            "continuing with in-process serial execution",
            RuntimeWarning,
            stacklevel=3,
        )
        self._fallback = SerialExecutor()
        return self._fallback

    # -- lifecycle -----------------------------------------------------------------
    def _open_listener(self) -> None:
        if self.addr_spec is None:
            self._uds_dir = tempfile.mkdtemp(prefix="repro-serve-")
            kind, addr = "uds", os.path.join(self._uds_dir, "serve.sock")
        else:
            kind, addr = protocol.parse_serve_addr(self.addr_spec)
        if kind == "tcp":
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(addr)
            self._resolved = ("tcp", sock.getsockname()[:2])
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            if os.path.exists(addr):
                os.unlink(addr)
            sock.bind(addr)
            self._resolved = ("uds", addr)
        sock.listen(self.num_workers + 8)
        sock.setblocking(False)
        self._listener = sock
        self._selector = selectors.DefaultSelector()
        self._selector.register(sock, selectors.EVENT_READ, None)

    def _ensure_serving(self, algorithm) -> None:
        """Bind the listener and fork workers (or re-fork on rebinds)."""
        bound = self._bound() if self._bound is not None else None
        if self._listener is not None and bound is not algorithm:
            self._shutdown_serving()
        if self._listener is None:
            self._open_listener()
            self._bound = weakref.ref(algorithm)
        self._procs = [p for p in self._procs if p.is_alive()]
        missing = self.num_workers - len(self._procs)
        if missing <= 0:
            return
        from repro.serve.worker import worker_main

        context = multiprocessing.get_context("fork")
        # Children close every fd inherited from this process (the
        # listener plus any already-accepted connections) so a worker's
        # death always reads as EOF to the server and vice versa.
        inherited = (self._listener, *[c.sock for c in self._conns.values()])
        for _ in range(missing):
            self._next_worker_id += 1
            proc = context.Process(
                target=worker_main,
                args=(
                    algorithm, self._resolved, self._next_worker_id,
                    self.timeout, self.retries, self.backoff, inherited,
                ),
                daemon=True,
                name=f"repro-serve-worker-{self._next_worker_id}",
            )
            proc.start()
            self._procs.append(proc)

    def _shutdown_serving(self) -> None:
        for conn in list(self._conns.values()):
            try:
                conn.sock.setblocking(True)
                conn.sock.settimeout(1.0)
                # Drain any half-sent frame first; a shutdown frame
                # spliced mid-frame would tear the worker's stream.
                while conn.outq:
                    conn.sock.sendall(conn.outq.popleft())
                conn.sock.sendall(protocol.build_shutdown())
            except OSError:
                pass
            self._close_conn(conn)
        if self._listener is not None:
            if self._selector is not None:
                try:
                    self._selector.unregister(self._listener)
                except (KeyError, ValueError):
                    pass
            self._listener.close()
            self._listener = None
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = []
        if self._uds_dir is not None:
            try:
                sock_path = os.path.join(self._uds_dir, "serve.sock")
                if os.path.exists(sock_path):
                    os.unlink(sock_path)
                os.rmdir(self._uds_dir)
            except OSError:
                pass
            self._uds_dir = None
        self._resolved = None
        self._bound = None

    def close(self) -> None:
        self._shutdown_serving()

    # -- connection plumbing ---------------------------------------------------------
    def _close_conn(self, conn: _Conn) -> None:
        if self._selector is not None:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
        try:
            conn.sock.close()
        except OSError:
            pass
        self._conns.pop(conn.sock.fileno(), None)
        # fileno() is -1 after close; sweep by identity as the fallback.
        for fd, existing in list(self._conns.items()):
            if existing is conn:
                del self._conns[fd]

    def _accept(self, stats: _RoundStats, state_frame: bytes | None, seq: int) -> None:
        assert self._listener is not None and self._selector is not None
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            if sock.family == socket.AF_INET:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Conn(sock)
            self._conns[sock.fileno()] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)
            stats.connects += 1
            if state_frame is not None:
                self._queue(conn, state_frame, stats)
                conn.seq = seq

    def _queue(self, conn: _Conn, payload: bytes, stats: _RoundStats) -> None:
        conn.outq.append(memoryview(payload))
        conn.out_bytes += len(payload)
        self._flush(conn, stats)
        self._update_events(conn)

    def _flush(self, conn: _Conn, stats: _RoundStats) -> bool:
        """Write queued bytes; returns True when the connection broke."""
        try:
            while conn.outq:
                head = conn.outq[0]
                sent = conn.sock.send(head)
                stats.sent_bytes += sent
                conn.out_bytes -= sent
                if sent < head.nbytes:
                    conn.outq[0] = head[sent:]
                    break
                conn.outq.popleft()
        except BlockingIOError:
            pass
        except OSError:
            return True
        return False

    def _update_events(self, conn: _Conn) -> None:
        if self._selector is None:
            return
        events = selectors.EVENT_READ
        if conn.outq:
            events |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, events, conn)
        except (KeyError, ValueError, OSError):
            pass

    def _read(self, conn: _Conn, stats: _RoundStats) -> tuple[bool, list[bytes]]:
        """Drain readable bytes; returns ``(closed, complete_frames)``."""
        closed = False
        frames: list[bytes] = []
        try:
            while True:
                data = conn.sock.recv(RECV_CHUNK)
                if not data:
                    closed = True
                    break
                stats.recv_bytes += len(data)
                frames.extend(conn.assembler.feed(data))
                if len(data) < RECV_CHUNK:
                    break
        except BlockingIOError:
            pass
        except OSError:
            closed = True
        return closed, frames

    def _has_capacity(self, conn: _Conn) -> bool:
        return not conn.outq or conn.out_bytes < self.queue_bytes

    def _pick_conn(self) -> _Conn | None:
        """Least-loaded ready connection with outbound queue capacity."""
        best: _Conn | None = None
        for conn in self._conns.values():
            if not conn.ready or not self._has_capacity(conn):
                continue
            if best is None or len(conn.inflight) < len(best.inflight):
                best = conn
        return best

    # -- the round -------------------------------------------------------------------
    def _serve_round(self, algorithm, round_idx: int, ids: list[int]):
        self._ensure_serving(algorithm)
        assert self._selector is not None
        stats = _RoundStats()
        self._seq += 1
        seq = self._seq
        # WireError here (inexpressible round state) propagates to
        # run(), which degrades — there is no pickled state transport
        # over sockets.
        state_frame = protocol.build_state(algorithm._worker_state(), seq)
        for conn in list(self._conns.values()):
            if self._flush(conn, stats):  # broke while draining old bytes
                self._drop_conn(conn, None, stats)
                continue
            self._queue(conn, state_frame, stats)
            conn.seq = seq

        results: list = [None] * len(ids)
        pending: deque[tuple[int, int]] = deque(enumerate(ids))
        unfilled: dict[int, deque[int]] = {}
        for pos, cid in enumerate(ids):
            unfilled.setdefault(cid, deque()).append(pos)
        dispatch_time: dict[int, float] = {}
        ever_dispatched: set[int] = set()
        done = 0
        deadline = time.monotonic() + self.timeout

        model = algorithm.global_params
        assert model is not None
        model_nbytes = int(model.nbytes)

        while done < len(ids):
            # Dispatch as much as backpressure allows.
            inflight_total = sum(len(c.inflight) for c in self._conns.values())
            while pending and inflight_total < self.max_inflight:
                conn = self._pick_conn()
                if conn is None:
                    break
                pos, cid = pending.popleft()
                task = protocol.build_task(round_idx, pos, cid, seq, model)
                if pos in ever_dispatched:
                    stats.redispatch_bytes += model_nbytes
                    stats.redispatches += 1
                else:
                    ever_dispatched.add(pos)
                    stats.down_model_bytes += model_nbytes
                self._queue(conn, task, stats)
                conn.inflight[pos] = cid
                dispatch_time[pos] = time.monotonic()
                inflight_total += 1
                deadline = time.monotonic() + self.timeout

            if not self._conns and not any(p.is_alive() for p in self._procs):
                raise ServeError("every serve worker process exited")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(
                    f"no progress for {self.timeout:.1f}s with "
                    f"{len(ids) - done} clients outstanding"
                )
            for key, mask in self._selector.select(min(POLL_SEC, remaining)):
                if key.data is None:
                    self._accept(stats, state_frame, seq)
                    deadline = time.monotonic() + self.timeout
                    continue
                conn = key.data
                if mask & selectors.EVENT_WRITE:
                    if self._flush(conn, stats):
                        self._drop_conn(conn, pending, stats)
                        continue
                    self._update_events(conn)
                if not (mask & selectors.EVENT_READ):
                    continue
                closed, frames = self._read(conn, stats)
                for message in frames:
                    deadline = time.monotonic() + self.timeout
                    msg_kind, payload = protocol.parse_message(message)
                    if msg_kind == "hello":
                        conn.ready = True
                        stats.worker_retries += max(
                            0, int(payload.get("serve.attempts", 1)) - 1
                        )
                    elif msg_kind == "update":
                        update = payload
                        queue = unfilled.get(int(update.client_id))
                        if not queue:
                            stats.duplicates += 1
                            continue
                        pos = queue.popleft()
                        results[pos] = update
                        for owner in self._conns.values():
                            owner.inflight.pop(pos, None)
                        done += 1
                        stats.up_model_bytes += protocol.update_model_bytes(update)
                        started = dispatch_time.get(pos)
                        if started is not None:
                            stats.latencies.append(time.monotonic() - started)
                    else:
                        raise ServeError(
                            f"unexpected {msg_kind!r} message from a worker"
                        )
                if closed:
                    self._drop_conn(conn, pending, stats)
        return results, stats

    def _drop_conn(
        self, conn: _Conn, pending: deque | None, stats: _RoundStats
    ) -> None:
        """Close a broken connection, requeueing its unfinished tasks."""
        stats.disconnects += 1
        if pending is not None:
            for pos, cid in sorted(conn.inflight.items(), reverse=True):
                pending.appendleft((pos, cid))
        conn.inflight.clear()
        self._close_conn(conn)

    # -- execution -------------------------------------------------------------------
    def run(self, algorithm, round_idx: int, client_ids: list[int]):
        if self._fallback is not None:
            return self._fallback.run(algorithm, round_idx, client_ids)
        if not len(client_ids):
            return []
        if "fork" not in multiprocessing.get_all_start_methods():
            return self._degrade("the 'fork' start method is unavailable").run(
                algorithm, round_idx, client_ids
            )
        if not (
            getattr(algorithm, "wire_transport_safe", False)
            and hasattr(algorithm, "_worker_state")
        ):
            return self._degrade(
                f"algorithm {algorithm.name!r} cannot enumerate worker state "
                "for the socket transport"
            ).run(algorithm, round_idx, client_ids)
        started = time.perf_counter()
        try:
            updates, stats = self._serve_round(
                algorithm, round_idx, [int(c) for c in client_ids]
            )
        except Exception as exc:  # worker loss, stall, socket or wire failure
            return self._degrade(f"socket serving failed: {exc!r}").run(
                algorithm, round_idx, client_ids
            )
        elapsed = time.perf_counter() - started
        self._record_metrics(algorithm, updates, stats, elapsed)
        # Reconciliation runs OUTSIDE the degrade path: a byte-accounting
        # mismatch is a correctness signal that must surface, not a
        # transient fault to paper over with a serial rerun.
        self._reconcile(algorithm, updates, stats, len(client_ids))
        return updates

    # -- observability & reconciliation ------------------------------------------------
    def _record_metrics(self, algorithm, updates, stats: _RoundStats, elapsed: float) -> None:
        tracer = algorithm.tracer
        if not tracer.enabled:
            return
        for update in updates:
            with tracer.span(
                "local_train", client=update.client_id, worker=update.worker
            ) as span:
                pass
            span.duration = update.train_seconds
        metrics = tracer.metrics
        metrics.gauge("serve.workers").set(sum(1 for p in self._procs if p.is_alive()))
        metrics.gauge("serve.connections").set(len(self._conns))
        metrics.counter("serve.rounds").inc()
        metrics.counter("serve.bytes_sent").inc(stats.sent_bytes)
        metrics.counter("serve.bytes_received").inc(stats.recv_bytes)
        if stats.connects:
            metrics.counter("serve.connects").inc(stats.connects)
        if stats.disconnects:
            metrics.counter("serve.disconnects").inc(stats.disconnects)
        if stats.redispatches:
            metrics.counter("serve.redispatches").inc(stats.redispatches)
        if stats.duplicates:
            metrics.counter("serve.duplicate_updates").inc(stats.duplicates)
        if stats.worker_retries:
            metrics.counter("serve.connect_retries").inc(stats.worker_retries)
        request_latency = metrics.quantile("serve.request_latency_sec")
        for latency in stats.latencies:
            request_latency.observe(latency)
        metrics.quantile("serve.round_latency_sec").observe(elapsed)
        if elapsed > 0 and updates:
            busy = sum(u.train_seconds for u in updates)
            metrics.gauge("serve.speedup").set(busy / elapsed)

    def _reconcile(self, algorithm, updates, stats: _RoundStats, num_clients: int) -> None:
        """Check socket-level model bytes against the ledger's charges.

        The ``model`` ledger kind is exactly the base formula for every
        algorithm, both directions: ``down = model_size * cohort *
        dtype_bytes`` and ``up = sum(wire_size.nbytes(dtype_bytes))``.
        The socket side measured the dense ``model`` segment of each
        first-dispatch task and each update's model payload (params or
        compressed streams), so the two agree *exactly* whenever the
        arrays on the wire are priced at their true width — no
        compressor and no ``wire_dtype_bytes`` override — and the check
        is a hard :class:`ProtocolError` there.  Coder stages ship
        decoded float64 carriers while the ledger charges bit-packed
        words, and a ``wire_dtype_bytes`` override deliberately prices a
        different width, so those runs record the drift in counters
        instead (``serve.reconcile_mismatches``).  Redispatched tasks
        are not ledger-charged and are counted separately
        (``serve.redispatch_bytes``).
        """
        ledger = algorithm.ledger
        if ledger is None:
            return
        dtype_bytes = int(ledger.dtype_bytes)
        expected_down = int(algorithm.model_size) * num_clients * dtype_bytes
        if updates and all(u.wire_size is not None for u in updates):
            expected_up = int(
                sum(u.wire_size.nbytes(dtype_bytes) for u in updates)
            )
        else:
            expected_up = sum(int(u.wire) for u in updates) * dtype_bytes
        metrics = algorithm.tracer.metrics
        metrics.counter("serve.bytes_ledger_down").inc(expected_down)
        metrics.counter("serve.bytes_ledger_up").inc(expected_up)
        metrics.counter("serve.bytes_wire_down").inc(stats.down_model_bytes)
        metrics.counter("serve.bytes_wire_up").inc(stats.up_model_bytes)
        if stats.redispatch_bytes:
            metrics.counter("serve.redispatch_bytes").inc(stats.redispatch_bytes)
        matched = (
            expected_down == stats.down_model_bytes
            and expected_up == stats.up_model_bytes
        )
        if matched:
            return
        strict = (
            algorithm.compressor is None
            and algorithm.global_params is not None
            and dtype_bytes == int(algorithm.global_params.dtype.itemsize)
        )
        if strict:
            raise ProtocolError(
                "serve-mode byte accounting drifted from the ledger: "
                f"down wire={stats.down_model_bytes} vs ledger={expected_down}, "
                f"up wire={stats.up_model_bytes} vs ledger={expected_up} "
                f"({num_clients} clients, model_size={algorithm.model_size}, "
                f"dtype_bytes={dtype_bytes})"
            )
        metrics.counter("serve.reconcile_mismatches").inc()
