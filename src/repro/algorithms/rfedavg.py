"""rFedAvg — Algorithm 1 of the paper.

Each round the server broadcasts the global model *and the full table of
per-client deltas* from the previous round; each client runs E local
SGD steps on ``f_k + lambda * r'_k`` where the regularizer measures the
squared MMD between the client's *current* batch embedding and every
other client's *delayed* delta.  After local training the client
recomputes its own delta **with its final local model** (the per-client
inconsistency the Remarks in Sec. IV-B call out, and the reason
Theorem 2's constant C3 exceeds Theorem 1's C2) and uploads it with the
model.

Communication per round: the table broadcast costs O(d * N) per client,
O(d * N^2) total — the overhead rFedAvg+ removes.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.regularized import RegularizedAlgorithm
from repro.core.privacy import GaussianDeltaMechanism
from repro.core.regularizer import DistributionRegularizer
from repro.fl.comm import CommLedger
from repro.fl.parallel import ClientUpdate


class RFedAvg(RegularizedAlgorithm):
    """Distribution-regularized FedAvg with delayed per-client mappings."""

    name = "rfedavg"

    def __init__(
        self,
        lam: float = 1e-4,
        privacy: GaussianDeltaMechanism | None = None,
        delta_cache: bool | int = True,
    ) -> None:
        super().__init__(
            lam,
            mode=DistributionRegularizer.PAIRWISE,
            privacy=privacy,
            delta_cache=delta_cache,
        )

    def _reg_hook(self, round_idx: int, client_id: int):
        assert self.delta_table is not None
        table = self.delta_table
        if not table.any_reported:
            # Round 0: the delta table still holds the zero placeholder;
            # regularizing toward it would be meaningless, so skip.
            return None
        others = self._others_rows(client_id)
        if others is None:
            return None
        regularizer = self.regularizer

        def hook(features: np.ndarray):
            result = regularizer.evaluate(features, others)
            return result.loss, result.feature_grad

        return self._traced_reg_hook(hook)

    def _others_rows(self, client_id: int) -> np.ndarray | None:
        """Reported delta rows of every client except ``client_id``.

        Goes through :meth:`DeltaTable.reported_rows_except` so the
        dense and sharded layouts serve the identical (R, d) array —
        the sharded table never materializes the (N, d) table here.
        """
        assert self.delta_table is not None
        return self.delta_table.reported_rows_except(client_id)

    def _charge_broadcast(self, selected: np.ndarray) -> None:
        # Downlink: model + the full (N, d) delta table per client.
        super()._charge_broadcast(selected)
        assert (
            self.ledger is not None
            and self.delta_table is not None
            and self.fed is not None
        )
        if self.delta_table.any_reported:
            self.ledger.charge(
                CommLedger.DOWN,
                "delta",
                self.fed.num_clients * self.model.feature_dim,
                copies=len(selected),
            )

    def _client_payload(
        self, round_idx: int, client_id: int, params: np.ndarray
    ) -> dict:
        # Delta computed with the client's final *local* model — the
        # inconsistent mapping that motivates rFedAvg+ (the workspace
        # model still holds the local parameters here).
        return {"delta": self._client_delta(round_idx, client_id)}

    def _charge_uploads(self, selected: np.ndarray, updates: list[ClientUpdate]) -> None:
        # Uplink: model + own delta per client.
        super()._charge_uploads(selected, updates)
        assert self.ledger is not None
        self.ledger.charge(
            CommLedger.UP, "delta", self.model.feature_dim, copies=len(updates)
        )

    def _commit_client(self, round_idx: int, update: ClientUpdate) -> None:
        super()._commit_client(round_idx, update)
        assert self.delta_table is not None
        self.delta_table.update(update.client_id, update.payload["delta"])
