"""rFedAvg — Algorithm 1 of the paper.

Each round the server broadcasts the global model *and the full table of
per-client deltas* from the previous round; each client runs E local
SGD steps on ``f_k + lambda * r'_k`` where the regularizer measures the
squared MMD between the client's *current* batch embedding and every
other client's *delayed* delta.  After local training the client
recomputes its own delta **with its final local model** (the per-client
inconsistency the Remarks in Sec. IV-B call out, and the reason
Theorem 2's constant C3 exceeds Theorem 1's C2) and uploads it with the
model.

Communication per round: the table broadcast costs O(d * N) per client,
O(d * N^2) total — the overhead rFedAvg+ removes.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import RoundStats
from repro.algorithms.regularized import RegularizedAlgorithm
from repro.core.privacy import GaussianDeltaMechanism
from repro.core.regularizer import DistributionRegularizer
from repro.fl.comm import CommLedger


class RFedAvg(RegularizedAlgorithm):
    """Distribution-regularized FedAvg with delayed per-client mappings."""

    name = "rfedavg"

    def __init__(
        self, lam: float = 1e-4, privacy: GaussianDeltaMechanism | None = None
    ) -> None:
        super().__init__(lam, mode=DistributionRegularizer.PAIRWISE, privacy=privacy)

    def _reg_hook(self, round_idx: int, client_id: int):
        assert self.delta_table is not None
        table = self.delta_table
        if not table.any_reported:
            # Round 0: the delta table still holds the zero placeholder;
            # regularizing toward it would be meaningless, so skip.
            return None
        others = self._others_rows(client_id)
        if others is None:
            return None
        regularizer = self.regularizer

        def hook(features: np.ndarray):
            result = regularizer.evaluate(features, others)
            return result.loss, result.feature_grad

        return self._traced_reg_hook(hook)

    def _others_rows(self, client_id: int) -> np.ndarray | None:
        """Reported delta rows of every client except ``client_id``."""
        assert self.delta_table is not None
        mask = self.delta_table.reported_mask
        mask[client_id] = False
        if not mask.any():
            return None
        return self.delta_table.full_table()[mask]

    def run_round(self, round_idx: int, selected: np.ndarray) -> RoundStats:
        self._require_setup()
        assert (
            self.fed is not None
            and self.ledger is not None
            and self.delta_table is not None
        )
        tracer = self.tracer
        # Downlink: model + the full (N, d) delta table per client.
        with tracer.span("broadcast"):
            self._charge_broadcast(selected)
            if self.delta_table.any_reported:
                self.ledger.charge(
                    CommLedger.DOWN,
                    "delta",
                    self.fed.num_clients * self.model.feature_dim,
                    copies=len(selected),
                )

        updates: list[np.ndarray] = []
        task_losses: list[float] = []
        reg_losses: list[float] = []
        new_deltas: dict[int, np.ndarray] = {}
        for client_id in selected:
            cid = int(client_id)
            with tracer.span("local_train", client=cid):
                params, result = self._train_one_client(
                    round_idx, cid, reg_hook=self._reg_hook(round_idx, cid)
                )
                # Delta computed with the client's final *local* model — the
                # inconsistent mapping that motivates rFedAvg+ (workspace
                # model still holds the local parameters here).
                new_deltas[cid] = self._client_delta(cid)
            updates.append(params)
            task_losses.append(result.mean_task_loss)
            reg_losses.append(result.mean_reg_loss)

        # Uplink: model + own delta per client.
        self._charge_upload(selected)
        self.ledger.charge(
            CommLedger.UP, "delta", self.model.feature_dim, copies=len(selected)
        )

        with tracer.span("aggregate"):
            self.global_params = self._aggregate(round_idx, selected, updates)
            for cid, delta in new_deltas.items():
                self.delta_table.update(cid, delta)

        weights = self.fed.client_sizes[selected].astype(np.float64)
        weights /= weights.sum()
        return RoundStats(
            train_loss=float(np.dot(weights, task_losses)),
            reg_loss=float(np.dot(weights, reg_losses)),
        )
