"""MOON — Model-Contrastive Federated Learning (Li et al., CVPR 2021).

A leading non-IID baseline from the same literature as the paper's
comparison set.  MOON adds a per-sample contrastive term to the local
objective: the current local model's feature z should be similar to the
*global* model's feature z_glob of the same input and dissimilar to the
*previous local* model's feature z_prev:

    l_con = -log( exp(cos(z, z_glob)/T) /
                  (exp(cos(z, z_glob)/T) + exp(cos(z, z_prev)/T)) )

Only z receives gradient (z_glob and z_prev come from frozen models).
This implementation derives the cosine-similarity gradient by hand and
injects it through the same feature-gradient hook the MMD regularizer
uses, so the entire backward pass remains exact (finite-difference
checked in the tests).

MOON and the paper's rFedAvg+ are philosophically adjacent — both
regularize the *feature space* — but MOON aligns each client to the
global model per-sample while rFedAvg+ aligns client *distributions* to
each other via mean embeddings.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import FederatedAlgorithm
from repro.exceptions import ConfigError
from repro.fl.parallel import ClientUpdate
from repro.models.split import SplitModel
from repro.nn.serialization import get_flat_params, set_flat_params


def _cosine_and_grad(z: np.ndarray, anchor: np.ndarray, eps: float = 1e-12):
    """Row-wise cosine similarity and its gradient with respect to z."""
    z_norm = np.linalg.norm(z, axis=1, keepdims=True) + eps
    a_norm = np.linalg.norm(anchor, axis=1, keepdims=True) + eps
    dot = (z * anchor).sum(axis=1, keepdims=True)
    cos = dot / (z_norm * a_norm)
    grad = anchor / (z_norm * a_norm) - cos * z / (z_norm**2)
    return cos[:, 0], grad


def contrastive_loss_and_grad(
    z: np.ndarray,
    z_global: np.ndarray,
    z_prev: np.ndarray,
    temperature: float,
    mu: float,
) -> tuple[float, np.ndarray]:
    """MOON's l_con (batch mean, weighted by mu) and its z-gradient."""
    cos_g, dcos_g = _cosine_and_grad(z, z_global)
    cos_p, dcos_p = _cosine_and_grad(z, z_prev)
    logits_g = cos_g / temperature
    logits_p = cos_p / temperature
    # Stable two-way softmax.
    m = np.maximum(logits_g, logits_p)
    exp_g = np.exp(logits_g - m)
    exp_p = np.exp(logits_p - m)
    prob_g = exp_g / (exp_g + exp_p)
    loss = float(-np.log(np.maximum(prob_g, 1e-12)).mean()) * mu
    batch = z.shape[0]
    # d loss / d cos = mu/(batch*T) * (prob - onehot); target class is "global".
    coeff = mu / (batch * temperature)
    grad = coeff * (
        (prob_g - 1.0)[:, None] * dcos_g + (1.0 - prob_g)[:, None] * dcos_p
    )
    return loss, grad


class Moon(FederatedAlgorithm):
    """Model-contrastive federated learning.

    Args:
        mu: weight of the contrastive term (the MOON paper uses 1-10).
        temperature: softmax temperature T (MOON default 0.5).
    """

    name = "moon"

    def __init__(self, mu: float = 1.0, temperature: float = 0.5) -> None:
        super().__init__()
        if mu < 0:
            raise ConfigError(f"mu must be non-negative, got {mu}")
        if temperature <= 0:
            raise ConfigError(f"temperature must be positive, got {temperature}")
        self.mu = mu
        self.temperature = temperature
        self._prev_params: np.ndarray | None = None  # per-client previous models
        self._frozen: SplitModel | None = None  # scratch model for z_glob/z_prev

    def setup(self, model, fed, config) -> None:
        super().setup(model, fed, config)
        # Every client starts from the same initial model, so "previous
        # local model" is the initial global model in round 0.
        start = get_flat_params(model)
        self._prev_params = np.tile(start, (fed.num_clients, 1))
        # An independent frozen copy for anchor feature computation; its
        # weights are overwritten before every use.
        import copy

        self._frozen = copy.deepcopy(model)

    def _worker_state(self) -> dict:
        state = super()._worker_state()
        state["prev_params"] = self._prev_params
        return state

    def _install_worker_state(self, state: dict) -> None:
        super()._install_worker_state(state)
        self._prev_params = state["prev_params"]

    def checkpoint_state(self) -> dict:
        state = super().checkpoint_state()
        state["prev_params"] = self._prev_params
        return state

    def restore_checkpoint_state(self, state: dict) -> None:
        super().restore_checkpoint_state(state)
        self._prev_params = np.array(state["prev_params"], copy=True)

    def _anchor_features(self, params: np.ndarray, x: np.ndarray) -> np.ndarray:
        assert self._frozen is not None
        set_flat_params(self._frozen, params)
        self._frozen.eval()
        return self._frozen.features.forward(x)

    def _train_one_client(self, round_idx, client_id, reg_hook=None, grad_hook=None):
        """Override to wire the contrastive hook, which needs the batch
        inputs — captured by wrapping the data sampler is invasive, so
        we instead recompute anchors from the features' cached input via
        a stateful hook bound to this client round."""
        assert (
            self.model is not None
            and self.fed is not None
            and self.config is not None
            and self.global_params is not None
            and self._prev_params is not None
        )
        global_snapshot = np.array(self.global_params, copy=True)
        prev_snapshot = np.array(self._prev_params[client_id], copy=True)

        # local_sgd_steps calls the reg hook with the *features* of the
        # current batch; MOON additionally needs the raw inputs, which we
        # intercept by wrapping the shard's sampler.
        shard = self.fed.clients[client_id]
        current_batch: dict = {}

        class _TappedShard:
            """Proxy that records each sampled batch's inputs."""

            def __len__(self_inner) -> int:
                return len(shard)

            def sample_batch(self_inner, batch_size, rng):
                x, y = shard.sample_batch(batch_size, rng)
                current_batch["x"] = x
                return x, y

        def moon_hook(features: np.ndarray):
            x = current_batch["x"]
            z_global = self._anchor_features(global_snapshot, x)
            z_prev = self._anchor_features(prev_snapshot, x)
            loss, grad = contrastive_loss_and_grad(
                features, z_global, z_prev, self.temperature, self.mu
            )
            return loss, grad

        from repro.fl.client import local_sgd_steps

        self._load_global()
        result = local_sgd_steps(
            self.model,
            _TappedShard(),  # type: ignore[arg-type]
            self.config,
            self.client_rng(round_idx, client_id),
            step_offset=round_idx * self.config.local_steps,
            reg_hook=moon_hook if self.mu > 0 else None,
        )
        return get_flat_params(self.model), result

    def _client_payload(
        self, round_idx: int, client_id: int, params: np.ndarray
    ) -> dict:
        # The next round's "previous local model" is this round's final
        # *local* model (the workspace still holds it; ``params`` may
        # already be fault/compression-transformed).  Stored at commit
        # time so the worker-side unit stays free of shared-state writes.
        return {"prev_params": get_flat_params(self.model)}

    def _commit_client(self, round_idx: int, update: ClientUpdate) -> None:
        super()._commit_client(round_idx, update)
        assert self._prev_params is not None
        self._prev_params[update.client_id] = update.payload["prev_params"]
