"""FedAvg (McMahan et al. 2017) — the vanilla baseline.

The base class already implements the FedAvg round: broadcast the
global model, E local minibatch-SGD steps per selected client,
data-size-weighted parameter averaging.
"""

from __future__ import annotations

from repro.algorithms.base import FederatedAlgorithm


class FedAvg(FederatedAlgorithm):
    """Vanilla Federated Averaging."""

    name = "fedavg"
