"""Federated optimization algorithms.

Baselines: FedAvg, FedProx, SCAFFOLD, q-FedAvg (the paper's comparison
set).  Contributions: rFedAvg (Alg. 1), rFedAvg+ (Alg. 2), plus the
exact-regularizer reference variant used in the ablation.
"""

from repro.algorithms.base import FederatedAlgorithm, RoundStats
from repro.algorithms.fedavg import FedAvg
from repro.algorithms.fedavgm import FedAvgM
from repro.algorithms.fednova import FedNova
from repro.algorithms.fedprox import FedProx
from repro.algorithms.moon import Moon
from repro.algorithms.scaffold import Scaffold
from repro.algorithms.qfedavg import QFedAvg
from repro.algorithms.rfedavg import RFedAvg
from repro.algorithms.rfedavg_plus import RFedAvgPlus
from repro.algorithms.rfedavg_exact import RFedAvgExact
from repro.algorithms.personalized import PersonalizationResult, personalize

ALGORITHMS = {
    "fedavg": FedAvg,
    "fedavgm": FedAvgM,
    "fednova": FedNova,
    "fedprox": FedProx,
    "moon": Moon,
    "scaffold": Scaffold,
    "qfedavg": QFedAvg,
    "rfedavg": RFedAvg,
    "rfedavg+": RFedAvgPlus,
    "rfedavg_exact": RFedAvgExact,
}


def make_algorithm(name: str, **kwargs) -> FederatedAlgorithm:
    """Instantiate an algorithm by registry name."""
    key = name.lower()
    if key not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}")
    return ALGORITHMS[key](**kwargs)


__all__ = [
    "FederatedAlgorithm",
    "RoundStats",
    "FedAvg",
    "FedAvgM",
    "FedNova",
    "FedProx",
    "Moon",
    "Scaffold",
    "QFedAvg",
    "RFedAvg",
    "RFedAvgPlus",
    "RFedAvgExact",
    "PersonalizationResult",
    "personalize",
    "ALGORITHMS",
    "make_algorithm",
]
