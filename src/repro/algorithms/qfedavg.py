"""q-FedAvg (Li et al., ICLR 2020 — "Fair Resource Allocation in FL").

q-FedAvg reweights client updates by their loss raised to the power q,
so high-loss (disadvantaged) clients pull the global model harder.  The
update follows the q-FFL paper: with F_k the client's loss at the round
start, L = 1/eta the Lipschitz estimate, and Delta_k = L * (w - w_k):

    h_k  = q * F_k^(q-1) * ||Delta_k||^2 + L * F_k^q
    w   <- w - sum_k F_k^q * Delta_k / sum_k h_k

q = 0 recovers (an unweighted variant of) FedAvg.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import FederatedAlgorithm
from repro.exceptions import ConfigError
from repro.fl.client import evaluate_model
from repro.fl.comm import CommLedger
from repro.fl.parallel import ClientUpdate

_EPS = 1e-10


class QFedAvg(FederatedAlgorithm):
    """Fairness-weighted federated averaging.

    Args:
        q: fairness exponent (paper: 1.0 on MNIST/CIFAR, 1e-4 on Sent140).
    """

    name = "qfedavg"

    def __init__(self, q: float = 1.0) -> None:
        super().__init__()
        if q < 0:
            raise ConfigError(f"q must be non-negative, got {q}")
        self.q = q

    def _client_update(self, round_idx: int, client_id: int) -> ClientUpdate:
        assert self.model is not None and self.fed is not None and self.config is not None
        # Loss of the *global* model on the client's data (F_k(w^t)),
        # measured before local training starts.
        self._load_global()
        start_loss, _acc = evaluate_model(
            self.model, self.fed.clients[client_id], self.config.eval_batch
        )
        update = super()._client_update(round_idx, client_id)
        update.payload = {"start_loss": max(start_loss, _EPS)}
        return update

    def _charge_uploads(self, selected: np.ndarray, updates: list[ClientUpdate]) -> None:
        super()._charge_uploads(selected, updates)
        assert self.ledger is not None
        # Each client additionally uploads its scalar h_k.
        self.ledger.charge(CommLedger.UP, "scalar", 1, copies=len(updates))

    def _aggregate_updates(
        self, round_idx: int, selected: np.ndarray, updates: list[ClientUpdate]
    ) -> np.ndarray:
        assert self.config is not None and self.global_params is not None
        lipschitz = 1.0 / self.config.lr
        numerators: list[np.ndarray] = []
        denominators: list[float] = []
        for u in updates:
            start_loss = u.payload["start_loss"]
            delta = lipschitz * (self.global_params - u.params)
            f_pow_q = start_loss**self.q
            numerators.append(f_pow_q * delta)
            denominators.append(
                self.q * start_loss ** (self.q - 1.0) * float(delta @ delta)
                + lipschitz * f_pow_q
            )
        total_h = float(np.sum(denominators))
        return self.global_params - np.sum(numerators, axis=0) / max(total_h, _EPS)
