"""q-FedAvg (Li et al., ICLR 2020 — "Fair Resource Allocation in FL").

q-FedAvg reweights client updates by their loss raised to the power q,
so high-loss (disadvantaged) clients pull the global model harder.  The
update follows the q-FFL paper: with F_k the client's loss at the round
start, L = 1/eta the Lipschitz estimate, and Delta_k = L * (w - w_k):

    h_k  = q * F_k^(q-1) * ||Delta_k||^2 + L * F_k^q
    w   <- w - sum_k F_k^q * Delta_k / sum_k h_k

q = 0 recovers (an unweighted variant of) FedAvg.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import FederatedAlgorithm, RoundStats
from repro.exceptions import ConfigError
from repro.fl.client import evaluate_model
from repro.fl.comm import CommLedger


class QFedAvg(FederatedAlgorithm):
    """Fairness-weighted federated averaging.

    Args:
        q: fairness exponent (paper: 1.0 on MNIST/CIFAR, 1e-4 on Sent140).
    """

    name = "qfedavg"

    def __init__(self, q: float = 1.0) -> None:
        super().__init__()
        if q < 0:
            raise ConfigError(f"q must be non-negative, got {q}")
        self.q = q

    def run_round(self, round_idx: int, selected: np.ndarray) -> RoundStats:
        self._require_setup()
        assert (
            self.model is not None
            and self.fed is not None
            and self.config is not None
            and self.ledger is not None
            and self.global_params is not None
        )
        tracer = self.tracer
        with tracer.span("broadcast"):
            self.ledger.charge(
                CommLedger.DOWN, "model", self.model_size, copies=len(selected)
            )

        lipschitz = 1.0 / self.config.lr
        eps = 1e-10
        numerators: list[np.ndarray] = []
        denominators: list[float] = []
        task_losses: list[float] = []
        for client_id in selected:
            cid = int(client_id)
            with tracer.span("local_train", client=cid):
                # Loss of the *global* model on the client's data (F_k(w^t)).
                self._load_global()
                start_loss, _acc = evaluate_model(
                    self.model, self.fed.clients[cid], self.config.eval_batch
                )
                start_loss = max(start_loss, eps)
                params, result = self._train_one_client(round_idx, cid)
            task_losses.append(result.mean_task_loss)
            delta = lipschitz * (self.global_params - params)
            f_pow_q = start_loss**self.q
            numerators.append(f_pow_q * delta)
            denominators.append(
                self.q * start_loss ** (self.q - 1.0) * float(delta @ delta)
                + lipschitz * f_pow_q
            )
        # Uplink: Delta_k and the scalar h_k per client.
        self.ledger.charge(CommLedger.UP, "model", self.model_size, copies=len(selected))
        self.ledger.charge(CommLedger.UP, "scalar", 1, copies=len(selected))

        with tracer.span("aggregate"):
            total_h = float(np.sum(denominators))
            update = np.sum(numerators, axis=0) / max(total_h, eps)
            self.global_params = self.global_params - update

        weights = self.fed.client_sizes[selected].astype(np.float64)
        weights /= weights.sum()
        return RoundStats(train_loss=float(np.dot(weights, task_losses)))
