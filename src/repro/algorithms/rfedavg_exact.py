"""Exact-regularizer reference variant (ablation baseline).

The paper rejects computing the regularizer with *up-to-date* mappings
because every gradient step would need fresh pairwise communication
(Sec. IV, "at least O(N^2) communication overhead in a single round").
This variant simulates that naive algorithm as an upper-bound reference
for the delayed-mapping ablation:

* at the start of every round the deltas of **all** clients are
  recomputed from the current global model (freshest possible state
  short of per-step exchange);
* the ledger charges a per-step all-pairs exchange — E * N * (N-1)
  delta transfers per round — making the infeasibility quantitative.

Accuracy-wise this is the best the regularizer can do; the ablation
bench shows rFedAvg+ tracks it closely at a fraction of the traffic.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.regularized import RegularizedAlgorithm
from repro.algorithms.rfedavg_plus import RFedAvgPlus
from repro.core.privacy import GaussianDeltaMechanism
from repro.fl.comm import CommLedger


class RFedAvgExact(RFedAvgPlus):
    """Up-to-date-mapping regularization with honest O(E N^2) accounting."""

    name = "rfedavg_exact"

    # _pre_round refreshes the deltas of *all* clients from one current
    # global model; with several drifting region models that notion is
    # ill-defined, so the hierarchical engine refuses R > 1 (hier:1:P
    # still works — one region is one global model).
    region_aggregation_safe = False

    def __init__(
        self,
        lam: float = 1e-4,
        privacy: GaussianDeltaMechanism | None = None,
        delta_cache: bool | int = True,
    ) -> None:
        super().__init__(lam, privacy=privacy, delta_cache=delta_cache)

    def _pre_round(self, round_idx: int, selected: np.ndarray) -> None:
        assert (
            self.fed is not None
            and self.ledger is not None
            and self.delta_table is not None
            and self.config is not None
        )
        # Refresh every client's delta from the current global model.
        # This is O(N) work per round by design (the point of the
        # ablation); refuse population scales where "every client" stops
        # being a simulable notion instead of silently grinding forever.
        if self.fed.num_clients > 100_000:
            from repro.exceptions import ConfigError

            raise ConfigError(
                "rfedavg_exact recomputes every client's delta each round "
                f"(O(N) per round); population {self.fed.num_clients} is "
                "beyond its reference-baseline scope — use rfedavg+ for "
                "cross-device populations"
            )
        self._load_global()
        for client_id in range(self.fed.num_clients):
            self.delta_table.update(
                client_id, self._client_delta(round_idx, client_id, phase=2)
            )
        # Charge the per-step all-pairs delta exchange the naive
        # algorithm would need: E steps x N clients x (N-1) peers.
        num_clients = self.fed.num_clients
        self.ledger.charge(
            CommLedger.UP,
            "delta",
            self.model.feature_dim,
            copies=self.config.local_steps * num_clients * (num_clients - 1),
        )
