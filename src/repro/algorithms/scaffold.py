"""SCAFFOLD (Karimireddy et al., ICML 2020).

SCAFFOLD corrects client drift with control variates: the server keeps a
global control ``c`` and each client a local control ``c_k``; local
gradients are corrected by ``(c - c_k)``, and after E steps the client
refreshes its control with option-II:

    c_k+ = c_k - c + (x - y_k) / (E * eta_l)

The server then moves the global model by ``eta_g`` times the average
model delta and the global control by the participation-weighted average
control delta.  Communication doubles in both directions (model +
control), which the ledger charges.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import FederatedAlgorithm, RoundStats
from repro.exceptions import ConfigError
from repro.fl.comm import CommLedger
from repro.models.split import SplitModel
from repro.nn.optim import ConstantLR
from repro.nn.serialization import add_flat_to_grads


class Scaffold(FederatedAlgorithm):
    """SCAFFOLD with option-II control updates.

    Args:
        eta_g: server learning rate (the paper sets 1.0 everywhere).
    """

    name = "scaffold"

    def __init__(self, eta_g: float = 1.0) -> None:
        super().__init__()
        if eta_g <= 0:
            raise ConfigError(f"eta_g must be positive, got {eta_g}")
        self.eta_g = eta_g
        self.server_control: np.ndarray | None = None
        self.client_controls: np.ndarray | None = None

    def setup(self, model, fed, config) -> None:
        super().setup(model, fed, config)
        self.server_control = np.zeros(self.model_size)
        self.client_controls = np.zeros((fed.num_clients, self.model_size))

    def _grad_hook(self, round_idx: int, client_id: int):
        assert self.server_control is not None and self.client_controls is not None
        correction = self.server_control - self.client_controls[client_id]

        def hook(model: SplitModel) -> None:
            add_flat_to_grads(model, correction)

        return hook

    def _local_lr(self, round_idx: int) -> float:
        """Learning rate used in the control refresh (schedule-aware)."""
        assert self.config is not None
        schedule = self.config.lr_schedule
        if schedule is None:
            schedule = ConstantLR(self.config.lr)
        return schedule.rate(round_idx * self.config.local_steps)

    def run_round(self, round_idx: int, selected: np.ndarray) -> RoundStats:
        self._require_setup()
        assert (
            self.ledger is not None
            and self.fed is not None
            and self.config is not None
            and self.global_params is not None
            and self.server_control is not None
            and self.client_controls is not None
        )
        tracer = self.tracer
        with tracer.span("broadcast"):
            # Downlink: model + server control to every selected client.
            self.ledger.charge(CommLedger.DOWN, "model", self.model_size, copies=len(selected))
            self.ledger.charge(CommLedger.DOWN, "control", self.model_size, copies=len(selected))

        x = self.global_params
        eta_l = self._local_lr(round_idx)
        steps = self.config.local_steps
        delta_ys: list[np.ndarray] = []
        delta_cs: list[np.ndarray] = []
        task_losses: list[float] = []
        for client_id in selected:
            cid = int(client_id)
            with tracer.span("local_train", client=cid):
                y_k, result = self._train_one_client(
                    round_idx, cid, grad_hook=self._grad_hook(round_idx, cid)
                )
            task_losses.append(result.mean_task_loss)
            new_control = (
                self.client_controls[cid]
                - self.server_control
                + (x - y_k) / (steps * eta_l)
            )
            delta_cs.append(new_control - self.client_controls[cid])
            self.client_controls[cid] = new_control
            delta_ys.append(y_k - x)
        # Uplink: model delta + control delta per client.
        self.ledger.charge(CommLedger.UP, "model", self.model_size, copies=len(selected))
        self.ledger.charge(CommLedger.UP, "control", self.model_size, copies=len(selected))

        with tracer.span("aggregate"):
            mean_dy = np.mean(delta_ys, axis=0)
            mean_dc = np.mean(delta_cs, axis=0)
            self.global_params = x + self.eta_g * mean_dy
            self.server_control = self.server_control + (
                len(selected) / self.fed.num_clients
            ) * mean_dc

        weights = self.fed.client_sizes[selected].astype(np.float64)
        weights /= weights.sum()
        return RoundStats(train_loss=float(np.dot(weights, task_losses)))
