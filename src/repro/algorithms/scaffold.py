"""SCAFFOLD (Karimireddy et al., ICML 2020).

SCAFFOLD corrects client drift with control variates: the server keeps a
global control ``c`` and each client a local control ``c_k``; local
gradients are corrected by ``(c - c_k)``, and after E steps the client
refreshes its control with option-II:

    c_k+ = c_k - c + (x - y_k) / (E * eta_l)

The server then moves the global model by ``eta_g`` times the average
model delta and the global control by the participation-weighted average
control delta.  Communication doubles in both directions (model +
control), which the ledger charges.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import FederatedAlgorithm
from repro.exceptions import ConfigError
from repro.fl.comm import CommLedger
from repro.fl.parallel import ClientUpdate
from repro.models.split import SplitModel
from repro.nn.optim import ConstantLR
from repro.nn.serialization import add_flat_to_grads, get_flat_params


class Scaffold(FederatedAlgorithm):
    """SCAFFOLD with option-II control updates.

    Args:
        eta_g: server learning rate (the paper sets 1.0 everywhere).
    """

    name = "scaffold"

    def __init__(self, eta_g: float = 1.0) -> None:
        super().__init__()
        if eta_g <= 0:
            raise ConfigError(f"eta_g must be positive, got {eta_g}")
        self.eta_g = eta_g
        self.server_control: np.ndarray | None = None
        self.client_controls: np.ndarray | None = None

    def setup(self, model, fed, config) -> None:
        super().setup(model, fed, config)
        self.server_control = np.zeros(self.model_size)
        self.client_controls = np.zeros((fed.num_clients, self.model_size))

    def _worker_state(self) -> dict:
        state = super()._worker_state()
        state["server_control"] = self.server_control
        state["client_controls"] = self.client_controls
        return state

    def _install_worker_state(self, state: dict) -> None:
        super()._install_worker_state(state)
        self.server_control = state["server_control"]
        self.client_controls = state["client_controls"]

    def checkpoint_state(self) -> dict:
        state = super().checkpoint_state()
        state["server_control"] = self.server_control
        state["client_controls"] = self.client_controls
        return state

    def restore_checkpoint_state(self, state: dict) -> None:
        super().restore_checkpoint_state(state)
        self.server_control = np.array(state["server_control"], copy=True)
        self.client_controls = np.array(state["client_controls"], copy=True)

    def _grad_hook(self, round_idx: int, client_id: int):
        assert self.server_control is not None and self.client_controls is not None
        correction = self.server_control - self.client_controls[client_id]

        def hook(model: SplitModel) -> None:
            add_flat_to_grads(model, correction)

        return hook

    def _local_lr(self, round_idx: int) -> float:
        """Learning rate used in the control refresh (schedule-aware)."""
        assert self.config is not None
        schedule = self.config.lr_schedule
        if schedule is None:
            schedule = ConstantLR(self.config.lr)
        return schedule.rate(round_idx * self.config.local_steps)

    def _charge_broadcast(self, selected: np.ndarray) -> None:
        # Downlink: model + server control to every selected client.
        super()._charge_broadcast(selected)
        assert self.ledger is not None
        self.ledger.charge(
            CommLedger.DOWN, "control", self.model_size, copies=len(selected)
        )

    def _client_update(self, round_idx: int, client_id: int) -> ClientUpdate:
        assert (
            self.config is not None
            and self.global_params is not None
            and self.server_control is not None
            and self.client_controls is not None
        )
        update = super()._client_update(round_idx, client_id)
        # Option-II control refresh from the client's true local model
        # (the workspace still holds it; the upload pipeline only
        # transforms the reported copy).
        y_k = get_flat_params(self.model)
        new_control = (
            self.client_controls[client_id]
            - self.server_control
            + (self.global_params - y_k)
            / (self.config.local_steps * self._local_lr(round_idx))
        )
        update.payload = {
            "new_control": new_control,
            "delta_c": new_control - self.client_controls[client_id],
        }
        return update

    def _charge_uploads(self, selected: np.ndarray, updates: list[ClientUpdate]) -> None:
        # Uplink: model delta + control delta per client.
        super()._charge_uploads(selected, updates)
        assert self.ledger is not None
        self.ledger.charge(
            CommLedger.UP, "control", self.model_size, copies=len(updates)
        )

    def _commit_client(self, round_idx: int, update: ClientUpdate) -> None:
        super()._commit_client(round_idx, update)
        assert self.client_controls is not None
        self.client_controls[update.client_id] = update.payload["new_control"]

    def _aggregate_updates(
        self, round_idx: int, selected: np.ndarray, updates: list[ClientUpdate]
    ) -> np.ndarray:
        assert (
            self.fed is not None
            and self.global_params is not None
            and self.server_control is not None
        )
        x = self.global_params
        mean_dy = np.mean([u.params - x for u in updates], axis=0)
        mean_dc = np.mean([u.payload["delta_c"] for u in updates], axis=0)
        self.server_control = self.server_control + (
            len(selected) / self.fed.num_clients
        ) * mean_dc
        return x + self.eta_g * mean_dy
