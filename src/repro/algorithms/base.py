"""Algorithm strategy interface and shared round machinery.

The trainer (:mod:`repro.fl.trainer`) owns the protocol loop; an
algorithm owns *what happens inside one round*: broadcasting, local
updates, aggregation, and any extra synchronization phases.  The base
class provides the FedAvg-shaped round that every method here extends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import FederatedDataset
from repro.exceptions import ProtocolError
from repro.fl.client import LocalResult, local_sgd_steps
from repro.fl.comm import CommLedger
from repro.fl.config import FLConfig
from repro.fl.server import weighted_average
from repro.models.split import SplitModel
from repro.nn.serialization import get_flat_params, num_params, set_flat_params
from repro.obs.trace import NULL_TRACER


@dataclass
class RoundStats:
    """What one round reports back to the trainer."""

    train_loss: float
    reg_loss: float = 0.0


class FederatedAlgorithm:
    """Base strategy: plain FedAvg round structure.

    Subclasses may override :meth:`_reg_hook` / :meth:`_grad_hook` to
    modify local training, :meth:`_aggregate` to change aggregation, and
    :meth:`_post_aggregate` for extra synchronization phases.

    Lifecycle: construct -> :meth:`setup` (binds model workspace,
    dataset, config) -> :meth:`run_round` once per communication round.
    """

    name = "base"

    def __init__(self) -> None:
        self.model: SplitModel | None = None
        self.fed: FederatedDataset | None = None
        self.config: FLConfig | None = None
        self.global_params: np.ndarray | None = None
        self.ledger: CommLedger | None = None
        self.model_size = 0
        self.compressor = None  # optional upload Compressor
        self.fault_model = None  # optional FaultModel
        self.tracer = NULL_TRACER  # the trainer swaps in a live Tracer

    def with_compressor(self, compressor) -> "FederatedAlgorithm":
        """Compress client model uploads (FedAvg-family rounds only).

        The compressor acts on the *update* (local params minus the
        round's global params); the server aggregates the lossy
        reconstruction and the ledger is charged the compressed size.
        """
        self.compressor = compressor
        return self

    def with_faults(self, fault_model) -> "FederatedAlgorithm":
        """Inject client dropout / byzantine corruption into rounds."""
        self.fault_model = fault_model
        return self

    # -- lifecycle ---------------------------------------------------------------
    def setup(self, model: SplitModel, fed: FederatedDataset, config: FLConfig) -> None:
        """Bind the workspace model, the federated dataset and config."""
        self.model = model
        self.fed = fed
        self.config = config
        self.global_params = get_flat_params(model)
        # Traced runs share the tracer's registry so byte counters land
        # next to the spans; untraced runs get a private registry.
        metrics = self.tracer.metrics if self.tracer.enabled else None
        self.ledger = CommLedger(config.wire_dtype_bytes, metrics=metrics)
        self.model_size = num_params(model)

    def _require_setup(self) -> None:
        if self.model is None or self.fed is None or self.config is None:
            raise ProtocolError(f"{self.name}: setup() must be called before run_round()")

    # -- per-client helpers --------------------------------------------------------
    def client_rng(self, round_idx: int, client_id: int) -> np.random.Generator:
        """Deterministic per-(round, client) randomness."""
        assert self.config is not None
        return np.random.default_rng([self.config.seed, round_idx, client_id])

    def _load_global(self) -> None:
        assert self.model is not None and self.global_params is not None
        set_flat_params(self.model, self.global_params)

    def _train_one_client(
        self,
        round_idx: int,
        client_id: int,
        reg_hook=None,
        grad_hook=None,
    ) -> tuple[np.ndarray, LocalResult]:
        """Load global params, run E local steps, return (params, result)."""
        assert self.model is not None and self.fed is not None and self.config is not None
        self._load_global()
        result = local_sgd_steps(
            self.model,
            self.fed.clients[client_id],
            self.config,
            self.client_rng(round_idx, client_id),
            step_offset=round_idx * self.config.local_steps,
            reg_hook=reg_hook,
            grad_hook=grad_hook,
        )
        return get_flat_params(self.model), result

    # -- extension points ------------------------------------------------------------
    def _reg_hook(self, round_idx: int, client_id: int):
        """Distribution-regularizer hook for one client round (or None)."""
        return None

    def _grad_hook(self, round_idx: int, client_id: int):
        """Parameter-gradient correction hook for one client round (or None)."""
        return None

    def _aggregate(
        self, round_idx: int, selected: np.ndarray, updates: list[np.ndarray]
    ) -> np.ndarray:
        """Default: data-size-weighted average of the selected clients."""
        assert self.fed is not None
        weights = self.fed.client_sizes[selected].astype(np.float64)
        return weighted_average(updates, weights)

    def _post_aggregate(self, round_idx: int, selected: np.ndarray) -> None:
        """Extra synchronization after aggregation (rFedAvg+ overrides)."""

    def _charge_broadcast(self, selected: np.ndarray) -> None:
        assert self.ledger is not None
        self.ledger.charge(CommLedger.DOWN, "model", self.model_size, copies=len(selected))

    def _charge_upload(self, selected: np.ndarray) -> None:
        assert self.ledger is not None
        self.ledger.charge(CommLedger.UP, "model", self.model_size, copies=len(selected))

    def _apply_upload_pipeline(
        self, round_idx: int, client_id: int, params: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Run a client's upload through faults + compression.

        Returns the parameters the server actually receives and the
        wire size in scalars.
        """
        assert self.global_params is not None and self.config is not None
        if self.fault_model is not None:
            params = self.fault_model.maybe_corrupt(
                client_id, params, self.global_params
            )
        if self.compressor is None:
            return params, self.model_size
        rng = np.random.default_rng([self.config.seed, round_idx, client_id, 0xC0])
        recon, wire = self.compressor.compress(params - self.global_params, rng)
        return self.global_params + recon, wire

    # -- the round ---------------------------------------------------------------------
    def run_round(self, round_idx: int, selected: np.ndarray) -> RoundStats:
        """Execute one communication round over ``selected`` clients."""
        self._require_setup()
        tracer = self.tracer
        if self.fault_model is not None:
            selected = self.fault_model.surviving_clients(selected)
        with tracer.span("broadcast"):
            self._charge_broadcast(selected)
        updates: list[np.ndarray] = []
        task_losses: list[float] = []
        reg_losses: list[float] = []
        for client_id in selected:
            cid = int(client_id)
            with tracer.span("local_train", client=cid):
                params, result = self._train_one_client(
                    round_idx,
                    cid,
                    reg_hook=self._reg_hook(round_idx, cid),
                    grad_hook=self._grad_hook(round_idx, cid),
                )
                params, wire = self._apply_upload_pipeline(round_idx, cid, params)
                assert self.ledger is not None
                self.ledger.charge(CommLedger.UP, "model", wire)
            if tracer.enabled:
                assert self.global_params is not None
                tracer.metrics.histogram("client.update_norm").observe(
                    float(np.linalg.norm(params - self.global_params))
                )
            updates.append(params)
            task_losses.append(result.mean_task_loss)
            reg_losses.append(result.mean_reg_loss)
        with tracer.span("aggregate"):
            self.global_params = self._aggregate(round_idx, selected, updates)
            self._post_aggregate(round_idx, selected)
        assert self.fed is not None
        weights = self.fed.client_sizes[selected].astype(np.float64)
        weights /= weights.sum()
        return RoundStats(
            train_loss=float(np.dot(weights, task_losses)),
            reg_loss=float(np.dot(weights, reg_losses)),
        )
