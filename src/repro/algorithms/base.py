"""Algorithm strategy interface and shared round machinery.

The trainer (:mod:`repro.fl.trainer`) owns the protocol loop; an
algorithm owns *what happens inside one round*: broadcasting, local
updates, aggregation, and any extra synchronization phases.  The base
class provides the FedAvg-shaped round that every method here extends.

The round itself is an *execution engine*: the per-client unit of work
(:meth:`FederatedAlgorithm._client_update`) is side-effect-free with
respect to shared algorithm state, so a pluggable
:class:`~repro.fl.parallel.ClientExecutor` may run the selected clients
serially or in a process pool.  Results come back as picklable
:class:`~repro.fl.parallel.ClientUpdate` records and the round reduces
them in **selection order** — upload charges are summed then recorded,
per-client side effects run through :meth:`_commit_client`, and
aggregation sees the updates in the same order as a serial run — so the
numbers are bit-identical for any ``num_workers``.

Extension points, in round order:

* :meth:`_charge_broadcast` — downlink accounting.
* :meth:`_local_config` — per-client training config (FedNova's tau).
* :meth:`_reg_hook` / :meth:`_grad_hook` — local-objective shaping.
* :meth:`_client_update` / :meth:`_client_payload` — the worker-side
  unit of work and its algorithm-specific extras.
* :meth:`_charge_uploads` — uplink accounting (order-independent).
* :meth:`_commit_client` — per-client state mutation, selection order.
* :meth:`_aggregate_updates` / :meth:`_aggregate` — server update.
* :meth:`_post_aggregate` — extra synchronization phases.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.core.delta import DeltaTable, ShardedDeltaTable
from repro.data.dataset import FederatedDataset
from repro.exceptions import ProtocolError
from repro.fl.client import LocalResult, local_sgd_steps
from repro.fl.comm import CommLedger
from repro.fl.compression import WireSize, compressor_from_spec
from repro.fl.config import FLConfig
from repro.fl.parallel import ClientExecutor, ClientUpdate, SerialExecutor, make_executor
from repro.fl.server import weighted_average
from repro.models.split import SplitModel
from repro.nn.serialization import get_flat_params, num_params, set_flat_params
from repro.obs.trace import NULL_TRACER


@dataclass
class RoundStats:
    """What one round reports back to the trainer."""

    train_loss: float
    reg_loss: float = 0.0


class FederatedAlgorithm:
    """Base strategy: plain FedAvg round structure.

    Subclasses may override :meth:`_reg_hook` / :meth:`_grad_hook` to
    modify local training, :meth:`_aggregate` to change aggregation, and
    :meth:`_post_aggregate` for extra synchronization phases.

    Lifecycle: construct -> :meth:`setup` (binds model workspace,
    dataset, config) -> :meth:`run_round` once per communication round.
    """

    name = "base"

    # The packed wire transport keeps worker processes alive across
    # rounds and refreshes their shared state from
    # :meth:`_worker_state` each round.  An algorithm whose worker-side
    # work reads shared state that cannot be enumerated there must set
    # this False to force the fork-per-round pickle engine.
    wire_transport_safe = True

    # Whether the round can run independently per region under a
    # hierarchical topology (R > 1): per-client tables partition by
    # region ownership and algorithm-global server state updates once
    # per region aggregation.  An algorithm whose round semantics
    # require exactly one current global model (rfedavg_exact's
    # full-population delta refresh) sets this False and the
    # hierarchical engine refuses R > 1.
    region_aggregation_safe = True

    def __init__(self) -> None:
        self.model: SplitModel | None = None
        self.fed: FederatedDataset | None = None
        self.config: FLConfig | None = None
        self.global_params: np.ndarray | None = None
        self.ledger: CommLedger | None = None
        self.model_size = 0
        self.compressor = None  # optional upload Compressor
        self._residuals = None  # per-client error-feedback accumulators
        self.fault_model = None  # optional FaultModel
        self.tracer = NULL_TRACER  # the trainer swaps in a live Tracer
        self.executor: ClientExecutor = SerialExecutor()
        self._executor_override: ClientExecutor | None = None

    def with_compressor(self, compressor) -> "FederatedAlgorithm":
        """Compress client model uploads (FedAvg-family rounds only).

        The compressor acts on the *update* (local params minus the
        round's global params); the server aggregates the lossy
        reconstruction and the ledger is charged the compressed size.
        """
        self.compressor = compressor
        return self

    def with_faults(self, fault_model) -> "FederatedAlgorithm":
        """Inject client dropout / byzantine corruption into rounds."""
        self.fault_model = fault_model
        return self

    def with_executor(self, executor: ClientExecutor) -> "FederatedAlgorithm":
        """Use a specific client-execution engine instead of the one
        :func:`~repro.fl.parallel.make_executor` derives from the config."""
        self._executor_override = executor
        return self

    # -- lifecycle ---------------------------------------------------------------
    def setup(self, model: SplitModel, fed: FederatedDataset, config: FLConfig) -> None:
        """Bind the workspace model, the federated dataset and config."""
        self.model = model
        self.fed = fed
        self.config = config
        self.global_params = get_flat_params(model)
        # Traced runs share the tracer's registry so byte counters land
        # next to the spans; untraced runs get a private registry.
        metrics = self.tracer.metrics if self.tracer.enabled else None
        streaming = getattr(config, "history_mode", "append") == "stream"
        stream_dir = getattr(config, "stream_dir", None)
        self.ledger = CommLedger(
            config.wire_bytes_per_scalar(),
            metrics=metrics,
            streaming=streaming,
            stream_path=(
                None if stream_dir is None or not streaming
                else os.path.join(stream_dir, "comm.jsonl")
            ),
        )
        self.model_size = num_params(model)
        # The config's compression spec builds the upload pipeline unless
        # an explicit compressor was attached via with_compressor() (the
        # legacy path, which keeps its historical no-error-feedback
        # behaviour bit for bit).
        self._residuals = None
        spec = getattr(config, "compression", "none")
        if self.compressor is None and spec not in (None, "", "none"):
            self.compressor = compressor_from_spec(spec)
            if getattr(config, "error_feedback", True):
                self._residuals = self._make_state_table(self.model_size)
        self.executor = (
            self._executor_override
            if self._executor_override is not None
            else make_executor(config)
        )

    def _require_setup(self) -> None:
        if self.model is None or self.fed is None or self.config is None:
            raise ProtocolError(f"{self.name}: setup() must be called before run_round()")

    # Populations at or above this size default to sharded per-client
    # state tables under state_sharding='auto' (dense would allocate
    # N*d float64).
    AUTO_SHARD_THRESHOLD = 4096

    def _use_sharded_state(self, fed, config) -> bool:
        """Whether per-client server-side state (delta tables, error
        residuals) should use the lazy spillable layout — the same rule
        for every table, so one config reads one way everywhere."""
        mode = getattr(config, "state_sharding", "auto")
        if mode == "dense":
            return False
        if mode == "sharded":
            return True
        return bool(getattr(fed, "virtual", False)) or (
            fed.num_clients >= self.AUTO_SHARD_THRESHOLD
        )

    def _make_state_table(self, dim: int):
        """A per-client (N, dim) state table in the configured layout."""
        assert self.fed is not None and self.config is not None
        if self._use_sharded_state(self.fed, self.config):
            return ShardedDeltaTable(
                self.fed.num_clients, dim,
                dtype_bytes=self.config.wire_bytes_per_scalar(),
                max_resident=getattr(self.config, "state_cap", None),
                spill_dir=getattr(self.config, "state_dir", None),
            )
        return DeltaTable(
            self.fed.num_clients, dim,
            dtype_bytes=self.config.wire_bytes_per_scalar(),
        )

    # -- wire-transport worker state ---------------------------------------------
    def _worker_state(self) -> dict:
        """Everything a worker-side :meth:`_client_update` reads from
        shared algorithm state, as wire-packable named segments.

        The packed wire transport broadcasts this once per round into
        shared memory; long-lived workers re-adopt it via
        :meth:`_install_worker_state` before running tasks.  Subclasses
        with extra shared state (control variates, delta tables,
        previous local models) must extend both methods symmetrically —
        or set ``wire_transport_safe = False``.
        """
        assert self.global_params is not None
        state = {"global_params": self.global_params}
        if self._residuals is not None:
            # Error-feedback residuals are read worker-side (a client
            # compresses update + e_t); 'ef.'-prefixed keys keep them
            # clear of subclass segments like the delta table's.
            for key, segment in self._residuals.worker_segments().items():
                state["ef." + key] = segment
        return state

    def _install_worker_state(self, state: dict) -> None:
        """Adopt a round-state broadcast (worker-side only).

        The arrays are zero-copy read-only views into the shared
        buffer; they stay valid for the round they are installed for.
        """
        self.global_params = state["global_params"]
        if self._residuals is not None:
            segments = {
                key[len("ef."):]: value
                for key, value in state.items()
                if key.startswith("ef.")
            }
            if segments:
                self._residuals.install_worker_segments(segments)

    # -- checkpointing -----------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """Algorithm-owned server state for a between-rounds checkpoint.

        The global model itself is captured separately by
        :mod:`repro.ckpt.state`; this hook covers everything *else* an
        algorithm accumulates across rounds (control variates, server
        momentum, delta tables, caches).  The base round is stateless.

        Subclasses with server state must extend this and
        :meth:`restore_checkpoint_state` symmetrically — values must
        survive :func:`repro.ckpt.format.pack_tree` (arrays, scalars,
        strings, bytes, lists, dicts).
        """
        state: dict = {}
        if self._residuals is not None:
            state["ef_residuals"] = self._residuals.checkpoint_segments()
        return state

    def restore_checkpoint_state(self, state: dict) -> None:
        """Adopt a :meth:`checkpoint_state` snapshot.

        Called after :meth:`setup` (arrays allocated, config bound) and
        before the resumed round runs; implementations copy values in
        rather than aliasing the decoded buffers.
        """
        if self._residuals is not None and "ef_residuals" in state:
            self._residuals.restore_checkpoint_segments(state["ef_residuals"])

    # -- per-client helpers --------------------------------------------------------
    def client_rng(self, round_idx: int, client_id: int) -> np.random.Generator:
        """Deterministic per-(round, client) randomness."""
        assert self.config is not None
        return np.random.default_rng([self.config.seed, round_idx, client_id])

    def _load_global(self) -> None:
        assert self.model is not None and self.global_params is not None
        set_flat_params(self.model, self.global_params)

    def _local_config(self, round_idx: int, client_id: int) -> FLConfig:
        """Training config for one client round (FedNova overrides)."""
        assert self.config is not None
        return self.config

    def _train_one_client(
        self,
        round_idx: int,
        client_id: int,
        reg_hook=None,
        grad_hook=None,
    ) -> tuple[np.ndarray, LocalResult]:
        """Load global params, run E local steps, return (params, result)."""
        assert self.model is not None and self.fed is not None and self.config is not None
        self._load_global()
        result = local_sgd_steps(
            self.model,
            self.fed.clients[client_id],
            self._local_config(round_idx, client_id),
            self.client_rng(round_idx, client_id),
            step_offset=round_idx * self.config.local_steps,
            reg_hook=reg_hook,
            grad_hook=grad_hook,
        )
        return get_flat_params(self.model), result

    # -- extension points ------------------------------------------------------------
    def _reg_hook(self, round_idx: int, client_id: int):
        """Distribution-regularizer hook for one client round (or None)."""
        return None

    def _grad_hook(self, round_idx: int, client_id: int):
        """Parameter-gradient correction hook for one client round (or None)."""
        return None

    def _client_payload(
        self, round_idx: int, client_id: int, params: np.ndarray
    ) -> dict | None:
        """Algorithm-specific extras computed while the workspace model
        still holds the client's final *local* parameters (rFedAvg's
        delta, MOON's previous-model snapshot).  Must be picklable."""
        return None

    def _client_update(self, round_idx: int, client_id: int) -> ClientUpdate:
        """One client's complete local work for the round.

        This is the unit a :class:`~repro.fl.parallel.ClientExecutor`
        schedules, possibly inside a worker process — it must NOT mutate
        shared algorithm state (mutating the workspace model is fine;
        every worker owns a copy).  Per-client side effects belong in
        :meth:`_commit_client`.
        """
        started = time.perf_counter()
        params, result = self._train_one_client(
            round_idx,
            client_id,
            reg_hook=self._reg_hook(round_idx, client_id),
            grad_hook=self._grad_hook(round_idx, client_id),
        )
        params, streams, wire_size, residual = self._apply_upload_pipeline(
            round_idx, client_id, params
        )
        payload = self._client_payload(round_idx, client_id, params)
        return ClientUpdate(
            client_id=client_id,
            params=params,
            wire=wire_size.scalars,
            task_loss=result.mean_task_loss,
            reg_loss=result.mean_reg_loss,
            num_steps=result.num_steps,
            train_seconds=time.perf_counter() - started,
            payload=payload,
            params_streams=streams,
            wire_size=wire_size,
            residual=residual,
        )

    def _commit_client(self, round_idx: int, update: ClientUpdate) -> None:
        """Apply one finished client's side effects to shared state.

        Runs in the parent process, in selection order, regardless of
        which worker finished first — the only place per-client state
        mutation is allowed.  Subclasses extending this must call
        ``super()._commit_client(...)`` so error-feedback residuals
        commit.
        """
        if update.residual is not None and self._residuals is not None:
            residual = np.asarray(update.residual, dtype=np.float64)
            self._residuals.update(update.client_id, residual)
            if self.tracer.enabled:
                self.tracer.metrics.histogram("compression.residual_norm").observe(
                    float(np.linalg.norm(residual))
                )

    def _aggregate(
        self, round_idx: int, selected: np.ndarray, updates: list[np.ndarray]
    ) -> np.ndarray:
        """Default: data-size-weighted average of the selected clients."""
        assert self.fed is not None
        weights = self.fed.client_sizes[selected].astype(np.float64)
        return weighted_average(updates, weights)

    def _aggregate_updates(
        self, round_idx: int, selected: np.ndarray, updates: list[ClientUpdate]
    ) -> np.ndarray:
        """Reduce the round's :class:`ClientUpdate` records to new global
        parameters.  Algorithms that only need the parameter vectors
        override :meth:`_aggregate`; ones that need per-client payloads
        (q-FedAvg, SCAFFOLD, FedNova) override this."""
        return self._aggregate(round_idx, selected, [u.params for u in updates])

    def _post_aggregate(self, round_idx: int, selected: np.ndarray) -> None:
        """Extra synchronization after aggregation (rFedAvg+ overrides)."""

    # -- communication accounting ---------------------------------------------------
    def _charge_broadcast(self, selected: np.ndarray) -> None:
        assert self.ledger is not None
        self.ledger.charge(CommLedger.DOWN, "model", self.model_size, copies=len(selected))

    def _charge_upload(self, selected: np.ndarray) -> None:
        assert self.ledger is not None
        self.ledger.charge(CommLedger.UP, "model", self.model_size, copies=len(selected))

    def _charge_uploads(self, selected: np.ndarray, updates: list[ClientUpdate]) -> None:
        """Charge the round's uplink from the finished updates.

        Sums the per-client wire sizes and records once, so ledger state
        is independent of worker completion order by construction.
        When every update carries an exact :class:`WireSize`, actual
        wire bytes are charged (int32 index streams, bit-packed words);
        otherwise the legacy scalar accounting applies.
        """
        assert self.ledger is not None
        if updates and all(u.wire_size is not None for u in updates):
            total_bytes = sum(
                u.wire_size.nbytes(self.ledger.dtype_bytes) for u in updates
            )
            if total_bytes:
                self.ledger.charge_bytes(CommLedger.UP, "model", total_bytes)
            self._observe_compression(len(updates), total_bytes)
            return
        total_scalars = sum(int(u.wire) for u in updates)
        if total_scalars:
            self.ledger.charge(CommLedger.UP, "model", total_scalars)

    def _observe_compression(self, num_updates: int, charged_bytes: int) -> None:
        """Export compression effectiveness into the metrics registry.

        ``compression.bytes_saved`` counts uplink bytes avoided versus
        dense uploads; ``compression.stage_bytes{stage=...}`` breaks the
        charged bytes down per pipeline stage (stage footprints are
        deterministic in the model size, so no extra metadata crosses
        the wire).  Both land in ``summary.json`` with the ledger
        totals via the tracer's registry snapshot.
        """
        if not self.tracer.enabled or self.compressor is None or not num_updates:
            return
        assert self.ledger is not None
        dense_bytes = self.model_size * self.ledger.dtype_bytes * num_updates
        if dense_bytes > charged_bytes:
            self.tracer.metrics.counter("compression.bytes_saved").inc(
                dense_bytes - charged_bytes
            )
        stage_footprints = getattr(self.compressor, "stage_footprints", None)
        if stage_footprints is not None:
            for stage, footprint in stage_footprints(self.model_size):
                self.tracer.metrics.counter(
                    "compression.stage_bytes", stage=stage
                ).inc(footprint.nbytes(self.ledger.dtype_bytes) * num_updates)

    def _apply_upload_pipeline(
        self, round_idx: int, client_id: int, params: np.ndarray
    ) -> tuple[np.ndarray | None, dict | None, "WireSize", np.ndarray | None]:
        """Run a client's upload through faults + compression.

        Returns ``(params, streams, wire_size, residual)``: either the
        dense parameters the server receives (``streams=None``), or the
        compressed wire streams (``params=None``) the round
        materializes via :meth:`_materialize_params`.  Under error
        feedback the client compresses ``update + e_t`` and the new
        accumulator ``e_{t+1} = e_t + update - decompress(compress(...))``
        rides back on ``residual`` — this method stays pure with
        respect to shared state (residuals commit in
        :meth:`_commit_client`, the byzantine counter at commit time by
        the round).
        """
        assert self.global_params is not None and self.config is not None
        if self.fault_model is not None and self.fault_model.is_byzantine(client_id):
            params = self.fault_model.corrupt(client_id, params, self.global_params)
        if self.compressor is None:
            return params, None, WireSize(values=self.model_size), None
        rng = np.random.default_rng([self.config.seed, round_idx, client_id, 0xC0])
        target = params - self.global_params
        if self._residuals is not None:
            target = target + self._residuals.get(client_id)
        # Stream-capable compressors (TopK, subsampling, pipelines)
        # consume the rng in encode() exactly as compress() would, so
        # either path sees identical draws and decode(encode(v)) ==
        # compress(v) bit for bit.
        encoded = self.compressor.encode(target, rng)
        if encoded is not None:
            streams, wire_size = encoded
            residual = None
            if self._residuals is not None:
                recon = self.compressor.decode(streams, self.model_size)
                residual = target - recon
            return None, streams, wire_size, residual
        recon, wire_size = self.compressor.compress(target, rng)
        residual = target - recon if self._residuals is not None else None
        return self.global_params + recon, None, wire_size, residual

    def _materialize_params(self, update: ClientUpdate) -> None:
        """Reconstruct dense server-side parameters from wire streams.

        Runs in the parent for every transport (serial, packed, pickled,
        degraded) so the reduction path is one code path; the scatter
        order matches what :meth:`Compressor.compress` would have
        produced, keeping results bit-identical to the dense pipeline.
        """
        if update.params is not None:
            return
        assert self.compressor is not None and self.global_params is not None
        recon = self.compressor.decode(update.params_streams, self.model_size)
        update.params = self.global_params + recon

    # -- the round ---------------------------------------------------------------------
    def _execute_clients(
        self, round_idx: int, selected: np.ndarray
    ) -> list[ClientUpdate]:
        """Run every selected client through the execution engine.

        Returns updates in selection order (the executor contract).
        """
        client_ids = [int(c) for c in selected]
        updates = self.executor.run(self, round_idx, client_ids)
        for update in updates:
            self._materialize_params(update)
        if self.tracer.enabled:
            assert self.global_params is not None
            histogram = self.tracer.metrics.histogram("client.update_norm")
            for update in updates:
                histogram.observe(
                    float(np.linalg.norm(update.params - self.global_params))
                )
        return updates

    def _round_stats(
        self, selected: np.ndarray, updates: list[ClientUpdate]
    ) -> RoundStats:
        """Data-size-weighted round losses, in selection order."""
        assert self.fed is not None
        weights = self.fed.client_sizes[selected].astype(np.float64)
        weights /= weights.sum()
        return RoundStats(
            train_loss=float(np.dot(weights, [u.task_loss for u in updates])),
            reg_loss=float(np.dot(weights, [u.reg_loss for u in updates])),
        )

    def _pre_round(self, round_idx: int, selected: np.ndarray) -> None:
        """Hook before the broadcast/fault phase of a round.

        Algorithms with an extra synchronization phase (e.g. the exact
        rFedAvg reference refreshing every delta from the current
        global model) override this instead of :meth:`run_round`, so
        both execution engines — the synchronous barrier loop and the
        event-driven async engine — run it at dispatch time.
        """

    def run_round(self, round_idx: int, selected: np.ndarray) -> RoundStats:
        """Execute one communication round over ``selected`` clients."""
        self._require_setup()
        tracer = self.tracer
        self._pre_round(round_idx, selected)
        if self.fault_model is not None:
            selected = self.fault_model.surviving_clients(selected)
        with tracer.span("broadcast"):
            self._charge_broadcast(selected)
        updates = self._execute_clients(round_idx, selected)
        self._charge_uploads(selected, updates)
        for update in updates:
            if self.fault_model is not None and self.fault_model.is_byzantine(
                update.client_id
            ):
                self.fault_model.corrupted_total += 1
            self._commit_client(round_idx, update)
        with tracer.span("aggregate"):
            self.global_params = self._aggregate_updates(round_idx, selected, updates)
            self._post_aggregate(round_idx, selected)
        return self._round_stats(selected, updates)
