"""FedProx (Li et al., MLSys 2020).

FedProx adds a proximal term (mu/2)||w - w_global||^2 to every client's
local objective, pulling local iterates toward the round's starting
point.  Its gradient contribution is mu * (w - w_global), injected here
through the grad hook before each optimizer step.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import FederatedAlgorithm
from repro.exceptions import ConfigError
from repro.models.split import SplitModel
from repro.nn.serialization import add_flat_to_grads, get_flat_params


class FedProx(FederatedAlgorithm):
    """FedAvg + proximal regularization toward the global model.

    Args:
        mu: proximal coefficient (the paper uses 1.0 on MNIST/CIFAR and
            0.01 on Sent140).
    """

    name = "fedprox"

    def __init__(self, mu: float = 1.0) -> None:
        super().__init__()
        if mu < 0:
            raise ConfigError(f"mu must be non-negative, got {mu}")
        self.mu = mu

    def _grad_hook(self, round_idx: int, client_id: int):
        anchor = np.array(self.global_params, copy=True)

        def hook(model: SplitModel) -> None:
            current = get_flat_params(model)
            add_flat_to_grads(model, self.mu * (current - anchor))

        return hook
