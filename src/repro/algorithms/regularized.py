"""Shared machinery for the distribution-regularized algorithms."""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import FederatedAlgorithm
from repro.core.delta import DeltaCache, DeltaTable
from repro.core.privacy import GaussianDeltaMechanism
from repro.core.regularizer import DistributionRegularizer
from repro.exceptions import ConfigError
from repro.fl.client import compute_mean_embedding
from repro.nn.serialization import params_fingerprint


class RegularizedAlgorithm(FederatedAlgorithm):
    """Base for rFedAvg variants: owns the delta table and regularizer.

    Args:
        lam: regularization weight lambda (Eq. 3); also acts as the
            normalization coefficient, so good values are dataset
            dependent (paper: 1e-4 MNIST, 1e-5 CIFAR, 0.1 Sent140).
        mode: 'pairwise' or 'loo' — which r_k form the clients optimize.
        privacy: optional Gaussian mechanism applied to every delta a
            client uploads (Fig. 12).
        delta_cache: memoize raw mean embeddings keyed on (phi
            parameters, client data) content fingerprints, skipping the
            embedding forward pass when neither changed.  Bit-identical
            to recomputation; disable (``False``) to benchmark the
            recompute path, or pass an ``int`` to bound the cache to
            that many entries with LRU eviction (evictions only force
            recomputation, never change results).
    """

    name = "regularized-base"

    def __init__(
        self,
        lam: float,
        mode: str,
        privacy: GaussianDeltaMechanism | None = None,
        delta_cache: bool | int = True,
    ) -> None:
        super().__init__()
        if lam < 0:
            raise ConfigError(f"lambda must be non-negative, got {lam}")
        self.lam = lam
        self.regularizer = DistributionRegularizer(lam, mode=mode)
        self.privacy = privacy
        self.delta_table: DeltaTable | None = None
        if delta_cache is True:
            self.delta_cache = DeltaCache()
        elif delta_cache is False:
            self.delta_cache = None
        else:
            self.delta_cache = DeltaCache(max_entries=int(delta_cache))

    # The layout rule (and AUTO_SHARD_THRESHOLD) lives on the base
    # class now, shared with the error-feedback residual tables; the
    # alias keeps the historical name for the delta-table call sites.
    def _use_sharded_table(self, fed, config) -> bool:
        return self._use_sharded_state(fed, config)

    def setup(self, model, fed, config) -> None:
        super().setup(model, fed, config)
        self.delta_table = self._make_state_table(model.feature_dim)

    def _worker_state(self) -> dict:
        state = super()._worker_state()
        assert self.delta_table is not None
        state.update(self.delta_table.worker_segments())
        return state

    def _install_worker_state(self, state: dict) -> None:
        super()._install_worker_state(state)
        assert self.delta_table is not None
        keys = (
            ("delta_table", "delta_reported")
            if "delta_table" in state
            else ("delta_ids", "delta_rows", "delta_reported")
        )
        self.delta_table.install_worker_segments({k: state[k] for k in keys})

    def checkpoint_state(self) -> dict:
        state = super().checkpoint_state()
        assert self.delta_table is not None
        state.update(self.delta_table.checkpoint_segments())
        if self.delta_cache is not None:
            state["delta_cache"] = self.delta_cache.state_dict()
        return state

    def restore_checkpoint_state(self, state: dict) -> None:
        super().restore_checkpoint_state(state)
        assert self.delta_table is not None
        self.delta_table.restore_checkpoint_segments(state)
        if self.delta_cache is not None and "delta_cache" in state:
            self.delta_cache.load_state_dict(state["delta_cache"])

    def _raw_delta(self, client_id: int) -> np.ndarray:
        """Client k's mean embedding under the current workspace model,
        through the delta cache when enabled."""
        assert self.model is not None and self.fed is not None and self.config is not None
        shard = self.fed.clients[client_id]
        if self.delta_cache is None:
            return compute_mean_embedding(self.model, shard, self.config.eval_batch)
        # Fingerprints are recomputed every call (cheap next to the
        # forward pass) so stale hits are impossible even under in-place
        # parameter or data mutation.
        phi_fp = params_fingerprint(self.model.features)
        data_fp = shard.content_fingerprint()
        delta = self.delta_cache.lookup(client_id, phi_fp, data_fp)
        hit = delta is not None
        evicted = 0
        if not hit:
            delta = compute_mean_embedding(self.model, shard, self.config.eval_batch)
            before = self.delta_cache.evictions
            self.delta_cache.store(client_id, phi_fp, data_fp, delta)
            evicted = self.delta_cache.evictions - before
        if self.tracer.enabled:
            name = "delta_cache.hits" if hit else "delta_cache.misses"
            self.tracer.metrics.counter(name).inc()
            if evicted:
                self.tracer.metrics.counter("delta_cache.evictions").inc(evicted)
        return delta

    def _client_delta(self, round_idx: int, client_id: int, phase: int = 0) -> np.ndarray:
        """Compute (and optionally privatize) client k's mean embedding
        under the *current workspace model* parameters.

        Privacy noise draws from a dedicated ``(round, client, phase)``
        stream so the numbers do not depend on the order clients execute
        in (serial/parallel equivalence); ``phase`` separates multiple
        delta computations for the same client within one round.  Only
        the raw embedding is cached — noise is applied per call, so the
        cache cannot perturb the privacy stream.
        """
        assert self.model is not None and self.fed is not None and self.config is not None
        with self.tracer.span("delta_compute", client=client_id):
            delta = self._raw_delta(client_id)
            if self.privacy is not None:
                shard = self.fed.clients[client_id]
                rng = np.random.default_rng(
                    [self.config.seed, round_idx, client_id, 0xD9, phase]
                )
                delta = self.privacy.privatize(delta, batch_size=len(shard), rng=rng)
        return delta

    def _traced_reg_hook(self, hook):
        """Wrap a regularizer hook so each evaluation emits a span."""
        if not self.tracer.enabled:
            return hook
        tracer = self.tracer

        def traced(features):
            with tracer.span("regularizer"):
                return hook(features)

        return traced

    def delta_payload_bytes(self) -> int:
        """Wire size of one delta vector."""
        assert self.model is not None and self.config is not None
        return self.model.feature_dim * self.config.wire_bytes_per_scalar()
