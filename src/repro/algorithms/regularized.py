"""Shared machinery for the distribution-regularized algorithms."""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import FederatedAlgorithm
from repro.core.delta import DeltaTable
from repro.core.privacy import GaussianDeltaMechanism
from repro.core.regularizer import DistributionRegularizer
from repro.exceptions import ConfigError
from repro.fl.client import compute_mean_embedding


class RegularizedAlgorithm(FederatedAlgorithm):
    """Base for rFedAvg variants: owns the delta table and regularizer.

    Args:
        lam: regularization weight lambda (Eq. 3); also acts as the
            normalization coefficient, so good values are dataset
            dependent (paper: 1e-4 MNIST, 1e-5 CIFAR, 0.1 Sent140).
        mode: 'pairwise' or 'loo' — which r_k form the clients optimize.
        privacy: optional Gaussian mechanism applied to every delta a
            client uploads (Fig. 12).
    """

    name = "regularized-base"

    def __init__(
        self,
        lam: float,
        mode: str,
        privacy: GaussianDeltaMechanism | None = None,
    ) -> None:
        super().__init__()
        if lam < 0:
            raise ConfigError(f"lambda must be non-negative, got {lam}")
        self.lam = lam
        self.regularizer = DistributionRegularizer(lam, mode=mode)
        self.privacy = privacy
        self.delta_table: DeltaTable | None = None

    def setup(self, model, fed, config) -> None:
        super().setup(model, fed, config)
        self.delta_table = DeltaTable(
            fed.num_clients, model.feature_dim, dtype_bytes=config.wire_dtype_bytes
        )

    def _client_delta(self, round_idx: int, client_id: int, phase: int = 0) -> np.ndarray:
        """Compute (and optionally privatize) client k's mean embedding
        under the *current workspace model* parameters.

        Privacy noise draws from a dedicated ``(round, client, phase)``
        stream so the numbers do not depend on the order clients execute
        in (serial/parallel equivalence); ``phase`` separates multiple
        delta computations for the same client within one round.
        """
        assert self.model is not None and self.fed is not None and self.config is not None
        with self.tracer.span("delta_compute", client=client_id):
            shard = self.fed.clients[client_id]
            delta = compute_mean_embedding(self.model, shard, self.config.eval_batch)
            if self.privacy is not None:
                rng = np.random.default_rng(
                    [self.config.seed, round_idx, client_id, 0xD9, phase]
                )
                delta = self.privacy.privatize(delta, batch_size=len(shard), rng=rng)
        return delta

    def _traced_reg_hook(self, hook):
        """Wrap a regularizer hook so each evaluation emits a span."""
        if not self.tracer.enabled:
            return hook
        tracer = self.tracer

        def traced(features):
            with tracer.span("regularizer"):
                return hook(features)

        return traced

    def delta_payload_bytes(self) -> int:
        """Wire size of one delta vector."""
        assert self.model is not None and self.config is not None
        return self.model.feature_dim * self.config.wire_dtype_bytes
