"""FedNova (Wang et al., NeurIPS 2020) — normalized averaging.

Reference [30] of the paper ("tackling the objective inconsistency
problem in heterogeneous federated optimization").  When clients run
different numbers of local steps (or the same number with different
effective progress), plain FedAvg optimizes a mismatched objective;
FedNova normalizes each client's cumulative update by its local step
count before averaging, then applies the weighted-average effective step:

    d_k  = (x - y_k) / tau_k                (normalized update direction)
    x   <- x - (sum_k p_k tau_k) * sum_k p_k d_k

With homogeneous tau_k this reduces to FedAvg, which the tests verify.
This implementation also supports heterogeneous local steps via the
``local_steps_fn`` knob (clients may do fewer steps than E — stragglers).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.algorithms.base import FederatedAlgorithm, RoundStats
from repro.fl.client import local_sgd_steps
from repro.fl.comm import CommLedger
from repro.nn.serialization import get_flat_params


class FedNova(FederatedAlgorithm):
    """Normalized-averaging FedAvg variant.

    Args:
        local_steps_fn: optional (round, client) -> step count override,
            for simulating heterogeneous local work.  Defaults to the
            config's E everywhere.
    """

    name = "fednova"

    def __init__(self, local_steps_fn: Callable[[int, int], int] | None = None) -> None:
        super().__init__()
        self.local_steps_fn = local_steps_fn

    def _steps_for(self, round_idx: int, client_id: int) -> int:
        assert self.config is not None
        if self.local_steps_fn is None:
            return self.config.local_steps
        steps = int(self.local_steps_fn(round_idx, client_id))
        return max(1, steps)

    def run_round(self, round_idx: int, selected: np.ndarray) -> RoundStats:
        self._require_setup()
        assert (
            self.model is not None
            and self.fed is not None
            and self.config is not None
            and self.ledger is not None
            and self.global_params is not None
        )
        tracer = self.tracer
        if self.fault_model is not None:
            selected = self.fault_model.surviving_clients(selected)
        with tracer.span("broadcast"):
            self._charge_broadcast(selected)

        x = self.global_params
        weights = self.fed.client_sizes[selected].astype(np.float64)
        weights /= weights.sum()

        directions: list[np.ndarray] = []
        taus: list[int] = []
        task_losses: list[float] = []
        for client_id in selected:
            cid = int(client_id)
            tau = self._steps_for(round_idx, cid)
            with tracer.span("local_train", client=cid):
                self._load_global()
                result = local_sgd_steps(
                    self.model,
                    self.fed.clients[cid],
                    self.config.with_updates(local_steps=tau),
                    self.client_rng(round_idx, cid),
                    step_offset=round_idx * self.config.local_steps,
                )
                task_losses.append(result.mean_task_loss)
                y_k = get_flat_params(self.model)
                y_k, wire = self._apply_upload_pipeline(round_idx, cid, y_k)
                self.ledger.charge(CommLedger.UP, "model", wire)
            directions.append((x - y_k) / tau)
            taus.append(tau)

        with tracer.span("aggregate"):
            effective_tau = float(np.dot(weights, taus))
            mean_direction = np.sum(
                [w * d for w, d in zip(weights, directions)], axis=0
            )
            self.global_params = x - effective_tau * mean_direction
            self._post_aggregate(round_idx, selected)
        return RoundStats(train_loss=float(np.dot(weights, task_losses)))
