"""FedNova (Wang et al., NeurIPS 2020) — normalized averaging.

Reference [30] of the paper ("tackling the objective inconsistency
problem in heterogeneous federated optimization").  When clients run
different numbers of local steps (or the same number with different
effective progress), plain FedAvg optimizes a mismatched objective;
FedNova normalizes each client's cumulative update by its local step
count before averaging, then applies the weighted-average effective step:

    d_k  = (x - y_k) / tau_k                (normalized update direction)
    x   <- x - (sum_k p_k tau_k) * sum_k p_k d_k

With homogeneous tau_k this reduces to FedAvg, which the tests verify.
This implementation also supports heterogeneous local steps via the
``local_steps_fn`` knob (clients may do fewer steps than E — stragglers).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.algorithms.base import FederatedAlgorithm
from repro.fl.config import FLConfig
from repro.fl.parallel import ClientUpdate


class FedNova(FederatedAlgorithm):
    """Normalized-averaging FedAvg variant.

    Args:
        local_steps_fn: optional (round, client) -> step count override,
            for simulating heterogeneous local work.  Defaults to the
            config's E everywhere.
    """

    name = "fednova"

    def __init__(self, local_steps_fn: Callable[[int, int], int] | None = None) -> None:
        super().__init__()
        self.local_steps_fn = local_steps_fn

    def _steps_for(self, round_idx: int, client_id: int) -> int:
        assert self.config is not None
        if self.local_steps_fn is None:
            return self.config.local_steps
        steps = int(self.local_steps_fn(round_idx, client_id))
        return max(1, steps)

    def _local_config(self, round_idx: int, client_id: int) -> FLConfig:
        assert self.config is not None
        tau = self._steps_for(round_idx, client_id)
        if tau == self.config.local_steps:
            return self.config
        return self.config.with_updates(local_steps=tau)

    def _aggregate_updates(
        self, round_idx: int, selected: np.ndarray, updates: list[ClientUpdate]
    ) -> np.ndarray:
        assert self.fed is not None and self.global_params is not None
        x = self.global_params
        weights = self.fed.client_sizes[selected].astype(np.float64)
        weights /= weights.sum()
        taus = [u.num_steps for u in updates]
        directions = [(x - u.params) / tau for u, tau in zip(updates, taus)]
        effective_tau = float(np.dot(weights, taus))
        mean_direction = np.sum([w * d for w, d in zip(weights, directions)], axis=0)
        return x - effective_tau * mean_direction
