"""Post-hoc personalization (the paper's future-work direction).

The conclusion suggests combining the centralized framework with
"personalized federated learning ... to improve the generalization of
the global model and the personalization performance of local models
simultaneously."  This module implements the standard strong baseline
for that direction: **local fine-tuning** — after federated training,
each client adapts a copy of the global model to its own shard for a few
steps, and we measure both the personalized local accuracy and the
retained global accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.dataset import FederatedDataset
from repro.fl.client import evaluate_model, local_sgd_steps
from repro.fl.config import FLConfig
from repro.models.split import SplitModel
from repro.nn.serialization import set_flat_params


@dataclass
class PersonalizationResult:
    """Per-client accuracies before and after local fine-tuning."""

    global_local_accuracy: np.ndarray  # global model on each client's data
    personalized_local_accuracy: np.ndarray  # fine-tuned model, same data
    personalized_global_accuracy: np.ndarray  # fine-tuned model on test set

    def mean_personalization_gain(self) -> float:
        """Average local-accuracy improvement from fine-tuning."""
        return float(
            (self.personalized_local_accuracy - self.global_local_accuracy).mean()
        )

    def mean_forgetting(self, global_test_accuracy: float) -> float:
        """Average drop in global-test accuracy caused by fine-tuning."""
        return float(
            (global_test_accuracy - self.personalized_global_accuracy).mean()
        )


def personalize(
    global_params: np.ndarray,
    fed: FederatedDataset,
    model_fn: Callable[[], SplitModel],
    finetune_steps: int = 10,
    lr: float = 0.05,
    batch_size: int = 16,
    seed: int = 0,
    head_only: bool = False,
) -> PersonalizationResult:
    """Fine-tune the global model locally on every client.

    Args:
        global_params: the trained global flat parameter vector.
        fed: the federation whose clients personalize.
        model_fn: the model factory used in training.
        finetune_steps: local SGD steps per client.
        lr: fine-tuning learning rate.
        batch_size: fine-tuning minibatch size.
        seed: randomness for batch draws.
        head_only: freeze the feature extractor phi and adapt only the
            classifier head (the cheaper personalization variant).
    """
    model = model_fn()
    config = FLConfig(
        rounds=1, local_steps=finetune_steps, batch_size=batch_size, lr=lr, seed=seed
    )
    num_clients = fed.num_clients
    before = np.zeros(num_clients)
    after_local = np.zeros(num_clients)
    after_global = np.zeros(num_clients)

    def freeze_features(m: SplitModel) -> None:
        for p in m.features.parameters():
            p.grad[...] = 0.0

    for cid, shard in enumerate(fed.clients):
        set_flat_params(model, global_params)
        _loss, acc = evaluate_model(model, shard)
        before[cid] = acc
        rng = np.random.default_rng([seed, 0xBE57, cid])
        local_sgd_steps(
            model,
            shard,
            config,
            rng,
            grad_hook=freeze_features if head_only else None,
        )
        _loss, after_local[cid] = evaluate_model(model, shard)
        _loss, after_global[cid] = evaluate_model(model, fed.test)
    return PersonalizationResult(
        global_local_accuracy=before,
        personalized_local_accuracy=after_local,
        personalized_global_accuracy=after_global,
    )
