"""rFedAvg+ — Algorithm 2 of the paper.

Two changes over rFedAvg:

1. **Double synchronization.**  After aggregation the server broadcasts
   the *new global model* a second time and every participating client
   recomputes its delta with it, so all deltas in the table come from
   one consistent model (smaller convergence constant C2 < C3).
2. **Leave-one-out averaging.**  Instead of the full (N, d) table, each
   client receives only the average of the other clients' deltas
   ``delta^{-k}`` and optimizes ``r~_k = ||delta^k - delta^{-k}||^2``,
   which has the same gradient as the pairwise form but shrinks the
   broadcast from O(d N^2) to O(d N).

The price is a second model broadcast per round, which the ledger
charges honestly.  That broadcast (plus the delta re-upload) is the
``O(d N)`` term that dominates cross-device runs, so it gets its own
compression knob: ``FLConfig.sync_compression`` runs the second
synchronization through a :class:`~repro.fl.compression.CompressionPipeline`
— the server sends ``compress(new_global - round_global)`` (clients
already hold the round's phase-1 model, so only the aggregation step
crosses the wire) and every client sends back ``compress(delta_k)``,
each side keeping an error-feedback residual so the lossy exchange
stays convergent.  Deltas are then computed under the *reconstructed*
model on both sides, keeping server state and client state consistent.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.regularized import RegularizedAlgorithm
from repro.core.privacy import GaussianDeltaMechanism
from repro.core.regularizer import DistributionRegularizer
from repro.fl.comm import CommLedger
from repro.fl.compression import compressor_from_spec
from repro.nn.serialization import set_flat_params

# Dedicated rng stream tag for second-synchronization compression (the
# upload pipeline uses 0xC0, privacy deltas 0xD9).
_SYNC_STREAM = 0xD5


class RFedAvgPlus(RegularizedAlgorithm):
    """Distribution-regularized FedAvg with consistent global mappings."""

    name = "rfedavg+"

    def __init__(
        self,
        lam: float = 1e-4,
        privacy: GaussianDeltaMechanism | None = None,
        delta_cache: bool | int = True,
    ) -> None:
        super().__init__(
            lam,
            mode=DistributionRegularizer.LOO,
            privacy=privacy,
            delta_cache=delta_cache,
        )
        self._sync_pipeline = None
        self._sync_model_residual: np.ndarray | None = None
        self._sync_delta_residuals = None
        self._sync_reference: np.ndarray | None = None

    def setup(self, model, fed, config) -> None:
        super().setup(model, fed, config)
        spec = getattr(config, "sync_compression", "none")
        self._sync_pipeline = compressor_from_spec(spec)
        self._sync_model_residual = None
        self._sync_delta_residuals = None
        self._sync_reference = None
        if self._sync_pipeline is not None and getattr(config, "error_feedback", True):
            # Server-side residual for the model re-broadcast, per-client
            # residuals for the delta re-uploads (sharded/spillable under
            # the same layout rule as every other per-client table).
            self._sync_model_residual = np.zeros(self.model_size, dtype=np.float64)
            self._sync_delta_residuals = self._make_state_table(model.feature_dim)

    def checkpoint_state(self) -> dict:
        state = super().checkpoint_state()
        if self._sync_model_residual is not None:
            state["sync_model_residual"] = self._sync_model_residual
        if self._sync_delta_residuals is not None:
            state["sync_delta_residuals"] = (
                self._sync_delta_residuals.checkpoint_segments()
            )
        return state

    def restore_checkpoint_state(self, state: dict) -> None:
        super().restore_checkpoint_state(state)
        if self._sync_model_residual is not None and "sync_model_residual" in state:
            self._sync_model_residual = np.array(
                state["sync_model_residual"], dtype=np.float64, copy=True
            )
        if self._sync_delta_residuals is not None and "sync_delta_residuals" in state:
            self._sync_delta_residuals.restore_checkpoint_segments(
                state["sync_delta_residuals"]
            )

    def _reg_hook(self, round_idx: int, client_id: int):
        assert self.delta_table is not None
        if not self.delta_table.any_reported:
            return None
        target = self.delta_table.mean_of_others(client_id)
        regularizer = self.regularizer

        def hook(features: np.ndarray):
            result = regularizer.evaluate(features, target)
            return result.loss, result.feature_grad

        return self._traced_reg_hook(hook)

    def _charge_broadcast(self, selected: np.ndarray) -> None:
        """Phase-1 downlink: model + each client's own delta^{-k}."""
        super()._charge_broadcast(selected)
        assert self.ledger is not None and self.delta_table is not None
        if self.delta_table.any_reported:
            self.ledger.charge(
                CommLedger.DOWN,
                "delta",
                self.model.feature_dim,
                copies=len(selected),
            )

    def _aggregate_updates(self, round_idx, selected, updates):
        if self._sync_pipeline is not None:
            # The compressed second sync sends the *aggregation step*
            # relative to the model clients already hold — the round's
            # phase-1 global, which is the current value right before
            # aggregation replaces it (both execution engines call this
            # at that moment).
            self._sync_reference = self.global_params
        return super()._aggregate_updates(round_idx, selected, updates)

    def _post_aggregate(self, round_idx: int, selected: np.ndarray) -> None:
        """Phase 2: second sync — deltas from the fresh global model."""
        assert (
            self.ledger is not None
            and self.delta_table is not None
            and self.model is not None
        )
        if self._sync_pipeline is not None:
            self._post_aggregate_compressed(round_idx, selected)
            return
        with self.tracer.span("delta_sync"):
            # Server sends the aggregated model back down...
            self.ledger.charge(
                CommLedger.DOWN, "model", self.model_size, copies=len(selected)
            )
            # ...and every participating client computes its delta with it.
            self._load_global()
            for client_id in selected:
                cid = int(client_id)
                self.delta_table.update(cid, self._client_delta(round_idx, cid, phase=1))
            self.ledger.charge(
                CommLedger.UP, "delta", self.model.feature_dim, copies=len(selected)
            )

    def _post_aggregate_compressed(self, round_idx: int, selected: np.ndarray) -> None:
        """Second sync through the ``sync_compression`` pipeline.

        Downlink: ``compress(new_global - round_global [+ e_model])``;
        clients reconstruct ``model_hat`` and compute their deltas under
        it.  Uplink: each delta goes back as ``compress(delta_k [+
        e_k])`` and the server stores the *reconstruction* — both sides
        see the same lossy values, so the leave-one-out targets stay
        consistent.  Everything runs server-side in selection order,
        which keeps serial/parallel/wire/async(zero-latency) runs
        bit-identical.
        """
        assert (
            self.global_params is not None
            and self._sync_reference is not None
            and self.config is not None
        )
        pipeline = self._sync_pipeline
        dtype_bytes = self.ledger.dtype_bytes
        feature_dim = self.model.feature_dim
        with self.tracer.span("delta_sync"):
            rng = np.random.default_rng([self.config.seed, round_idx, _SYNC_STREAM])
            target = self.global_params - self._sync_reference
            if self._sync_model_residual is not None:
                target = target + self._sync_model_residual
            recon, wire_size = pipeline.compress(target, rng)
            if self._sync_model_residual is not None:
                self._sync_model_residual = target - recon
            down_bytes = wire_size.nbytes(dtype_bytes) * len(selected)
            self.ledger.charge_bytes(CommLedger.DOWN, "model", down_bytes)
            # Clients hold the reconstructed model, so the deltas — and
            # next round's leave-one-out targets — are computed under it.
            set_flat_params(self.model, self._sync_reference + recon)
            up_bytes = 0
            for client_id in selected:
                cid = int(client_id)
                delta = self._client_delta(round_idx, cid, phase=1)
                crng = np.random.default_rng(
                    [self.config.seed, round_idx, cid, _SYNC_STREAM, 1]
                )
                if self._sync_delta_residuals is not None:
                    delta = delta + self._sync_delta_residuals.get(cid)
                drecon, dws = pipeline.compress(delta, crng)
                if self._sync_delta_residuals is not None:
                    self._sync_delta_residuals.update(cid, delta - drecon)
                self.delta_table.update(cid, drecon)
                up_bytes += dws.nbytes(dtype_bytes)
            self.ledger.charge_bytes(CommLedger.UP, "delta", up_bytes)
            if self.tracer.enabled:
                dense = (self.model_size + feature_dim) * dtype_bytes * len(selected)
                saved = dense - down_bytes - up_bytes
                if saved > 0:
                    self.tracer.metrics.counter("compression.bytes_saved").inc(saved)
