"""rFedAvg+ — Algorithm 2 of the paper.

Two changes over rFedAvg:

1. **Double synchronization.**  After aggregation the server broadcasts
   the *new global model* a second time and every participating client
   recomputes its delta with it, so all deltas in the table come from
   one consistent model (smaller convergence constant C2 < C3).
2. **Leave-one-out averaging.**  Instead of the full (N, d) table, each
   client receives only the average of the other clients' deltas
   ``delta^{-k}`` and optimizes ``r~_k = ||delta^k - delta^{-k}||^2``,
   which has the same gradient as the pairwise form but shrinks the
   broadcast from O(d N^2) to O(d N).

The price is a second model broadcast per round, which the ledger
charges honestly.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.regularized import RegularizedAlgorithm
from repro.core.privacy import GaussianDeltaMechanism
from repro.core.regularizer import DistributionRegularizer
from repro.fl.comm import CommLedger


class RFedAvgPlus(RegularizedAlgorithm):
    """Distribution-regularized FedAvg with consistent global mappings."""

    name = "rfedavg+"

    def __init__(
        self,
        lam: float = 1e-4,
        privacy: GaussianDeltaMechanism | None = None,
        delta_cache: bool | int = True,
    ) -> None:
        super().__init__(
            lam,
            mode=DistributionRegularizer.LOO,
            privacy=privacy,
            delta_cache=delta_cache,
        )

    def _reg_hook(self, round_idx: int, client_id: int):
        assert self.delta_table is not None
        if not self.delta_table.any_reported:
            return None
        target = self.delta_table.mean_of_others(client_id)
        regularizer = self.regularizer

        def hook(features: np.ndarray):
            result = regularizer.evaluate(features, target)
            return result.loss, result.feature_grad

        return self._traced_reg_hook(hook)

    def _charge_broadcast(self, selected: np.ndarray) -> None:
        """Phase-1 downlink: model + each client's own delta^{-k}."""
        super()._charge_broadcast(selected)
        assert self.ledger is not None and self.delta_table is not None
        if self.delta_table.any_reported:
            self.ledger.charge(
                CommLedger.DOWN,
                "delta",
                self.model.feature_dim,
                copies=len(selected),
            )

    def _post_aggregate(self, round_idx: int, selected: np.ndarray) -> None:
        """Phase 2: second sync — deltas from the fresh global model."""
        assert (
            self.ledger is not None
            and self.delta_table is not None
            and self.model is not None
        )
        with self.tracer.span("delta_sync"):
            # Server sends the aggregated model back down...
            self.ledger.charge(
                CommLedger.DOWN, "model", self.model_size, copies=len(selected)
            )
            # ...and every participating client computes its delta with it.
            self._load_global()
            for client_id in selected:
                cid = int(client_id)
                self.delta_table.update(cid, self._client_delta(round_idx, cid, phase=1))
            self.ledger.charge(
                CommLedger.UP, "delta", self.model.feature_dim, copies=len(selected)
            )
