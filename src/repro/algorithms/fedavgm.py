"""FedAvgM — FedAvg with server-side momentum (Hsu et al. 2019).

A standard non-IID mitigation from the same literature the paper draws
its baselines from: the server treats the round's average update as a
pseudo-gradient and applies heavy-ball momentum to it, which damps the
oscillation that label-skewed rounds induce (the instability visible in
the paper's Fig. 4/5 baseline curves).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import FederatedAlgorithm
from repro.exceptions import ConfigError
from repro.fl.server import weighted_average


class FedAvgM(FederatedAlgorithm):
    """FedAvg + server momentum.

    Args:
        server_momentum: heavy-ball coefficient beta in [0, 1).
        server_lr: scale on the aggregated update (1.0 = plain FedAvg
            direction).
    """

    name = "fedavgm"

    def __init__(self, server_momentum: float = 0.9, server_lr: float = 1.0) -> None:
        super().__init__()
        if not 0.0 <= server_momentum < 1.0:
            raise ConfigError(f"server_momentum must be in [0, 1), got {server_momentum}")
        if server_lr <= 0:
            raise ConfigError("server_lr must be positive")
        self.server_momentum = server_momentum
        self.server_lr = server_lr
        self._velocity: np.ndarray | None = None

    def setup(self, model, fed, config) -> None:
        super().setup(model, fed, config)
        self._velocity = np.zeros(self.model_size)

    def checkpoint_state(self) -> dict:
        state = super().checkpoint_state()
        state["velocity"] = self._velocity
        return state

    def restore_checkpoint_state(self, state: dict) -> None:
        super().restore_checkpoint_state(state)
        self._velocity = np.array(state["velocity"], copy=True)

    def _aggregate(
        self, round_idx: int, selected: np.ndarray, updates: list[np.ndarray]
    ) -> np.ndarray:
        assert (
            self.fed is not None
            and self.global_params is not None
            and self._velocity is not None
        )
        weights = self.fed.client_sizes[selected].astype(np.float64)
        averaged = weighted_average(updates, weights)
        pseudo_grad = self.global_params - averaged
        self._velocity = self.server_momentum * self._velocity + pseudo_grad
        return self.global_params - self.server_lr * self._velocity
