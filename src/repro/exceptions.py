"""Library-specific exception types."""


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """An experiment or algorithm configuration is invalid."""


class DataError(ReproError):
    """A dataset or partition is malformed."""


class ProtocolError(ReproError):
    """A federated protocol invariant was violated (e.g. payload shape)."""


class WireError(ReproError):
    """A payload cannot be encoded to / decoded from the packed wire format."""


class CheckpointError(ReproError):
    """A checkpoint file is corrupt, incomplete, or unreadable."""


class CheckpointMismatchError(CheckpointError):
    """A checkpoint was written by an incompatible run configuration."""
