"""Standalone FedAsync simulation (deprecated).

.. deprecated::
   This module is superseded by :mod:`repro.fl.async_engine` — run any
   registered algorithm with ``FLConfig(execution="async", runtime=...)``
   and it goes through the event-driven buffered engine with parallel
   execution, checkpointing and observability (``buffer_size=1`` with a
   per-client runtime reproduces the one-update-at-a-time FedAsync
   server).  Importing this module emits a :class:`DeprecationWarning`;
   it will be removed in a future cleanup.  It remains, for now, as the
   minimal pure-FedAsync reference: one client per server update,
   continuous re-dispatch, no buffering, no algorithm plug-in.  The
   record/history types are shared with the engine.

The paper's algorithms are synchronous — every round waits for all
selected clients.  Real cross-device fleets are asynchronous: clients
finish at different times and the server applies updates as they
arrive, discounted by *staleness* (how many server updates happened
since the client fetched its base model; Xie et al. 2019's FedAsync
weighting).

Server update on arrival of client k's model y trained from version v:

    staleness  s = t - v                     (t = current server version)
    weight     alpha_eff = alpha / (1 + s)^a
    w_{t+1} = (1 - alpha_eff) * w_t + alpha_eff * y

Each client's wall-clock per local round is drawn once from a speed
profile, making fast clients contribute proportionally more updates —
the async pathology the staleness discount exists to contain.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

warnings.warn(
    "repro.fl.async_sim is deprecated; use the first-class async engine — "
    "FLConfig(execution='async', runtime=..., buffer_size=1) through "
    "run_federated() — which runs every registered algorithm with "
    "parallel execution, checkpointing and observability",
    DeprecationWarning,
    stacklevel=2,
)

from repro.data.dataset import FederatedDataset
from repro.exceptions import ConfigError
from repro.fl.async_engine import AsyncHistory, AsyncUpdateRecord
from repro.fl.client import evaluate_model, local_sgd_steps
from repro.fl.config import FLConfig
from repro.models.split import SplitModel
from repro.nn.serialization import get_flat_params, set_flat_params

__all__ = [
    "AsyncConfig",
    "AsyncHistory",
    "AsyncUpdateRecord",
    "run_async_federated",
]


@dataclass(frozen=True)
class AsyncConfig:
    """Asynchronous-run hyperparameters."""

    max_updates: int = 100  # server updates to simulate
    local_steps: int = 5
    batch_size: int = 32
    lr: float = 0.1
    optimizer: str = "sgd"
    alpha: float = 0.6  # base mixing weight
    staleness_exponent: float = 0.5  # a in 1/(1+s)^a; 0 = no discount
    eval_every: int = 10  # evaluate every this many server updates
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_updates <= 0:
            raise ConfigError("max_updates must be positive")
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigError("alpha must be in (0, 1]")
        if self.staleness_exponent < 0:
            raise ConfigError("staleness_exponent must be non-negative")


def run_async_federated(
    fed: FederatedDataset,
    model_fn: Callable[[], SplitModel],
    client_round_times: np.ndarray,
    config: AsyncConfig,
) -> AsyncHistory:
    """Simulate FedAsync on ``fed``.

    Args:
        fed: the federation.
        model_fn: deterministic initial-model factory.
        client_round_times: per-client simulated seconds to complete one
            local round (heterogeneous speeds).
        config: async hyperparameters.

    Returns:
        :class:`AsyncHistory` with one record per applied server update.
    """
    times = np.asarray(client_round_times, dtype=np.float64)
    if times.shape != (fed.num_clients,) or (times <= 0).any():
        raise ConfigError("client_round_times must be positive, one per client")

    model = model_fn()
    global_params = get_flat_params(model)
    server_version = 0

    local_config = FLConfig(
        rounds=1,
        local_steps=config.local_steps,
        batch_size=config.batch_size,
        optimizer=config.optimizer,
        lr=config.lr,
        seed=config.seed,
    )

    # Event queue: (completion_time, client_id, base_version, base_params).
    queue: list[tuple[float, int, int, np.ndarray]] = []
    for client_id in range(fed.num_clients):
        heapq.heappush(
            queue, (times[client_id], client_id, 0, global_params.copy())
        )

    history = AsyncHistory()
    update_idx = 0
    while update_idx < config.max_updates:
        completion_time, client_id, base_version, base_params = heapq.heappop(queue)
        # Train the client from the model version it fetched.
        set_flat_params(model, base_params)
        rng = np.random.default_rng([config.seed, update_idx, client_id])
        result = local_sgd_steps(
            model, fed.clients[client_id], local_config, rng,
            step_offset=base_version * config.local_steps,
        )
        client_params = get_flat_params(model)

        staleness = server_version - base_version
        weight = config.alpha / (1.0 + staleness) ** config.staleness_exponent
        global_params = (1.0 - weight) * global_params + weight * client_params
        server_version += 1

        record = AsyncUpdateRecord(
            update_idx=update_idx,
            sim_time=completion_time,
            client_id=client_id,
            staleness=staleness,
            effective_weight=weight,
            train_loss=result.mean_task_loss,
        )
        if update_idx % config.eval_every == 0 or update_idx == config.max_updates - 1:
            set_flat_params(model, global_params)
            _loss, acc = evaluate_model(model, fed.test)
            record.test_accuracy = acc
        history.records.append(record)
        update_idx += 1

        # The client immediately fetches the fresh model and goes again.
        heapq.heappush(
            queue,
            (
                completion_time + times[client_id],
                client_id,
                server_version,
                global_params.copy(),
            ),
        )

    acc_curve = history.accuracies()
    history.final_accuracy = float(acc_curve[-1, 1]) if len(acc_curve) else None
    return history
