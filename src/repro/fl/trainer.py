"""The federated protocol loop.

:func:`run_federated` drives a full training job: round-by-round client
sampling, one algorithm round, periodic evaluation of the global model,
and metric / communication bookkeeping.  It is algorithm-agnostic — all
method-specific behaviour lives in :mod:`repro.algorithms` — and
execution-agnostic: ``config.execution`` selects between the
synchronous barrier loop here, the event-driven buffered engine in
:mod:`repro.fl.async_engine` (a scheduler swap; with instant runtimes
and a full-cohort buffer the two are bit-identical), and
``execution='serve'`` — the same synchronous loop with the per-client
work running in socket-connected worker processes (:mod:`repro.serve`;
``make_executor`` swaps the engine, so serve mode needs no trainer
changes and is bit-identical to 'sync' by the executor contract).

Observability: pass a :class:`repro.obs.Tracer` and every round emits a
nested span tree (``round`` > ``sample`` / ``broadcast`` /
``local_train`` per client / ``aggregate`` / ``eval``) plus byte
counters fed by the algorithm's communication ledger.  The default
:data:`~repro.obs.trace.NULL_TRACER` keeps the untraced path free of
overhead.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.data.dataset import FederatedDataset

if TYPE_CHECKING:  # imported for typing only; avoids a circular import
    from repro.algorithms.base import FederatedAlgorithm
from repro.exceptions import ConfigError
from repro.fl.client import evaluate_model
from repro.fl.config import FLConfig
from repro.fl.metrics import History, RoundRecord, StreamingHistory
from repro.fl.sampling import sample_cohort
from repro.models.split import SplitModel
from repro.nn.dtype import default_dtype
from repro.nn.serialization import set_flat_params
from repro.obs.sysinfo import record_scale_gauges
from repro.obs.trace import NULL_TRACER

RoundCallback = Callable[[RoundRecord], None]


def run_federated(
    algorithm: "FederatedAlgorithm",
    fed: FederatedDataset,
    model_fn: Callable[[], SplitModel],
    config: FLConfig,
    *,
    eval_per_client: bool = False,
    callbacks: Sequence[RoundCallback] | None = None,
    selector=None,
    tracer=None,
    runtime=None,
    region_observer=None,
    **removed,
) -> History:
    """Run one federated training job and return its :class:`History`.

    Args:
        algorithm: a constructed (not yet set up) algorithm strategy.
        fed: the partitioned dataset.
        model_fn: builds the initial global model; must be deterministic
            so repeated runs with the same seed are identical.
        config: federated hyperparameters.
        eval_per_client: additionally evaluate the final global model on
            each client's local shard (fairness analysis, Fig. 11).
        callbacks: per-round callables, each invoked with the finished
            :class:`RoundRecord` (printing, early-stopping bookkeeping,
            custom metric sinks).
        selector: optional :class:`~repro.fl.selection.ClientSelector`;
            defaults to uniform sampling at ``config.sample_ratio``.
        tracer: optional :class:`repro.obs.Tracer`; when given, rounds
            emit span trees, the ledger shares the tracer's metric
            registry, and the tracer observes every round record.
        runtime: optional :class:`~repro.fl.runtime.ClientRuntime`
            instance overriding ``config.runtime`` (async execution
            only); config specs cover the common models, an object here
            covers bespoke ones.
        region_observer: hierarchical topologies only — a callable
            invoked once per round with the per-region state dict (see
            :func:`repro.fl.hierarchy.run_hier_federated`).
    """
    if "progress" in removed:
        raise TypeError(
            "run_federated() no longer accepts 'progress='; it was deprecated "
            "in favour of callbacks=[fn] and has been removed — pass the "
            "callable in the callbacks sequence instead"
        )
    if removed:
        raise TypeError(
            f"run_federated() got unexpected keyword arguments {sorted(removed)}"
        )

    # The dtype policy wraps the entire job — model construction, local
    # training, aggregation, and evaluation all see config.dtype.  The
    # policy is process-global, so fork-started worker processes inherit
    # it automatically.
    with default_dtype(config.dtype):
        try:
            if getattr(config, "topology", "flat") != "flat":
                from repro.fl.hierarchy import run_hier_federated

                # execution='async' + hierarchy is rejected at config
                # construction; runtime= is likewise an async-only knob.
                if runtime is not None:
                    raise ConfigError(
                        "runtime= is an async-execution knob; set execution='async'"
                    )
                return run_hier_federated(
                    algorithm,
                    fed,
                    model_fn,
                    config,
                    eval_per_client=eval_per_client,
                    callbacks=callbacks,
                    selector=selector,
                    tracer=tracer,
                    region_observer=region_observer,
                )
            if region_observer is not None:
                raise ConfigError(
                    "region_observer= requires a hierarchical topology; set "
                    "topology='hier:R:P'"
                )
            if config.execution == "async":
                from repro.fl.async_engine import run_async_federated_engine

                return run_async_federated_engine(
                    algorithm,
                    fed,
                    model_fn,
                    config,
                    eval_per_client=eval_per_client,
                    callbacks=callbacks,
                    selector=selector,
                    tracer=tracer,
                    runtime=runtime,
                )
            if runtime is not None:
                raise ConfigError(
                    "runtime= is an async-execution knob; set execution='async'"
                )
            return _run_federated(
                algorithm,
                fed,
                model_fn,
                config,
                eval_per_client=eval_per_client,
                callbacks=callbacks,
                selector=selector,
                tracer=tracer,
            )
        finally:
            # The wire transport keeps a worker pool and a shared-memory
            # buffer alive across rounds; release them with the run.  An
            # executor stays usable — it re-creates its pool lazily.
            algorithm.executor.close()


# -- helpers shared by the sync loop and the async engine ---------------------------


def resolve_round_callbacks(
    callbacks: Sequence[RoundCallback] | None, tracer
) -> tuple[list[RoundCallback], "object"]:
    """Normalize the callback list and tracer (NULL_TRACER when absent);
    a live tracer observes every round record."""
    round_callbacks: list[RoundCallback] = list(callbacks) if callbacks else []
    if tracer is None:
        tracer = NULL_TRACER
    if tracer.enabled:
        round_callbacks.append(tracer.on_round)
    return round_callbacks, tracer


def build_history(algorithm_name: str, config: FLConfig) -> History:
    """The run's history in the mode ``config.history_mode`` selects.

    ``'append'`` keeps the historical unbounded record list;
    ``'stream'`` returns a :class:`StreamingHistory` that folds each
    record into O(1) running aggregates, spooling full records to
    ``<stream_dir>/history.jsonl`` when ``config.stream_dir`` is set.
    The mode is execution-only — it never changes what gets recorded.
    """
    if getattr(config, "history_mode", "append") != "stream":
        return History(algorithm=algorithm_name)
    stream_dir = getattr(config, "stream_dir", None)
    stream_path = None if stream_dir is None else os.path.join(stream_dir, "history.jsonl")
    return StreamingHistory(algorithm=algorithm_name, stream_path=stream_path)


def release_round_state(fed) -> None:
    """Round-boundary cleanup for virtual populations: drop the cohort's
    materialized shards so resident memory stays flat across rounds."""
    if getattr(fed, "virtual", False):
        fed.release()


def make_client_loss(algorithm, model, fed, config) -> Callable[[int], float]:
    """Loss of the current global model on one client's shard (the
    signal loss-based selectors rank by)."""

    def client_loss(client_id: int) -> float:
        assert algorithm.global_params is not None
        set_flat_params(model, algorithm.global_params)
        loss, _acc = evaluate_model(model, fed.clients[client_id], config.eval_batch)
        return loss

    return client_loss


def select_round_clients(
    round_idx: int,
    fed: FederatedDataset,
    config: FLConfig,
    round_rng: np.random.Generator,
    selector,
    client_loss: Callable[[int], float],
) -> np.ndarray:
    """One round's cohort — the configured sampler or a custom selector.

    Both execution modes draw from the same ``round_rng`` stream in the
    same per-round order, which is one of the preconditions for the
    async engine's zero-latency bit-identity.  ``config.sampler``
    selects the cohort-drawing strategy (``'uniform'`` is the historical
    stream; ``'reservoir'`` / ``'stratified[:k]'`` never enumerate the
    population — see :mod:`repro.fl.sampling`).
    """
    from repro.fl.selection import SelectionContext

    if selector is None:
        return sample_cohort(
            fed.num_clients,
            config.sample_ratio,
            round_rng,
            sampler=getattr(config, "sampler", "uniform"),
        )
    context = SelectionContext(
        round_idx=round_idx, fed=fed, rng=round_rng, client_loss=client_loss
    )
    return np.asarray(selector.select(context), dtype=np.int64)


def eval_per_client_accuracy(algorithm, model, fed, config, tracer) -> np.ndarray:
    """Final global model's accuracy on each client's shard (Fig. 11)."""
    with tracer.span("eval_per_client"):
        assert algorithm.global_params is not None
        set_flat_params(model, algorithm.global_params)
        per_client = np.zeros(fed.num_clients)
        eval_sets = fed.client_test if fed.client_test else fed.clients
        for k, shard in enumerate(eval_sets):
            _loss, acc = evaluate_model(model, shard, config.eval_batch)
            per_client[k] = acc
        return per_client


# -- the synchronous barrier loop ---------------------------------------------------


def _run_federated(
    algorithm: "FederatedAlgorithm",
    fed: FederatedDataset,
    model_fn: Callable[[], SplitModel],
    config: FLConfig,
    *,
    eval_per_client: bool = False,
    callbacks: Sequence[RoundCallback] | None = None,
    selector=None,
    tracer=None,
) -> History:
    round_callbacks, tracer = resolve_round_callbacks(callbacks, tracer)

    model = model_fn()
    algorithm.tracer = tracer
    algorithm.setup(model, fed, config)
    round_rng = np.random.default_rng([config.seed, 0xF1])
    client_loss = make_client_loss(algorithm, model, fed, config)

    history = build_history(algorithm.name, config)

    # Crash-safe checkpointing (repro.ckpt).  The manager owns the
    # directory; a resume restores the newest valid checkpoint into the
    # freshly set-up objects above and re-enters the loop at the next
    # round.  Every per-(round, client, phase) stream is derived from
    # the master seed, so restoring the round RNG + server state + the
    # ledger/history cut makes the continuation bit-identical to an
    # uninterrupted run.
    manager = None
    start_round = 0
    if config.checkpoint_dir is not None:
        from repro.ckpt.manager import CheckpointManager
        from repro.ckpt.state import capture_run_state, restore_run_state

        manager = CheckpointManager(config.checkpoint_dir, keep=config.checkpoint_keep)
        if config.resume:
            loaded = manager.load_latest_valid()
            if loaded is not None:
                manifest, sections = loaded
                last_round = restore_run_state(
                    manifest,
                    sections,
                    algorithm=algorithm,
                    round_rng=round_rng,
                    history=history,
                    config=config,
                    tracer=tracer,
                )
                start_round = last_round + 1

    for round_idx in range(start_round, config.rounds):
        with tracer.span("round", round=round_idx):
            with tracer.span("sample"):
                selected = select_round_clients(
                    round_idx, fed, config, round_rng, selector, client_loss
                )
            if tracer.enabled:
                for client_id in selected:
                    tracer.metrics.counter(
                        "clients.selected", client=int(client_id)
                    ).inc()
            started = time.perf_counter()
            stats = algorithm.run_round(round_idx, selected)
            elapsed = time.perf_counter() - started
            assert algorithm.ledger is not None
            round_comm = algorithm.ledger.end_round()

            record = RoundRecord(
                round_idx=round_idx,
                train_loss=stats.train_loss,
                reg_loss=stats.reg_loss,
                wall_time_sec=elapsed,
                bytes_down=round_comm["down"],
                bytes_up=round_comm["up"],
                num_selected=len(selected),
            )
            is_eval_round = (
                round_idx % config.eval_every == 0 or round_idx == config.rounds - 1
            )
            if is_eval_round:
                with tracer.span("eval"):
                    assert algorithm.global_params is not None
                    set_flat_params(model, algorithm.global_params)
                    test_loss, test_acc = evaluate_model(
                        model, fed.test, config.eval_batch
                    )
                    record.test_loss = test_loss
                    record.test_accuracy = test_acc
            history.append(record)
            for callback in round_callbacks:
                callback(record)
            if manager is not None and (
                (round_idx + 1) % config.checkpoint_every == 0
                or round_idx == config.rounds - 1
            ):
                # After history/ledger bookkeeping: the snapshot is a
                # consistent between-rounds cut of the whole run.
                with tracer.span("checkpoint"):
                    meta, sections = capture_run_state(
                        round_idx=round_idx,
                        algorithm=algorithm,
                        round_rng=round_rng,
                        history=history,
                        config=config,
                        tracer=tracer,
                    )
                    manager.save(round_idx, meta, sections)
            record_scale_gauges(tracer, fed)
        release_round_state(fed)

    history.final_accuracy = history.last_accuracy()
    if eval_per_client:
        history.per_client_accuracy = eval_per_client_accuracy(
            algorithm, model, fed, config, tracer
        )
    return history
