"""Client selection strategies.

The paper's conclusion names "adaptive participant selection" as the
future-work direction to combine with its regularization.  This module
provides the selection abstraction plus two strategies:

* :class:`UniformSelector` — the paper's setting: uniformly random
  ``SR * N`` clients per round.
* :class:`PowerOfChoiceSelector` — Cho et al.'s biased selection: draw a
  candidate set, evaluate the current global model's loss on each
  candidate's data, and pick the highest-loss clients.  Converges faster
  on skewed data at some fairness cost.

A selector receives a :class:`SelectionContext` giving it the round
index, the federation, and a loss oracle for the current global model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.dataset import FederatedDataset
from repro.exceptions import ConfigError


@dataclass
class SelectionContext:
    """What a selector may look at when choosing participants."""

    round_idx: int
    fed: FederatedDataset
    rng: np.random.Generator
    client_loss: Callable[[int], float]  # global-model loss on client k's shard


class ClientSelector:
    """Interface: choose this round's participants."""

    def select(self, context: SelectionContext) -> np.ndarray:
        raise NotImplementedError


def _count(num_clients: int, sample_ratio: float) -> int:
    if not 0.0 < sample_ratio <= 1.0:
        raise ConfigError(f"sample_ratio must be in (0, 1], got {sample_ratio}")
    return max(1, int(round(sample_ratio * num_clients)))


class UniformSelector(ClientSelector):
    """Uniformly random without replacement (the FedAvg default)."""

    def __init__(self, sample_ratio: float) -> None:
        self.sample_ratio = sample_ratio

    def select(self, context: SelectionContext) -> np.ndarray:
        n = context.fed.num_clients
        k = _count(n, self.sample_ratio)
        if self.sample_ratio >= 1.0:
            return np.arange(n)
        return np.sort(context.rng.choice(n, size=k, replace=False))


class PowerOfChoiceSelector(ClientSelector):
    """Loss-biased selection (Cho et al. 2020, pi-pow-d).

    Args:
        sample_ratio: fraction of clients to select (k = SR * N).
        candidate_factor: candidate pool size as a multiple of k
            (d = factor * k, capped at N).  factor = 1 reduces to
            uniform selection.
    """

    def __init__(self, sample_ratio: float, candidate_factor: float = 3.0) -> None:
        if candidate_factor < 1.0:
            raise ConfigError("candidate_factor must be >= 1")
        self.sample_ratio = sample_ratio
        self.candidate_factor = candidate_factor

    def select(self, context: SelectionContext) -> np.ndarray:
        n = context.fed.num_clients
        k = _count(n, self.sample_ratio)
        pool = min(n, max(k, int(round(self.candidate_factor * k))))
        candidates = context.rng.choice(n, size=pool, replace=False)
        losses = np.array([context.client_loss(int(c)) for c in candidates])
        top = candidates[np.argsort(-losses)[:k]]
        return np.sort(top)
