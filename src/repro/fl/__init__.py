"""Federated-learning simulation runtime.

The runtime separates the *protocol loop* (:mod:`repro.fl.trainer`) from
the *algorithm* (:mod:`repro.algorithms`): the trainer owns client
sampling, the round structure, evaluation and bookkeeping; an algorithm
plugs in its local-update and aggregation rules plus any extra
synchronization phases (rFedAvg+ uses one).

Beyond the synchronous loop the package provides the surrounding
systems a deployment needs: byte-exact communication accounting
(:mod:`repro.fl.comm`) with a network-time model
(:mod:`repro.fl.network`), a packed flat-buffer wire format
(:mod:`repro.fl.wire`), parallel client execution with
serial-equivalence guarantees (:mod:`repro.fl.parallel`), upload
compression
(:mod:`repro.fl.compression`), failure injection
(:mod:`repro.fl.faults`), secure aggregation (:mod:`repro.fl.secure`),
adaptive client selection (:mod:`repro.fl.selection`), event-driven
asynchronous execution with buffered staleness-aware aggregation
(:mod:`repro.fl.async_engine` behind ``FLConfig(execution="async")``,
with per-client latency models in :mod:`repro.fl.runtime`),
region-parallel hierarchical aggregation (:mod:`repro.fl.hierarchy`
behind ``FLConfig(topology="hier:R:P")``), and multi-process serving
over real sockets (:mod:`repro.serve` behind
``FLConfig(execution="serve")``).
"""

from repro.fl.config import (
    EXECUTION_MODES,
    EXECUTOR_MODES,
    FLConfig,
    OPTIMIZERS,
    RUNTIME_KINDS,
    validate_choice,
)
from repro.fl.comm import CommLedger, vector_bytes
from repro.fl.parallel import (
    TRANSPORTS,
    ClientExecutor,
    ClientUpdate,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.fl.wire import (
    FrameAssembler,
    frame,
    pack,
    pack_client_update,
    pack_state,
    unpack,
    unpack_client_update,
    unpack_state,
)
from repro.fl.metrics import RoundRecord, History
from repro.fl.sampling import sample_clients
from repro.fl.client import evaluate_model, local_sgd_steps
from repro.fl.server import weighted_average
from repro.fl.trainer import run_federated
from repro.fl.compression import (
    Compressor,
    NoCompression,
    TopKSparsifier,
    RandomSubsampler,
    UniformQuantizer,
    WireSize,
    make_compressor,
)
from repro.fl.faults import FaultModel
from repro.fl.network import LinkModel, round_network_time, estimate_run_network_time
from repro.fl.secure import SecureAggregator, secure_weighted_average
from repro.fl.async_engine import (
    AsyncHistory,
    AsyncUpdateRecord,
    run_async_federated_engine,
)
from repro.fl.runtime import (
    ClientRuntime,
    GaussianRuntime,
    InstantRuntime,
    TraceRuntime,
    make_runtime,
)
from repro.fl.hierarchy import (
    HierarchyConfig,
    HierarchicalHistory,
    RegionSet,
    assign_edges,
    run_hier_federated,
    run_hierarchical,
)
from repro.fl.selection import (
    ClientSelector,
    SelectionContext,
    UniformSelector,
    PowerOfChoiceSelector,
)


__all__ = [
    "FLConfig",
    "CommLedger",
    "vector_bytes",
    "ClientExecutor",
    "ClientUpdate",
    "ParallelExecutor",
    "SerialExecutor",
    "TRANSPORTS",
    "make_executor",
    "pack",
    "unpack",
    "frame",
    "FrameAssembler",
    "pack_state",
    "unpack_state",
    "pack_client_update",
    "unpack_client_update",
    "RoundRecord",
    "History",
    "sample_clients",
    "evaluate_model",
    "local_sgd_steps",
    "weighted_average",
    "run_federated",
    "Compressor",
    "NoCompression",
    "TopKSparsifier",
    "RandomSubsampler",
    "UniformQuantizer",
    "WireSize",
    "make_compressor",
    "FaultModel",
    "LinkModel",
    "round_network_time",
    "estimate_run_network_time",
    "SecureAggregator",
    "secure_weighted_average",
    "ClientSelector",
    "SelectionContext",
    "UniformSelector",
    "PowerOfChoiceSelector",
    "EXECUTION_MODES",
    "EXECUTOR_MODES",
    "OPTIMIZERS",
    "RUNTIME_KINDS",
    "validate_choice",
    "ClientRuntime",
    "InstantRuntime",
    "GaussianRuntime",
    "TraceRuntime",
    "make_runtime",
    "AsyncHistory",
    "AsyncUpdateRecord",
    "run_async_federated_engine",
    "HierarchyConfig",
    "HierarchicalHistory",
    "RegionSet",
    "assign_edges",
    "run_hier_federated",
    "run_hierarchical",
]
