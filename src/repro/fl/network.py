"""Network cost model: bytes -> estimated wall-clock communication time.

The paper's efficiency evaluation (Fig. 10, Table III) reasons about
communication in rounds and bytes; real deployments care about seconds.
This model converts a run's communication ledger into per-round time
estimates under a simple but standard link model:

* the server's downlink is shared (broadcasts serialize),
* client uplinks are parallel but the slowest straggler gates the round,
* every message pays a fixed latency.

It deliberately stays analytic — the simulator measures *compute* time
for Fig. 10c/d, and this model adds the *network* component that a CPU
simulation cannot observe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigError
from repro.fl.comm import CommLedger


@dataclass(frozen=True)
class LinkModel:
    """Link parameters (defaults ~ a mid-tier WAN federation).

    Attributes:
        server_bandwidth_bps: shared server downlink bytes/sec.
        client_bandwidth_bps: per-client uplink bytes/sec.
        latency_sec: per-message one-way latency.
    """

    server_bandwidth_bps: float = 125e6  # 1 Gbit/s
    client_bandwidth_bps: float = 2.5e6  # 20 Mbit/s
    latency_sec: float = 0.05

    def __post_init__(self) -> None:
        if self.server_bandwidth_bps <= 0 or self.client_bandwidth_bps <= 0:
            raise ConfigError("bandwidths must be positive")
        if self.latency_sec < 0:
            raise ConfigError("latency must be non-negative")


def round_network_time(
    bytes_down: int,
    bytes_up: int,
    num_clients: int,
    link: LinkModel,
    sync_phases: int = 1,
) -> float:
    """Estimated network seconds for one round.

    Args:
        bytes_down: total downlink bytes this round (all clients).
        bytes_up: total uplink bytes this round.
        num_clients: participating clients (gates uplink parallelism).
        link: the link model.
        sync_phases: synchronization barriers per round (rFedAvg+ has 2).
    """
    if num_clients <= 0:
        raise ConfigError("num_clients must be positive")
    down_time = bytes_down / link.server_bandwidth_bps
    # Clients upload in parallel; each ships ~bytes_up / num_clients.
    up_time = (bytes_up / num_clients) / link.client_bandwidth_bps
    latency = 2.0 * link.latency_sec * sync_phases
    return down_time + up_time + latency


def estimate_run_network_time(
    ledger: CommLedger,
    num_clients: int,
    link: LinkModel | None = None,
    sync_phases: int = 1,
) -> float:
    """Total estimated network seconds over every closed round."""
    link = link if link is not None else LinkModel()
    total = 0.0
    for round_idx in range(ledger.rounds):
        per_round = ledger.round_bytes(round_idx)
        total += round_network_time(
            per_round.get(CommLedger.DOWN, 0),
            per_round.get(CommLedger.UP, 0),
            num_clients,
            link,
            sync_phases,
        )
    return total
