"""Federated training configuration and the string-choice registry.

Every string-valued knob with a closed set of values (``executor``,
``transport``, ``optimizer``, ``dtype``, ``execution``, ``runtime``) is
validated through one registry here — :data:`CHOICES` plus
:func:`validate_choice` — so the CLI, :class:`FLConfig` and
:func:`repro.run_experiment` all raise the *same* typo-suggesting
:class:`~repro.exceptions.ConfigError` instead of three divergent
checks.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, replace

from repro.exceptions import ConfigError
from repro.nn.optim import LRSchedule

# -- the string-choice knob registry ------------------------------------------------

EXECUTOR_MODES = ("auto", "serial", "process", "chunked")
TRANSPORTS = ("wire", "pickle")
EXECUTION_MODES = ("sync", "async", "serve")
RUNTIME_KINDS = ("instant", "gaussian", "trace")
OPTIMIZERS = ("sgd", "rmsprop", "adam")
DTYPES = ("float32", "float64")
SAMPLER_KINDS = ("uniform", "reservoir", "stratified")
HISTORY_MODES = ("append", "stream")
STATE_SHARDING_MODES = ("auto", "dense", "sharded")
COMPRESSION_STAGES = ("none", "topk", "randk", "subsample", "sketch", "qsgd", "sign", "quantize")
TOPOLOGY_KINDS = ("flat", "hier")

CHOICES: dict[str, tuple[str, ...]] = {
    "executor": EXECUTOR_MODES,
    "transport": TRANSPORTS,
    "execution": EXECUTION_MODES,
    "runtime": RUNTIME_KINDS,
    "optimizer": OPTIMIZERS,
    "dtype": DTYPES,
    "sampler": SAMPLER_KINDS,
    "history_mode": HISTORY_MODES,
    "state_sharding": STATE_SHARDING_MODES,
    "compression": COMPRESSION_STAGES,
    "topology": TOPOLOGY_KINDS,
}


def validate_choice(knob: str, value) -> str:
    """Validate a string-choice knob against the registry.

    Returns the value unchanged when valid; raises a
    :class:`~repro.exceptions.ConfigError` naming the knob, the valid
    values, and (when a close match exists) a "did you mean" suggestion.
    Every layer that accepts these knobs — CLI flags, ``FLConfig``
    construction, ``run_experiment`` overrides — funnels through here,
    so the error text is identical everywhere.
    """
    choices = CHOICES.get(knob)
    if choices is None:
        raise KeyError(f"unknown choice knob {knob!r}; registry has {sorted(CHOICES)}")
    if value in choices:
        return value
    message = f"{knob} must be one of {choices}, got {value!r}"
    close = difflib.get_close_matches(str(value), choices, n=1)
    if close:
        message += f" — did you mean {close[0]!r}?"
    raise ConfigError(message)


def validate_runtime_spec(spec) -> str:
    """Validate a ``runtime`` spec string (``kind[:params]``).

    Only the kind is registry-checked here; parameter parsing (and its
    own errors) happens in :func:`repro.fl.runtime.make_runtime`.
    """
    kind = str(spec).partition(":")[0]
    validate_choice("runtime", kind)
    return spec


def validate_sampler_spec(spec) -> str:
    """Validate a ``sampler`` spec string (``kind[:strata]``).

    The kind is registry-checked here; the optional strata parameter is
    parsed (and errors) in :func:`repro.fl.sampling.parse_sampler_spec`.
    """
    kind = str(spec).partition(":")[0]
    validate_choice("sampler", kind)
    from repro.fl.sampling import parse_sampler_spec

    parse_sampler_spec(spec)
    return spec


def validate_compression_spec(spec) -> str:
    """Validate a compression pipeline spec (``stage[:param]|...``).

    Each stage kind is registry-checked here (typo suggestions
    included); parameter parsing and composition rules (one selector
    first, one value coder last) live in
    :func:`repro.fl.compression.parse_compression_spec`.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ConfigError(f"compression spec must be a non-empty string, got {spec!r}")
    for part in spec.split("|"):
        kind = part.strip().partition(":")[0].strip()
        validate_choice("compression", kind)
    from repro.fl.compression import parse_compression_spec

    parse_compression_spec(spec)
    return spec


def parse_topology_spec(spec) -> tuple[int, int]:
    """Parse a ``topology`` spec into ``(num_regions, edge_period)``.

    Grammar: ``'flat'`` (a single global aggregator, the historical
    engine — parsed as one region syncing every round) or
    ``'hier:R:P'`` — R >= 1 regions each aggregating their own client
    slice every round, with a cloud synchronization averaging the
    region models every P >= 1 rounds.  ``'hier:1:1'`` is the
    degenerate hierarchy, bit-identical to ``'flat'`` by contract.
    """
    text = str(spec)
    kind, _, rest = text.partition(":")
    validate_choice("topology", kind)
    if kind == "flat":
        if rest:
            raise ConfigError(f"topology 'flat' takes no parameters, got {spec!r}")
        return 1, 1
    parts = rest.split(":") if rest else []
    if len(parts) != 2:
        raise ConfigError(
            f"topology 'hier' needs exactly two parameters 'hier:R:P' "
            f"(R regions, cloud sync every P rounds), got {spec!r}"
        )
    try:
        num_regions, edge_period = int(parts[0]), int(parts[1])
    except ValueError:
        raise ConfigError(
            f"topology parameters must be integers ('hier:R:P'), got {spec!r}"
        ) from None
    if num_regions < 1:
        raise ConfigError(f"topology needs R >= 1 regions, got {num_regions}")
    if edge_period < 1:
        raise ConfigError(f"topology needs edge period P >= 1, got {edge_period}")
    return num_regions, edge_period


def validate_topology_spec(spec) -> str:
    """Validate a ``topology`` spec string (``'flat'`` | ``'hier:R:P'``).

    The kind is registry-checked (typo suggestions included) and the
    parameters fully parsed by :func:`parse_topology_spec`, so a bad
    spec fails at config construction, not mid-run.
    """
    parse_topology_spec(spec)
    return spec


@dataclass(frozen=True)
class FLConfig:
    """Hyperparameters of one federated run.

    Attributes:
        rounds: number of communication rounds C.  Under
            ``execution='async'`` this is the number of buffered server
            aggregations.
        local_steps: local minibatch-SGD steps per round E.
        batch_size: minibatch size B.
        sample_ratio: fraction of clients selected per round SR
            (1.0 = full participation, the cross-silo setting).
        optimizer: 'sgd' | 'rmsprop' | 'adam' — the local optimizer.
        lr: base learning rate (ignored when lr_schedule is given).
        lr_schedule: optional schedule over *global* SGD steps t = c*E+i,
            as in the convergence theory.
        eval_every: evaluate the global model every this many rounds.
        eval_batch: evaluation minibatch size (memory knob only).
        seed: master seed; all round/client randomness derives from it.
        wire_dtype_bytes: bytes per scalar on the wire for the
            communication ledger.  ``None`` (default) follows ``dtype``
            — 4 under float32, 8 under float64 — so ledger totals are
            dtype-true; an explicit value overrides (4 simulates the
            paper's float32 wire from a float64 training run).
        num_workers: client-execution parallelism; workers > 1 trains
            the round's clients in a process pool with results reduced
            in selection order, bit-identical to ``num_workers=1``.
        executor: client-execution engine — 'auto' (process pool when
            num_workers > 1, else serial), 'serial', 'process' (one
            task per client), or 'chunked' (one contiguous client chunk
            per worker).
        transport: how parallel workers exchange payloads with the
            parent — 'wire' (packed flat buffers, round state broadcast
            once per round through fork-inherited shared memory, a
            persistent worker pool) or 'pickle' (the pre-wire
            fork-per-round engine).  Results are bit-identical either
            way; 'wire' is faster.
        dtype: compute precision for the whole run: 'float64' (default,
            bit-reproducible against the historical behaviour) or
            'float32' (~2x faster kernels, half-size payloads; results
            agree to float32 precision but are not bit-identical to
            float64 runs).
        execution: protocol pacing — 'sync' (every round is a barrier:
            the server waits for all selected clients), 'async' (the
            event-driven engine of :mod:`repro.fl.async_engine`:
            per-client runtime models, a buffered server, and
            staleness-weighted aggregation), or 'serve' (the sync
            protocol with clients trained in separate worker processes
            speaking framed RFW1 messages over real TCP / Unix-domain
            sockets — :mod:`repro.serve`, bit-identical to 'sync' by
            contract).  With instant runtimes and a full-cohort buffer,
            'async' reproduces 'sync' bit for bit.
        runtime: per-client latency model spec for async execution —
            'instant', 'gaussian[:mean=1,std=0.1,het=2]' or
            'trace:<path.json>' (see :mod:`repro.fl.runtime`).
        buffer_size: async server buffer K — aggregate as soon as this
            many client updates have arrived.  ``None`` (default) means
            the round's full cohort, the sync-shaped setting.
        buffer_timeout: optional async buffer timeout in *simulated*
            seconds: a flush with at least one update fires when the
            next arrival would land later than this far past the
            round's dispatch, even if the buffer is not full.
        staleness_exponent: a in the staleness weight (1+s)^-a applied
            to buffered updates that are s >= 1 server rounds stale
            (Xie et al. 2019).  0 disables the discount (stale deltas
            are still re-based onto the current model); fresh updates
            (s=0) are never touched, which is what keeps the
            zero-latency limit bit-identical.
        checkpoint_dir: directory for crash-safe run checkpoints
            (:mod:`repro.ckpt`).  ``None`` (default) disables
            checkpointing entirely.
        checkpoint_every: write a checkpoint every this many completed
            rounds (the final round is always checkpointed).  Cadence
            is an execution knob: changing it never invalidates
            existing checkpoints.
        checkpoint_keep: retain the newest this-many checkpoint files;
            older ones are pruned after each successful write.
        resume: resume from the newest valid checkpoint in
            ``checkpoint_dir`` if one exists (fresh start otherwise).
            A resumed run is bit-identical to an uninterrupted one;
            resuming under a mismatched config raises
            :class:`~repro.exceptions.CheckpointMismatchError`.
        sampler: cohort sampler spec — 'uniform' (the historical
            ``Generator.choice`` path), 'reservoir' (Floyd's O(cohort)
            selection that never enumerates the population), or
            'stratified[:strata]' (proportional allocation over
            contiguous id strata).  The sampler changes which cohorts a
            seed draws, so it is numerically relevant and participates
            in the checkpoint config hash.
        dispatch_cap: async execution only — cap each client at one
            in-flight update: a sampled client whose previous dispatch
            has not arrived yet is skipped this round instead of being
            re-dispatched (the small-buffer backlog fix).  Changes which
            updates exist under latency, hence hashed; with instant
            runtimes no client is ever in flight at dispatch time, so
            the sync bit-identity limit is unaffected.
        history_mode: 'append' keeps every RoundRecord in memory (the
            historical behaviour); 'stream' folds each record into O(1)
            running summaries (and optionally spools records to JSONL
            under ``stream_dir``) so a 100k-round run's history stays
            flat.  Execution-only: both modes observe identical
            records.
        stream_dir: directory for streaming-mode JSONL spools
            (``history.jsonl``, ``comm.jsonl``).  ``None`` keeps
            summaries only.
        state_sharding: server-side delta-table layout for the
            regularized algorithms — 'dense' (the historical (N, d)
            array), 'sharded' (rows allocated lazily per reporting
            client, spillable to disk), or 'auto' (sharded for virtual
            or >= 4096-client populations, dense otherwise).
            Execution-only: layouts are bit-identical by contract.
        state_cap: sharded tables keep at most this many delta rows
            resident, spilling least-recently-used rows to an on-disk
            store under ``state_dir`` (``None`` = no cap).
        state_dir: directory for spilled delta rows (``None`` uses a
            run-private temporary directory).
        compression: lossy upload-compression pipeline spec (see
            :mod:`repro.fl.compression`): 'none' (default, bit-identical
            to runs predating the knob) or stages joined with '|', e.g.
            'topk:0.01|qsgd:8', 'sign', 'sketch:0.05'.  Numerically
            relevant, hence part of the checkpoint config hash.
        error_feedback: keep a per-client residual accumulator
            ``e_{t+1} = e_t + update - decompress(compress(update + e_t))``
            so aggressive compression still converges.  Only meaningful
            with ``compression != 'none'``.
        sync_compression: pipeline spec for the rFedAvg+ second
            synchronization (the model re-broadcast and the per-client
            delta re-upload — the ``O(d N)`` term).  'none' keeps the
            exchange dense.  Ignored by algorithms without a second
            synchronization.
        topology: aggregation topology — 'flat' (one global server, the
            historical engine) or 'hier:R:P' (R regions each aggregate
            their own contiguous client slice every round; a cloud step
            averages the region models every P rounds and only that hop
            is charged as expensive 'cloud-model' traffic — see
            :mod:`repro.fl.hierarchy` and ``docs/hierarchy.md``).
            'hier:1:1' is bit-identical to 'flat'.  Numerically
            relevant for R > 1 or P > 1, hence part of the checkpoint
            config hash; hierarchical runs require
            ``execution='sync'``.
        cloud_compression: compression pipeline spec for the region ->
            cloud uplink of a hierarchical run (each region uploads its
            model as a lossy delta against the last cloud model; the
            cloud averages the reconstructions).  'none' (default)
            keeps the hop dense.  Ignored under ``topology='flat'``.
        serve_addr: listen address for ``execution='serve'`` —
            ``'tcp:HOST:PORT'`` (port 0 lets the OS pick) or
            ``'uds:/path/to.sock'``.  ``None`` (default) uses an
            ephemeral Unix-domain socket in a run-private temporary
            directory.  Execution-only.
        serve_timeout: serve mode's stall deadline in seconds — reset
            on any socket progress; when the server sees no progress
            for this long mid-round (all workers dead or wedged) the
            round falls back to in-process serial execution.  Also the
            worker-side socket timeout.
        serve_retries: worker connect attempts before giving up
            (each separated by exponential backoff).
        serve_backoff: initial worker backoff in seconds, doubled per
            retry (0.05 -> 0.1 -> 0.2 ...).
        serve_max_inflight: serve-mode backpressure — at most this many
            clients dispatched-but-uncommitted at once.  ``None``
            (default) means twice the worker count.
        serve_queue_bytes: per-connection bound on queued outbound
            bytes; a connection whose write queue holds at least this
            much gets no new task until it drains (one frame may always
            be queued so progress never deadlocks).
    """

    rounds: int = 30
    local_steps: int = 5
    batch_size: int = 32
    sample_ratio: float = 1.0
    optimizer: str = "sgd"
    lr: float = 0.1
    lr_schedule: LRSchedule | None = None
    eval_every: int = 1
    eval_batch: int = 256
    seed: int = 0
    wire_dtype_bytes: int | None = None
    num_workers: int = 1
    executor: str = "auto"
    transport: str = "wire"
    dtype: str = "float64"
    execution: str = "sync"
    runtime: str = "instant"
    buffer_size: int | None = None
    buffer_timeout: float | None = None
    staleness_exponent: float = 0.5
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    checkpoint_keep: int = 3
    resume: bool = False
    sampler: str = "uniform"
    dispatch_cap: bool = True
    history_mode: str = "append"
    stream_dir: str | None = None
    state_sharding: str = "auto"
    state_cap: int | None = None
    state_dir: str | None = None
    compression: str = "none"
    error_feedback: bool = True
    sync_compression: str = "none"
    topology: str = "flat"
    cloud_compression: str = "none"
    serve_addr: str | None = None
    serve_timeout: float = 30.0
    serve_retries: int = 5
    serve_backoff: float = 0.05
    serve_max_inflight: int | None = None
    serve_queue_bytes: int = 8 << 20

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ConfigError("rounds must be positive")
        if self.local_steps <= 0:
            raise ConfigError("local_steps must be positive")
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if not 0.0 < self.sample_ratio <= 1.0:
            raise ConfigError("sample_ratio must be in (0, 1]")
        if self.eval_every <= 0:
            raise ConfigError("eval_every must be positive")
        if self.num_workers < 1:
            raise ConfigError("num_workers must be >= 1")
        validate_choice("executor", self.executor)
        validate_choice("transport", self.transport)
        validate_choice("optimizer", self.optimizer)
        validate_choice("dtype", self.dtype)
        validate_choice("execution", self.execution)
        validate_runtime_spec(self.runtime)
        if self.buffer_size is not None and self.buffer_size < 1:
            raise ConfigError("buffer_size must be >= 1 (or None for the full cohort)")
        if self.buffer_timeout is not None and self.buffer_timeout <= 0:
            raise ConfigError("buffer_timeout must be positive (or None)")
        if self.staleness_exponent < 0:
            raise ConfigError("staleness_exponent must be non-negative")
        if self.wire_dtype_bytes is not None and self.wire_dtype_bytes <= 0:
            raise ConfigError("wire_dtype_bytes must be positive (or None)")
        if self.checkpoint_every <= 0:
            raise ConfigError("checkpoint_every must be positive")
        if self.checkpoint_keep <= 0:
            raise ConfigError("checkpoint_keep must be positive")
        if self.resume and self.checkpoint_dir is None:
            raise ConfigError("resume=True requires checkpoint_dir")
        validate_sampler_spec(self.sampler)
        validate_choice("history_mode", self.history_mode)
        validate_choice("state_sharding", self.state_sharding)
        if self.state_cap is not None and self.state_cap < 1:
            raise ConfigError("state_cap must be >= 1 (or None for no cap)")
        validate_compression_spec(self.compression)
        validate_compression_spec(self.sync_compression)
        validate_topology_spec(self.topology)
        validate_compression_spec(self.cloud_compression)
        if self.topology != "flat" and self.execution == "async":
            raise ConfigError(
                "hierarchical topology requires execution='sync'; the async "
                "engine has no region tier (run topology='flat' async, or "
                "sync hierarchical)"
            )
        if self.serve_addr is not None:
            from repro.serve.protocol import parse_serve_addr

            parse_serve_addr(self.serve_addr)
        if self.serve_timeout <= 0:
            raise ConfigError("serve_timeout must be positive")
        if self.serve_retries < 1:
            raise ConfigError("serve_retries must be >= 1")
        if self.serve_backoff < 0:
            raise ConfigError("serve_backoff must be non-negative")
        if self.serve_max_inflight is not None and self.serve_max_inflight < 1:
            raise ConfigError(
                "serve_max_inflight must be >= 1 (or None for 2x workers)"
            )
        if self.serve_queue_bytes < 1:
            raise ConfigError("serve_queue_bytes must be positive")

    def wire_bytes_per_scalar(self) -> int:
        """Resolved per-scalar wire width: the explicit override, or the
        itemsize of the run's compute dtype."""
        if self.wire_dtype_bytes is not None:
            return int(self.wire_dtype_bytes)
        import numpy as np

        return int(np.dtype(self.dtype).itemsize)

    def with_updates(self, **kwargs) -> "FLConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
