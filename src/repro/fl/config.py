"""Federated training configuration."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ConfigError
from repro.nn.optim import LRSchedule


@dataclass(frozen=True)
class FLConfig:
    """Hyperparameters of one federated run.

    Attributes:
        rounds: number of communication rounds C.
        local_steps: local minibatch-SGD steps per round E.
        batch_size: minibatch size B.
        sample_ratio: fraction of clients selected per round SR
            (1.0 = full participation, the cross-silo setting).
        optimizer: 'sgd' | 'rmsprop' | 'adam' — the local optimizer.
        lr: base learning rate (ignored when lr_schedule is given).
        lr_schedule: optional schedule over *global* SGD steps t = c*E+i,
            as in the convergence theory.
        eval_every: evaluate the global model every this many rounds.
        eval_batch: evaluation minibatch size (memory knob only).
        seed: master seed; all round/client randomness derives from it.
        wire_dtype_bytes: bytes per scalar on the wire for the
            communication ledger (4 = float32, matching the paper).
    """

    rounds: int = 30
    local_steps: int = 5
    batch_size: int = 32
    sample_ratio: float = 1.0
    optimizer: str = "sgd"
    lr: float = 0.1
    lr_schedule: LRSchedule | None = None
    eval_every: int = 1
    eval_batch: int = 256
    seed: int = 0
    wire_dtype_bytes: int = 4

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ConfigError("rounds must be positive")
        if self.local_steps <= 0:
            raise ConfigError("local_steps must be positive")
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if not 0.0 < self.sample_ratio <= 1.0:
            raise ConfigError("sample_ratio must be in (0, 1]")
        if self.eval_every <= 0:
            raise ConfigError("eval_every must be positive")

    def with_updates(self, **kwargs) -> "FLConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
