"""Federated training configuration."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ConfigError
from repro.nn.optim import LRSchedule


@dataclass(frozen=True)
class FLConfig:
    """Hyperparameters of one federated run.

    Attributes:
        rounds: number of communication rounds C.
        local_steps: local minibatch-SGD steps per round E.
        batch_size: minibatch size B.
        sample_ratio: fraction of clients selected per round SR
            (1.0 = full participation, the cross-silo setting).
        optimizer: 'sgd' | 'rmsprop' | 'adam' — the local optimizer.
        lr: base learning rate (ignored when lr_schedule is given).
        lr_schedule: optional schedule over *global* SGD steps t = c*E+i,
            as in the convergence theory.
        eval_every: evaluate the global model every this many rounds.
        eval_batch: evaluation minibatch size (memory knob only).
        seed: master seed; all round/client randomness derives from it.
        wire_dtype_bytes: bytes per scalar on the wire for the
            communication ledger.  ``None`` (default) follows ``dtype``
            — 4 under float32, 8 under float64 — so ledger totals are
            dtype-true; an explicit value overrides (4 simulates the
            paper's float32 wire from a float64 training run).
        num_workers: client-execution parallelism; workers > 1 trains
            the round's clients in a process pool with results reduced
            in selection order, bit-identical to ``num_workers=1``.
        executor: client-execution engine — 'auto' (process pool when
            num_workers > 1, else serial), 'serial', 'process' (one
            task per client), or 'chunked' (one contiguous client chunk
            per worker).
        transport: how parallel workers exchange payloads with the
            parent — 'wire' (packed flat buffers, round state broadcast
            once per round through fork-inherited shared memory, a
            persistent worker pool) or 'pickle' (the pre-wire
            fork-per-round engine).  Results are bit-identical either
            way; 'wire' is faster.
        dtype: compute precision for the whole run: 'float64' (default,
            bit-reproducible against the historical behaviour) or
            'float32' (~2x faster kernels, half-size payloads; results
            agree to float32 precision but are not bit-identical to
            float64 runs).
        checkpoint_dir: directory for crash-safe run checkpoints
            (:mod:`repro.ckpt`).  ``None`` (default) disables
            checkpointing entirely.
        checkpoint_every: write a checkpoint every this many completed
            rounds (the final round is always checkpointed).  Cadence
            is an execution knob: changing it never invalidates
            existing checkpoints.
        checkpoint_keep: retain the newest this-many checkpoint files;
            older ones are pruned after each successful write.
        resume: resume from the newest valid checkpoint in
            ``checkpoint_dir`` if one exists (fresh start otherwise).
            A resumed run is bit-identical to an uninterrupted one;
            resuming under a mismatched config raises
            :class:`~repro.exceptions.CheckpointMismatchError`.
    """

    rounds: int = 30
    local_steps: int = 5
    batch_size: int = 32
    sample_ratio: float = 1.0
    optimizer: str = "sgd"
    lr: float = 0.1
    lr_schedule: LRSchedule | None = None
    eval_every: int = 1
    eval_batch: int = 256
    seed: int = 0
    wire_dtype_bytes: int | None = None
    num_workers: int = 1
    executor: str = "auto"
    transport: str = "wire"
    dtype: str = "float64"
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    checkpoint_keep: int = 3
    resume: bool = False

    def __post_init__(self) -> None:
        # Imported here: repro.fl.parallel depends on repro.exceptions only,
        # but keeping config import-light avoids any future cycle.
        from repro.fl.parallel import EXECUTOR_MODES, TRANSPORTS

        if self.rounds <= 0:
            raise ConfigError("rounds must be positive")
        if self.local_steps <= 0:
            raise ConfigError("local_steps must be positive")
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if not 0.0 < self.sample_ratio <= 1.0:
            raise ConfigError("sample_ratio must be in (0, 1]")
        if self.eval_every <= 0:
            raise ConfigError("eval_every must be positive")
        if self.num_workers < 1:
            raise ConfigError("num_workers must be >= 1")
        if self.executor not in EXECUTOR_MODES:
            raise ConfigError(
                f"executor must be one of {EXECUTOR_MODES}, got {self.executor!r}"
            )
        if self.transport not in TRANSPORTS:
            raise ConfigError(
                f"transport must be one of {TRANSPORTS}, got {self.transport!r}"
            )
        if self.dtype not in ("float32", "float64"):
            raise ConfigError(
                f"dtype must be 'float32' or 'float64', got {self.dtype!r}"
            )
        if self.wire_dtype_bytes is not None and self.wire_dtype_bytes <= 0:
            raise ConfigError("wire_dtype_bytes must be positive (or None)")
        if self.checkpoint_every <= 0:
            raise ConfigError("checkpoint_every must be positive")
        if self.checkpoint_keep <= 0:
            raise ConfigError("checkpoint_keep must be positive")
        if self.resume and self.checkpoint_dir is None:
            raise ConfigError("resume=True requires checkpoint_dir")

    def wire_bytes_per_scalar(self) -> int:
        """Resolved per-scalar wire width: the explicit override, or the
        itemsize of the run's compute dtype."""
        if self.wire_dtype_bytes is not None:
            return int(self.wire_dtype_bytes)
        import numpy as np

        return int(np.dtype(self.dtype).itemsize)

    def with_updates(self, **kwargs) -> "FLConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
