"""Client-side primitives: local SGD and model evaluation.

All six algorithms share the same local-training skeleton — E steps of
minibatch SGD on the task loss — and differ only in (a) an optional
regularizer evaluated on the feature activations (rFedAvg / rFedAvg+),
and (b) an optional gradient hook applied before the optimizer step
(FedProx's proximal term, SCAFFOLD's control variates).
:func:`local_sgd_steps` exposes both extension points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.fl.config import FLConfig
from repro.models.split import SplitModel
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optim import ConstantLR, LRSchedule, make_optimizer


@dataclass
class LocalResult:
    """Outcome of one client's local training in one round."""

    mean_task_loss: float
    mean_reg_loss: float
    num_steps: int


# A regularizer hook maps the batch's feature activations (B, d) to
# (reg_loss, feature_grad) or None to skip.
RegHook = Callable[[np.ndarray], tuple[float, np.ndarray] | None]
# A gradient hook mutates model parameter gradients in place before the
# optimizer step (FedProx / SCAFFOLD corrections).
GradHook = Callable[[SplitModel], None]


def local_sgd_steps(
    model: SplitModel,
    data: ArrayDataset,
    config: FLConfig,
    rng: np.random.Generator,
    step_offset: int = 0,
    reg_hook: RegHook | None = None,
    grad_hook: GradHook | None = None,
) -> LocalResult:
    """Run E local minibatch-SGD steps on ``model`` (mutates it).

    Args:
        model: workspace model already loaded with the start parameters.
        data: the client's local shard.
        config: federated hyperparameters (E, B, optimizer, lr).
        rng: the client-round randomness source.
        step_offset: global step index t = c*E of the first local step,
            used by decaying learning-rate schedules.
        reg_hook: optional distribution-regularizer callback.
        grad_hook: optional parameter-gradient correction callback.

    Returns:
        Mean task loss and mean (lambda-weighted) regularizer loss over
        the E steps.
    """
    schedule: LRSchedule = (
        config.lr_schedule if config.lr_schedule is not None else ConstantLR(config.lr)
    )
    optimizer = make_optimizer(config.optimizer, model.parameters(), schedule)
    optimizer.step_count = step_offset
    loss_fn = SoftmaxCrossEntropy()
    model.train()

    task_losses = np.zeros(config.local_steps)
    reg_losses = np.zeros(config.local_steps)
    for i in range(config.local_steps):
        x, y = data.sample_batch(config.batch_size, rng)
        logits = model.forward(x)
        task_losses[i] = loss_fn.forward(logits, y)
        grad_out = loss_fn.backward()
        feature_grad = None
        if reg_hook is not None:
            reg = reg_hook(model.last_features)
            if reg is not None:
                reg_losses[i], feature_grad = reg
        model.zero_grad()
        model.backward(grad_out, feature_grad=feature_grad)
        if grad_hook is not None:
            grad_hook(model)
        optimizer.step()

    # Drop forward caches: between rounds the workspace model only needs
    # its parameters, not the last batch's activations.
    model.free_buffers()
    return LocalResult(
        mean_task_loss=float(task_losses.mean()),
        mean_reg_loss=float(reg_losses.mean()),
        num_steps=config.local_steps,
    )


def evaluate_model(
    model: SplitModel, data: ArrayDataset, batch_size: int = 256
) -> tuple[float, float]:
    """Return (mean loss, accuracy) of ``model`` on ``data``."""
    loss_fn = SoftmaxCrossEntropy()
    model.eval()
    total_loss = 0.0
    correct = 0
    for x, y in data.batches(batch_size):
        logits = model.forward(x)
        total_loss += loss_fn.forward(logits, y) * len(y)
        correct += int((logits.argmax(axis=-1) == y).sum())
    model.train()
    model.free_buffers()
    n = len(data)
    return total_loss / n, correct / n


def compute_mean_embedding(
    model: SplitModel, data: ArrayDataset, batch_size: int = 256
) -> np.ndarray:
    """delta^k = (1/n_k) sum_j phi(x_{k,j}) under the model's current phi.

    Runs the feature extractor only (no classifier head), in eval mode,
    over the client's full shard.
    """
    model.eval()
    total = np.zeros(model.feature_dim)
    for x, _y in data.batches(batch_size):
        total += model.features.forward(x).sum(axis=0)
    model.train()
    return total / len(data)
