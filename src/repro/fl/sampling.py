"""Client sampling."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError


def sample_clients(
    num_clients: int, sample_ratio: float, rng: np.random.Generator
) -> np.ndarray:
    """Select round participants uniformly without replacement.

    ``SR = 1.0`` returns every client (full participation, cross-silo);
    smaller ratios return ``max(1, round(SR * N))`` clients
    (partial participation, cross-device).
    """
    if not 0.0 < sample_ratio <= 1.0:
        raise ConfigError(f"sample_ratio must be in (0, 1], got {sample_ratio}")
    if num_clients <= 0:
        raise ConfigError("num_clients must be positive")
    if sample_ratio >= 1.0:
        return np.arange(num_clients)
    count = max(1, int(round(sample_ratio * num_clients)))
    selected = rng.choice(num_clients, size=count, replace=False)
    return np.sort(selected)
