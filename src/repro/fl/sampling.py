"""Client sampling.

Three cohort samplers share one contract — return a sorted int64 array
of distinct client ids:

- :func:`sample_clients` (``sampler='uniform'``): the historical
  ``Generator.choice`` path.  Exact and simple, but ``choice`` without
  replacement builds O(N) scratch state, so it is the wrong tool once
  the population outgrows the cohort by orders of magnitude.
- :func:`reservoir_sample` (``sampler='reservoir'``): Robert Floyd's
  reservoir-style selection — O(cohort) memory and O(cohort) RNG draws
  regardless of population size, never enumerating the id range.
- :func:`stratified_sample` (``sampler='stratified[:strata]'``):
  proportional allocation over contiguous id-range strata (largest
  remainder), Floyd-sampled within each stratum.  Virtual populations
  assign home labels by contiguous id blocks, so id strata double as
  label strata.

All three are deterministic functions of ``(num_clients, count, rng)``
state, which is what lets checkpoint resume replay cohorts bit-exactly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError


def _cohort_count(num_clients: int, sample_ratio: float) -> int:
    if not 0.0 < sample_ratio <= 1.0:
        raise ConfigError(f"sample_ratio must be in (0, 1], got {sample_ratio}")
    if num_clients <= 0:
        raise ConfigError("num_clients must be positive")
    return max(1, int(round(sample_ratio * num_clients)))


def sample_clients(
    num_clients: int, sample_ratio: float, rng: np.random.Generator
) -> np.ndarray:
    """Select round participants uniformly without replacement.

    ``SR = 1.0`` returns every client (full participation, cross-silo);
    smaller ratios return ``max(1, round(SR * N))`` clients
    (partial participation, cross-device).
    """
    count = _cohort_count(num_clients, sample_ratio)
    if sample_ratio >= 1.0:
        return np.arange(num_clients)
    selected = rng.choice(num_clients, size=count, replace=False)
    return np.sort(selected)


def reservoir_sample(
    num_clients: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` distinct ids from ``range(num_clients)``, O(count) memory.

    Floyd's algorithm: for j in [N-count, N), draw t uniform on [0, j];
    take t unless already taken, else take j.  Every ``count``-subset is
    equally likely, and neither memory nor RNG draws depend on N — the
    property that lets a million-client population be sampled without
    ever enumerating it.  ``count >= num_clients`` returns all ids
    (exact-uniformity degenerate case).
    """
    if num_clients <= 0:
        raise ConfigError("num_clients must be positive")
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    if count >= num_clients:
        return np.arange(num_clients)
    selected: set[int] = set()
    for j in range(num_clients - count, num_clients):
        t = int(rng.integers(0, j + 1))
        selected.add(j if t in selected else t)
    return np.sort(np.fromiter(selected, dtype=np.int64, count=count))


def stratified_sample(
    num_clients: int, count: int, rng: np.random.Generator, strata: int = 10
) -> np.ndarray:
    """``count`` ids stratified over ``strata`` contiguous id ranges.

    The cohort is allocated proportionally to stratum sizes (largest
    remainder, ties to lower strata), then Floyd-sampled within each
    stratum — so every stratum of a skewed population is represented in
    every cohort instead of only in expectation.  Memory and RNG cost
    stay O(count + strata).
    """
    if strata < 1:
        raise ConfigError(f"strata must be >= 1, got {strata}")
    if num_clients <= 0:
        raise ConfigError("num_clients must be positive")
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    if count >= num_clients:
        return np.arange(num_clients)
    strata = min(strata, num_clients, count)
    bounds = np.linspace(0, num_clients, strata + 1).astype(np.int64)
    sizes = np.diff(bounds)
    # Largest-remainder proportional allocation, capped at stratum size.
    exact = count * sizes / num_clients
    alloc = np.floor(exact).astype(np.int64)
    remainder = count - int(alloc.sum())
    if remainder > 0:
        order = np.argsort(-(exact - alloc), kind="stable")
        alloc[order[:remainder]] += 1
    # Cap at stratum sizes and push overflow to strata with headroom.
    overflow = int(np.maximum(alloc - sizes, 0).sum())
    alloc = np.minimum(alloc, sizes)
    while overflow > 0:
        headroom = np.flatnonzero(alloc < sizes)
        take = headroom[: overflow]
        alloc[take] += 1
        overflow -= len(take)
    parts = []
    for s in range(strata):
        if alloc[s] == 0:
            continue
        within = reservoir_sample(int(sizes[s]), int(alloc[s]), rng)
        parts.append(within + bounds[s])
    return np.sort(np.concatenate(parts))


def parse_sampler_spec(spec: str) -> tuple[str, int | None]:
    """Split a ``sampler`` spec into (kind, strata).

    Accepted: ``'uniform'``, ``'reservoir'``, ``'stratified'``,
    ``'stratified:<strata>'``.  Kind validity is checked by the choice
    registry (:func:`repro.fl.config.validate_sampler_spec`); this
    parses the parameter.
    """
    kind, _, param = str(spec).partition(":")
    if not param:
        return kind, None
    if kind != "stratified":
        raise ConfigError(f"sampler {kind!r} takes no parameter, got {spec!r}")
    try:
        strata = int(param)
    except ValueError:
        raise ConfigError(
            f"sampler spec {spec!r}: strata must be an integer"
        ) from None
    if strata < 1:
        raise ConfigError(f"sampler spec {spec!r}: strata must be >= 1")
    return kind, strata


def sample_cohort(
    num_clients: int,
    sample_ratio: float,
    rng: np.random.Generator,
    sampler: str = "uniform",
) -> np.ndarray:
    """One round's cohort under the configured sampler spec.

    ``'uniform'`` is bit-identical to the historical
    :func:`sample_clients` path; the scale-out samplers draw different
    (equally uniform) cohorts, so the sampler knob is part of a run's
    numeric identity and participates in the checkpoint config hash.
    """
    kind, strata = parse_sampler_spec(sampler)
    count = _cohort_count(num_clients, sample_ratio)
    if kind == "uniform":
        return sample_clients(num_clients, sample_ratio, rng)
    if sample_ratio >= 1.0:
        return np.arange(num_clients)
    if kind == "reservoir":
        return reservoir_sample(num_clients, count, rng)
    if kind == "stratified":
        return stratified_sample(
            num_clients, count, rng, strata=strata if strata is not None else 10
        )
    raise ConfigError(f"unknown sampler kind {kind!r}")
