"""Round-by-round metric recording and persistence."""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, field, fields

import numpy as np


@dataclass
class RoundRecord:
    """Metrics of one communication round."""

    round_idx: int
    train_loss: float
    test_accuracy: float | None = None
    test_loss: float | None = None
    reg_loss: float = 0.0
    wall_time_sec: float = 0.0
    bytes_down: int = 0
    bytes_up: int = 0
    num_selected: int = 0

    # -- persistence --------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable representation (plain python scalars)."""
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "RoundRecord":
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def from_json(cls, text: str) -> "RoundRecord":
        return cls.from_dict(json.loads(text))


@dataclass
class History:
    """The full trajectory of a federated run."""

    algorithm: str
    records: list[RoundRecord] = field(default_factory=list)
    final_accuracy: float | None = None
    per_client_accuracy: np.ndarray | None = None

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    # -- series accessors --------------------------------------------------------
    def rounds(self) -> np.ndarray:
        return np.array([r.round_idx for r in self.records])

    def train_losses(self) -> np.ndarray:
        return np.array([r.train_loss for r in self.records])

    def accuracies(self) -> np.ndarray:
        """(round, accuracy) pairs for rounds that were evaluated."""
        pts = [(r.round_idx, r.test_accuracy) for r in self.records if r.test_accuracy is not None]
        if not pts:
            return np.zeros((0, 2))
        return np.array(pts, dtype=np.float64)

    def test_losses(self) -> np.ndarray:
        pts = [(r.round_idx, r.test_loss) for r in self.records if r.test_loss is not None]
        if not pts:
            return np.zeros((0, 2))
        return np.array(pts, dtype=np.float64)

    def wall_times(self) -> np.ndarray:
        return np.array([r.wall_time_sec for r in self.records])

    # -- summary statistics --------------------------------------------------------
    def best_accuracy(self) -> float:
        acc = self.accuracies()
        return float(acc[:, 1].max()) if len(acc) else float("nan")

    def last_accuracy(self) -> float:
        acc = self.accuracies()
        return float(acc[-1, 1]) if len(acc) else float("nan")

    def tail_mean_accuracy(self, tail: int = 5) -> float:
        """Mean accuracy over the last ``tail`` evaluations (the paper's
        reported number averages the settled end of the curve)."""
        acc = self.accuracies()
        if not len(acc):
            return float("nan")
        return float(acc[-tail:, 1].mean())

    def rounds_to_reach(self, accuracy: float) -> int | None:
        """First round index whose test accuracy meets ``accuracy`` (Fig. 10a/b)."""
        for r in self.records:
            if r.test_accuracy is not None and r.test_accuracy >= accuracy:
                return r.round_idx
        return None

    def mean_round_time(self) -> float:
        times = self.wall_times()
        return float(times.mean()) if len(times) else 0.0

    def total_bytes(self) -> int:
        return sum(r.bytes_down + r.bytes_up for r in self.records)

    # -- persistence --------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable representation of the full history.

        Numpy arrays become lists, so the output is diffable and the
        :meth:`from_dict` round-trip is exact (python floats round-trip
        through JSON bit-for-bit).
        """
        return {
            "algorithm": self.algorithm,
            "final_accuracy": self.final_accuracy,
            "per_client_accuracy": (
                self.per_client_accuracy.tolist()
                if self.per_client_accuracy is not None
                else None
            ),
            "records": [r.to_dict() for r in self.records],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "History":
        """Inverse of :meth:`to_dict`; extra top-level keys (e.g. the
        ``trace`` section of a run-artifact summary) are ignored."""
        history = cls(algorithm=data["algorithm"])
        history.final_accuracy = data.get("final_accuracy")
        if data.get("per_client_accuracy") is not None:
            history.per_client_accuracy = np.array(data["per_client_accuracy"])
        for record in data.get("records", []):
            history.append(RoundRecord.from_dict(record))
        return history

    @classmethod
    def from_json(cls, text: str) -> "History":
        return cls.from_dict(json.loads(text))

    def save_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def load_json(cls, path: str) -> "History":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def save_csv(self, path: str) -> None:
        """One row per round, spreadsheet-friendly."""
        fields = [
            "round_idx", "train_loss", "test_accuracy", "test_loss",
            "reg_loss", "wall_time_sec", "bytes_down", "bytes_up", "num_selected",
        ]
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            for record in self.records:
                writer.writerow({k: getattr(record, k) for k in fields})
