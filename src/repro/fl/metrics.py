"""Round-by-round metric recording and persistence.

:class:`History` appends every :class:`RoundRecord` — the right default
for paper-scale runs whose analysis wants the whole curve.
:class:`StreamingHistory` is its O(1)-memory twin for cross-device
scale-out: each record is folded into running summaries (best/last
accuracy, loss and byte totals, a bounded tail of evaluations) and
optionally spooled to a JSONL file, so a 100k-round run's history costs
a handful of scalars.  Both observe byte-identical records; with a
spool, the streaming history reproduces the appending one
record-for-record (``tests/fl/test_streaming_metrics.py``).
"""

from __future__ import annotations

import csv
import json
import os
from collections import deque
from dataclasses import asdict, dataclass, field, fields

import numpy as np


@dataclass
class RoundRecord:
    """Metrics of one communication round."""

    round_idx: int
    train_loss: float
    test_accuracy: float | None = None
    test_loss: float | None = None
    reg_loss: float = 0.0
    wall_time_sec: float = 0.0
    bytes_down: int = 0
    bytes_up: int = 0
    num_selected: int = 0

    # -- persistence --------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable representation (plain python scalars)."""
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "RoundRecord":
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def from_json(cls, text: str) -> "RoundRecord":
        return cls.from_dict(json.loads(text))


@dataclass
class History:
    """The full trajectory of a federated run."""

    algorithm: str
    records: list[RoundRecord] = field(default_factory=list)
    final_accuracy: float | None = None
    per_client_accuracy: np.ndarray | None = None

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    # -- series accessors --------------------------------------------------------
    def rounds(self) -> np.ndarray:
        return np.array([r.round_idx for r in self.records])

    def train_losses(self) -> np.ndarray:
        return np.array([r.train_loss for r in self.records])

    def accuracies(self) -> np.ndarray:
        """(round, accuracy) pairs for rounds that were evaluated."""
        pts = [(r.round_idx, r.test_accuracy) for r in self.records if r.test_accuracy is not None]
        if not pts:
            return np.zeros((0, 2))
        return np.array(pts, dtype=np.float64)

    def test_losses(self) -> np.ndarray:
        pts = [(r.round_idx, r.test_loss) for r in self.records if r.test_loss is not None]
        if not pts:
            return np.zeros((0, 2))
        return np.array(pts, dtype=np.float64)

    def wall_times(self) -> np.ndarray:
        return np.array([r.wall_time_sec for r in self.records])

    # -- summary statistics --------------------------------------------------------
    def best_accuracy(self) -> float:
        acc = self.accuracies()
        return float(acc[:, 1].max()) if len(acc) else float("nan")

    def last_accuracy(self) -> float:
        acc = self.accuracies()
        return float(acc[-1, 1]) if len(acc) else float("nan")

    def tail_mean_accuracy(self, tail: int = 5) -> float:
        """Mean accuracy over the last ``tail`` evaluations (the paper's
        reported number averages the settled end of the curve)."""
        acc = self.accuracies()
        if not len(acc):
            return float("nan")
        return float(acc[-tail:, 1].mean())

    def rounds_to_reach(self, accuracy: float) -> int | None:
        """First round index whose test accuracy meets ``accuracy`` (Fig. 10a/b)."""
        for r in self.records:
            if r.test_accuracy is not None and r.test_accuracy >= accuracy:
                return r.round_idx
        return None

    def mean_round_time(self) -> float:
        times = self.wall_times()
        return float(times.mean()) if len(times) else 0.0

    def total_bytes(self) -> int:
        return sum(r.bytes_down + r.bytes_up for r in self.records)

    # -- persistence --------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable representation of the full history.

        Numpy arrays become lists, so the output is diffable and the
        :meth:`from_dict` round-trip is exact (python floats round-trip
        through JSON bit-for-bit).
        """
        return {
            "algorithm": self.algorithm,
            "final_accuracy": self.final_accuracy,
            "per_client_accuracy": (
                self.per_client_accuracy.tolist()
                if self.per_client_accuracy is not None
                else None
            ),
            "records": [r.to_dict() for r in self.records],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "History":
        """Inverse of :meth:`to_dict`; extra top-level keys (e.g. the
        ``trace`` section of a run-artifact summary) are ignored."""
        history = cls(algorithm=data["algorithm"])
        history.final_accuracy = data.get("final_accuracy")
        if data.get("per_client_accuracy") is not None:
            history.per_client_accuracy = np.array(data["per_client_accuracy"])
        for record in data.get("records", []):
            history.append(RoundRecord.from_dict(record))
        return history

    @classmethod
    def from_json(cls, text: str) -> "History":
        return cls.from_dict(json.loads(text))

    def save_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def load_json(cls, path: str) -> "History":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def save_csv(self, path: str) -> None:
        """One row per round, spreadsheet-friendly."""
        fields = [
            "round_idx", "train_loss", "test_accuracy", "test_loss",
            "reg_loss", "wall_time_sec", "bytes_down", "bytes_up", "num_selected",
        ]
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            for record in self.records:
                writer.writerow({k: getattr(record, k) for k in fields})


class StreamingHistory(History):
    """A :class:`History` that summarizes instead of accumulating.

    ``append`` folds each record into O(1) running aggregates — count,
    loss/time/byte totals, best accuracy, and a bounded tail of recent
    evaluations — and (when ``stream_path`` is set) spools the record as
    one JSONL line.  ``self.records`` stays empty by construction.

    Summary accessors (:meth:`last_accuracy`, :meth:`best_accuracy`,
    :meth:`tail_mean_accuracy` up to the tail bound,
    :meth:`mean_round_time`, :meth:`total_bytes`) work without a spool;
    full-series accessors (:meth:`accuracies`, :meth:`train_losses`,
    :meth:`save_csv`, ...) replay the spool and raise a clear error when
    there is none.  Checkpoints carry only the summary
    (:meth:`checkpoint_dict`), so streaming-mode checkpoints stay O(1)
    regardless of run length; on resume the spool is truncated back to
    the checkpointed round, keeping crash-resumed spools
    record-for-record identical to uninterrupted ones.
    """

    def __init__(
        self, algorithm: str, stream_path: str | None = None, tail: int = 8
    ) -> None:
        super().__init__(algorithm=algorithm)
        if tail < 1:
            raise ValueError(f"tail must be >= 1, got {tail}")
        self.stream_path = stream_path
        self.tail = int(tail)
        self.num_records = 0
        self.eval_points = 0
        self._sum_train_loss = 0.0
        self._sum_wall_time = 0.0
        self._total_bytes = 0
        self._best_accuracy: float | None = None
        self._tail_acc: deque[tuple[int, float]] = deque(maxlen=self.tail)
        self._last_record: RoundRecord | None = None
        if stream_path is not None:
            os.makedirs(os.path.dirname(stream_path) or ".", exist_ok=True)

    # -- recording ----------------------------------------------------------------
    def append(self, record: RoundRecord) -> None:
        self.num_records += 1
        self._sum_train_loss += record.train_loss
        self._sum_wall_time += record.wall_time_sec
        self._total_bytes += record.bytes_down + record.bytes_up
        if record.test_accuracy is not None:
            self.eval_points += 1
            acc = float(record.test_accuracy)
            if self._best_accuracy is None or acc > self._best_accuracy:
                self._best_accuracy = acc
            self._tail_acc.append((record.round_idx, acc))
        self._last_record = record
        if self.stream_path is not None:
            with open(self.stream_path, "a") as handle:
                handle.write(record.to_json() + "\n")

    @property
    def last_record(self) -> RoundRecord | None:
        return self._last_record

    # -- summary statistics (O(1), spool-free) --------------------------------------
    def best_accuracy(self) -> float:
        return float("nan") if self._best_accuracy is None else self._best_accuracy

    def last_accuracy(self) -> float:
        if not self._tail_acc:
            return float("nan")
        return self._tail_acc[-1][1]

    def tail_mean_accuracy(self, tail: int = 5) -> float:
        if not self._tail_acc:
            return float("nan")
        if tail > self.tail and self.eval_points > self.tail:
            raise ValueError(
                f"streaming history keeps a tail of {self.tail} evaluations; "
                f"tail_mean_accuracy({tail}) needs more — raise the tail "
                "bound or replay the spool"
            )
        window = list(self._tail_acc)[-tail:]
        return float(np.mean([acc for _round, acc in window]))

    def mean_round_time(self) -> float:
        return self._sum_wall_time / self.num_records if self.num_records else 0.0

    def total_bytes(self) -> int:
        return self._total_bytes

    def mean_train_loss(self) -> float:
        return self._sum_train_loss / self.num_records if self.num_records else 0.0

    # -- full-series accessors (spool replay) ---------------------------------------
    def _spooled_records(self) -> list[RoundRecord]:
        if self.stream_path is None:
            raise RuntimeError(
                "this StreamingHistory keeps summaries only; full record "
                "series need a spool — set FLConfig.stream_dir (or "
                "StreamingHistory(stream_path=...)) or use "
                "history_mode='append'"
            )
        if not os.path.exists(self.stream_path):
            return []
        with open(self.stream_path) as handle:
            return [RoundRecord.from_json(line) for line in handle if line.strip()]

    def _replayed(self) -> History:
        replay = History(algorithm=self.algorithm)
        replay.records = self._spooled_records()
        replay.final_accuracy = self.final_accuracy
        replay.per_client_accuracy = self.per_client_accuracy
        return replay

    def replay_records(self) -> list[RoundRecord]:
        """Full per-round records replayed from the spool; empty when the
        history keeps summaries only (no ``stream_path``)."""
        if self.stream_path is None:
            return []
        return self._spooled_records()

    def rounds(self) -> np.ndarray:
        return self._replayed().rounds()

    def train_losses(self) -> np.ndarray:
        return self._replayed().train_losses()

    def accuracies(self) -> np.ndarray:
        return self._replayed().accuracies()

    def test_losses(self) -> np.ndarray:
        return self._replayed().test_losses()

    def wall_times(self) -> np.ndarray:
        return self._replayed().wall_times()

    def rounds_to_reach(self, accuracy: float) -> int | None:
        return self._replayed().rounds_to_reach(accuracy)

    def save_csv(self, path: str) -> None:
        self._replayed().save_csv(path)

    # -- persistence ----------------------------------------------------------------
    def summary_dict(self) -> dict:
        """The O(1) aggregate state (JSON-able)."""
        return {
            "tail_bound": self.tail,
            "num_records": self.num_records,
            "eval_points": self.eval_points,
            "sum_train_loss": self._sum_train_loss,
            "sum_wall_time": self._sum_wall_time,
            "total_bytes": self._total_bytes,
            "best_accuracy": self._best_accuracy,
            "tail": [[int(r), float(a)] for r, a in self._tail_acc],
            "last_record": (
                self._last_record.to_dict() if self._last_record is not None else None
            ),
        }

    def restore_summary(self, summary: dict) -> None:
        self.num_records = int(summary["num_records"])
        self.eval_points = int(summary["eval_points"])
        self._sum_train_loss = float(summary["sum_train_loss"])
        self._sum_wall_time = float(summary["sum_wall_time"])
        self._total_bytes = int(summary["total_bytes"])
        self._best_accuracy = summary["best_accuracy"]
        self._tail_acc = deque(
            [(int(r), float(a)) for r, a in summary["tail"]], maxlen=self.tail
        )
        self._last_record = (
            RoundRecord.from_dict(summary["last_record"])
            if summary["last_record"] is not None
            else None
        )

    def fold_records(self, records: list[RoundRecord]) -> None:
        """Re-aggregate a full record list (append-mode checkpoint
        resumed under streaming mode)."""
        for record in records:
            self.append(record)

    def truncate_spool(self, last_round: int) -> None:
        """Drop spooled records past ``last_round`` (crash recovery: the
        spool may be ahead of the newest checkpoint)."""
        if self.stream_path is None or not os.path.exists(self.stream_path):
            return
        kept = [r for r in self._spooled_records() if r.round_idx <= last_round]
        with open(self.stream_path, "w") as handle:
            for record in kept:
                handle.write(record.to_json() + "\n")

    def checkpoint_dict(self) -> dict:
        """What rides in a checkpoint: summary only, O(1) forever."""
        return {
            "algorithm": self.algorithm,
            "final_accuracy": self.final_accuracy,
            "per_client_accuracy": (
                self.per_client_accuracy.tolist()
                if self.per_client_accuracy is not None
                else None
            ),
            "mode": "stream",
            "summary": self.summary_dict(),
        }

    def to_dict(self) -> dict:
        """Like :meth:`History.to_dict` when a spool exists (full
        records, round-trippable through ``History.from_dict``);
        summary-form otherwise."""
        if self.stream_path is not None:
            base = {
                "algorithm": self.algorithm,
                "final_accuracy": self.final_accuracy,
                "per_client_accuracy": (
                    self.per_client_accuracy.tolist()
                    if self.per_client_accuracy is not None
                    else None
                ),
                "records": [r.to_dict() for r in self._spooled_records()],
            }
            return base
        return self.checkpoint_dict()
