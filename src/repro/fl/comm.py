"""Communication accounting.

Every vector that crosses the client-server boundary is charged to a
:class:`CommLedger`, split by direction (downlink = server to clients,
uplink = clients to server) and payload kind ('model', 'delta',
'control', 'scalar').  The efficiency evaluation (Table III, Fig. 10)
reads these ledgers.

The byte totals live in :class:`repro.obs.metrics.MetricsRegistry`
counters rather than a private dict, so a traced run (which shares its
tracer's registry with the ledger) exports ``comm.bytes{...}`` counters
alongside its spans for free.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import get_default_dtype
from repro.obs.metrics import Counter, MetricsRegistry


def vector_bytes(size: int, dtype_bytes: int | None = None) -> int:
    """Wire size of a ``size``-element vector.

    ``dtype_bytes=None`` follows the active dtype policy
    (:func:`repro.nn.dtype.get_default_dtype`).
    """
    if dtype_bytes is None:
        dtype_bytes = get_default_dtype().itemsize
    return int(size) * int(dtype_bytes)


class CommLedger:
    """Accumulates per-round and total communication volumes.

    ``dtype_bytes`` is the per-scalar wire width used by
    :meth:`charge`.  The default (``None``) resolves to the active
    dtype policy's itemsize **at construction time** — a float32 run
    charges 4 bytes per scalar, a float64 run 8 — while an explicit
    value stays an override (e.g. simulating float32 wire traffic from
    a float64 training run, as the paper's Table III does).
    """

    DOWN = "down"
    UP = "up"

    def __init__(
        self, dtype_bytes: int | None = None, metrics: MetricsRegistry | None = None
    ) -> None:
        self.dtype_bytes = (
            int(dtype_bytes) if dtype_bytes is not None else get_default_dtype().itemsize
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._round_totals: list[dict[str, int]] = []
        self._counters: dict[str, Counter] = {}
        self._round_start: dict[str, int] = {}
        # Pre-create the direction totals so even an idle round reports
        # explicit up/down zeros.
        for direction in (self.DOWN, self.UP):
            self._counter(direction)

    def _counter(self, key: str) -> Counter:
        """Registry counter for a ledger key ('down' or 'down:model')."""
        counter = self._counters.get(key)
        if counter is None:
            if ":" in key:
                direction, kind = key.split(":", 1)
                counter = self.metrics.counter("comm.bytes", direction=direction, kind=kind)
            else:
                counter = self.metrics.counter("comm.bytes", direction=key)
            self._counters[key] = counter
            # A shared registry may carry traffic from an earlier run;
            # only this ledger's increments count toward its rounds.
            self._round_start.setdefault(key, counter.value)
        return counter

    def charge(self, direction: str, kind: str, num_scalars: int, copies: int = 1) -> None:
        """Charge ``copies`` transmissions of a ``num_scalars`` vector."""
        if direction not in (self.DOWN, self.UP):
            raise ValueError(f"direction must be 'down' or 'up', got {direction!r}")
        payload = vector_bytes(num_scalars, self.dtype_bytes) * copies
        self._counter(f"{direction}:{kind}").inc(payload)
        self._counter(direction).inc(payload)

    def charge_bytes(self, direction: str, kind: str, nbytes: int, copies: int = 1) -> None:
        """Charge an exact byte count (the packed wire path, where index
        streams and bit-packed words are not scalar multiples)."""
        if direction not in (self.DOWN, self.UP):
            raise ValueError(f"direction must be 'down' or 'up', got {direction!r}")
        payload = int(nbytes) * copies
        self._counter(f"{direction}:{kind}").inc(payload)
        self._counter(direction).inc(payload)

    def end_round(self) -> dict[str, int]:
        """Close the current round; returns its totals.

        The result always contains explicit ``'up'`` and ``'down'``
        entries (zero on an idle round); per-kind keys appear only when
        charged this round.
        """
        totals: dict[str, int] = {}
        for key, counter in self._counters.items():
            charged = counter.value - self._round_start[key]
            if charged or key in (self.DOWN, self.UP):
                totals[key] = charged
            self._round_start[key] = counter.value
        self._round_totals.append(totals)
        return totals

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything needed to resume this ledger bit-identically."""
        return {
            "dtype_bytes": self.dtype_bytes,
            "round_totals": [dict(r) for r in self._round_totals],
            "counters": {key: c.value for key, c in self._counters.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot.

        Counter values are *set*, not incremented, so restoring into a
        registry shared with a tracer (whose own counters were restored
        separately) cannot double-count.
        """
        if int(state["dtype_bytes"]) != self.dtype_bytes:
            raise ValueError(
                f"ledger dtype_bytes mismatch: checkpoint has "
                f"{state['dtype_bytes']}, this run uses {self.dtype_bytes}"
            )
        self._round_totals = [dict(r) for r in state["round_totals"]]
        for key, value in state["counters"].items():
            counter = self._counter(key)
            counter.value = value
            self._round_start[key] = counter.value

    @property
    def rounds(self) -> int:
        return len(self._round_totals)

    def round_bytes(self, round_idx: int) -> dict[str, int]:
        return dict(self._round_totals[round_idx])

    def total(self, key: str | None = None) -> int:
        """Total bytes over all closed rounds (optionally one key)."""
        if key is None:
            return sum(r[self.DOWN] + r[self.UP] for r in self._round_totals)
        return sum(r.get(key, 0) for r in self._round_totals)

    def per_round_series(self, key: str) -> np.ndarray:
        return np.array([r.get(key, 0) for r in self._round_totals], dtype=np.int64)
