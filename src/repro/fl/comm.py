"""Communication accounting.

Every vector that crosses the client-server boundary is charged to a
:class:`CommLedger`, split by direction (downlink = server to clients,
uplink = clients to server) and payload kind ('model', 'delta',
'control', 'scalar').  The efficiency evaluation (Table III, Fig. 10)
reads these ledgers.

The byte totals live in :class:`repro.obs.metrics.MetricsRegistry`
counters rather than a private dict, so a traced run (which shares its
tracer's registry with the ledger) exports ``comm.bytes{...}`` counters
alongside its spans for free.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.nn.dtype import get_default_dtype
from repro.obs.metrics import Counter, MetricsRegistry


def vector_bytes(size: int, dtype_bytes: int | None = None) -> int:
    """Wire size of a ``size``-element vector.

    ``dtype_bytes=None`` follows the active dtype policy
    (:func:`repro.nn.dtype.get_default_dtype`).
    """
    if dtype_bytes is None:
        dtype_bytes = get_default_dtype().itemsize
    return int(size) * int(dtype_bytes)


class CommLedger:
    """Accumulates per-round and total communication volumes.

    ``dtype_bytes`` is the per-scalar wire width used by
    :meth:`charge`.  The default (``None``) resolves to the active
    dtype policy's itemsize **at construction time** — a float32 run
    charges 4 bytes per scalar, a float64 run 8 — while an explicit
    value stays an override (e.g. simulating float32 wire traffic from
    a float64 training run, as the paper's Table III does).

    ``streaming=True`` switches per-round bookkeeping from an unbounded
    ``_round_totals`` list to O(1) running accumulators (+ an optional
    JSONL spool at ``stream_path``): totals and the rounds count stay
    exact, while per-round series replay the spool (and raise a clear
    error without one).  Streaming and appending ledgers observe
    identical charges — the mode is execution-only.
    """

    DOWN = "down"
    UP = "up"

    def __init__(
        self,
        dtype_bytes: int | None = None,
        metrics: MetricsRegistry | None = None,
        streaming: bool = False,
        stream_path: str | None = None,
    ) -> None:
        self.dtype_bytes = (
            int(dtype_bytes) if dtype_bytes is not None else get_default_dtype().itemsize
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.streaming = bool(streaming)
        self.stream_path = stream_path
        self._round_totals: list[dict[str, int]] = []
        self._rounds_closed = 0
        self._totals_accum: dict[str, int] = {}
        self._counters: dict[str, Counter] = {}
        self._round_start: dict[str, int] = {}
        if stream_path is not None and not streaming:
            raise ValueError("stream_path requires streaming=True")
        if stream_path is not None:
            os.makedirs(os.path.dirname(stream_path) or ".", exist_ok=True)
        # Pre-create the direction totals so even an idle round reports
        # explicit up/down zeros.
        for direction in (self.DOWN, self.UP):
            self._counter(direction)

    def _counter(self, key: str) -> Counter:
        """Registry counter for a ledger key ('down' or 'down:model')."""
        counter = self._counters.get(key)
        if counter is None:
            if ":" in key:
                direction, kind = key.split(":", 1)
                counter = self.metrics.counter("comm.bytes", direction=direction, kind=kind)
            else:
                counter = self.metrics.counter("comm.bytes", direction=key)
            self._counters[key] = counter
            # A shared registry may carry traffic from an earlier run;
            # only this ledger's increments count toward its rounds.
            self._round_start.setdefault(key, counter.value)
        return counter

    def charge(self, direction: str, kind: str, num_scalars: int, copies: int = 1) -> None:
        """Charge ``copies`` transmissions of a ``num_scalars`` vector."""
        if direction not in (self.DOWN, self.UP):
            raise ValueError(f"direction must be 'down' or 'up', got {direction!r}")
        payload = vector_bytes(num_scalars, self.dtype_bytes) * copies
        self._counter(f"{direction}:{kind}").inc(payload)
        self._counter(direction).inc(payload)

    def charge_bytes(self, direction: str, kind: str, nbytes: int, copies: int = 1) -> None:
        """Charge an exact byte count (the packed wire path, where index
        streams and bit-packed words are not scalar multiples)."""
        if direction not in (self.DOWN, self.UP):
            raise ValueError(f"direction must be 'down' or 'up', got {direction!r}")
        payload = int(nbytes) * copies
        self._counter(f"{direction}:{kind}").inc(payload)
        self._counter(direction).inc(payload)

    def end_round(self) -> dict[str, int]:
        """Close the current round; returns its totals.

        The result always contains explicit ``'up'`` and ``'down'``
        entries (zero on an idle round); per-kind keys appear only when
        charged this round.
        """
        totals: dict[str, int] = {}
        for key, counter in self._counters.items():
            charged = counter.value - self._round_start[key]
            if charged or key in (self.DOWN, self.UP):
                totals[key] = charged
            self._round_start[key] = counter.value
        if self.streaming:
            self._rounds_closed += 1
            for key, charged in totals.items():
                self._totals_accum[key] = self._totals_accum.get(key, 0) + charged
            if self.stream_path is not None:
                with open(self.stream_path, "a") as handle:
                    handle.write(json.dumps(totals, sort_keys=True) + "\n")
        else:
            self._round_totals.append(totals)
        return totals

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything needed to resume this ledger bit-identically.

        Appending ledgers carry the full per-round list (the historical
        form); streaming ledgers carry only their O(1) accumulators."""
        state = {
            "dtype_bytes": self.dtype_bytes,
            "counters": {key: c.value for key, c in self._counters.items()},
        }
        if self.streaming:
            state["mode"] = "stream"
            state["rounds"] = self._rounds_closed
            state["totals"] = dict(self._totals_accum)
        else:
            state["round_totals"] = [dict(r) for r in self._round_totals]
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (either form).

        Counter values are *set*, not incremented, so restoring into a
        registry shared with a tracer (whose own counters were restored
        separately) cannot double-count.  A streaming ledger accepts an
        appending checkpoint by folding its rounds; the reverse needs
        per-round data a stream checkpoint no longer has and raises.
        """
        if int(state["dtype_bytes"]) != self.dtype_bytes:
            raise ValueError(
                f"ledger dtype_bytes mismatch: checkpoint has "
                f"{state['dtype_bytes']}, this run uses {self.dtype_bytes}"
            )
        stored_stream = state.get("mode") == "stream"
        if self.streaming:
            if stored_stream:
                self._rounds_closed = int(state["rounds"])
                self._totals_accum = {k: int(v) for k, v in state["totals"].items()}
            else:
                rounds = [dict(r) for r in state["round_totals"]]
                self._rounds_closed = len(rounds)
                self._totals_accum = {}
                for totals in rounds:
                    for key, charged in totals.items():
                        self._totals_accum[key] = (
                            self._totals_accum.get(key, 0) + charged
                        )
            self._truncate_spool(self._rounds_closed)
        else:
            if stored_stream:
                raise ValueError(
                    "checkpoint was written by a streaming ledger (summaries "
                    "only); resume with history_mode='stream' or start over"
                )
            self._round_totals = [dict(r) for r in state["round_totals"]]
        for key, value in state["counters"].items():
            counter = self._counter(key)
            counter.value = value
            self._round_start[key] = counter.value

    def _truncate_spool(self, rounds: int) -> None:
        """Drop spooled lines past ``rounds`` (the spool can be ahead of
        the newest checkpoint after a crash)."""
        if self.stream_path is None or not os.path.exists(self.stream_path):
            return
        with open(self.stream_path) as handle:
            lines = [line for line in handle if line.strip()]
        with open(self.stream_path, "w") as handle:
            handle.writelines(lines[:rounds])

    @property
    def rounds(self) -> int:
        return self._rounds_closed if self.streaming else len(self._round_totals)

    def _spooled_rounds(self) -> list[dict[str, int]]:
        if self.stream_path is None:
            raise RuntimeError(
                "this streaming CommLedger keeps totals only; per-round "
                "series need a spool — set FLConfig.stream_dir or use the "
                "appending ledger"
            )
        if not os.path.exists(self.stream_path):
            return []
        with open(self.stream_path) as handle:
            return [json.loads(line) for line in handle if line.strip()]

    def round_bytes(self, round_idx: int) -> dict[str, int]:
        if self.streaming:
            return dict(self._spooled_rounds()[round_idx])
        return dict(self._round_totals[round_idx])

    def total(self, key: str | None = None) -> int:
        """Total bytes over all closed rounds (optionally one key)."""
        if self.streaming:
            if key is None:
                return self._totals_accum.get(self.DOWN, 0) + self._totals_accum.get(
                    self.UP, 0
                )
            return self._totals_accum.get(key, 0)
        if key is None:
            return sum(r[self.DOWN] + r[self.UP] for r in self._round_totals)
        return sum(r.get(key, 0) for r in self._round_totals)

    def per_round_series(self, key: str) -> np.ndarray:
        rounds = self._spooled_rounds() if self.streaming else self._round_totals
        return np.array([r.get(key, 0) for r in rounds], dtype=np.int64)
