"""Communication accounting.

Every vector that crosses the client-server boundary is charged to a
:class:`CommLedger`, split by direction (downlink = server to clients,
uplink = clients to server) and payload kind ('model', 'delta',
'control', 'scalar').  The efficiency evaluation (Table III, Fig. 10)
reads these ledgers.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np


def vector_bytes(size: int, dtype_bytes: int = 4) -> int:
    """Wire size of a ``size``-element vector."""
    return int(size) * int(dtype_bytes)


class CommLedger:
    """Accumulates per-round and total communication volumes."""

    DOWN = "down"
    UP = "up"

    def __init__(self, dtype_bytes: int = 4) -> None:
        self.dtype_bytes = dtype_bytes
        self._round_totals: list[dict[str, int]] = []
        self._current: dict[str, int] = defaultdict(int)

    def charge(self, direction: str, kind: str, num_scalars: int, copies: int = 1) -> None:
        """Charge ``copies`` transmissions of a ``num_scalars`` vector."""
        if direction not in (self.DOWN, self.UP):
            raise ValueError(f"direction must be 'down' or 'up', got {direction!r}")
        payload = vector_bytes(num_scalars, self.dtype_bytes) * copies
        self._current[f"{direction}:{kind}"] += payload
        self._current[direction] += payload

    def end_round(self) -> dict[str, int]:
        """Close the current round; returns its totals."""
        totals = dict(self._current)
        self._round_totals.append(totals)
        self._current = defaultdict(int)
        return totals

    @property
    def rounds(self) -> int:
        return len(self._round_totals)

    def round_bytes(self, round_idx: int) -> dict[str, int]:
        return dict(self._round_totals[round_idx])

    def total(self, key: str | None = None) -> int:
        """Total bytes over all closed rounds (optionally one key)."""
        if key is None:
            return sum(r.get(self.DOWN, 0) + r.get(self.UP, 0) for r in self._round_totals)
        return sum(r.get(key, 0) for r in self._round_totals)

    def per_round_series(self, key: str) -> np.ndarray:
        return np.array([r.get(key, 0) for r in self._round_totals], dtype=np.int64)
