"""Region-parallel hierarchical aggregation (client -> region -> cloud).

A hierarchical run (``FLConfig(topology="hier:R:P")``) partitions the
population into R contiguous **regions**.  Every round each region runs
the standard algorithm round — broadcast, local client work, commit,
``_aggregate_updates`` — over its own client slice and its own model;
every P rounds a **cloud** step averages the region models (weighted by
region data volume) and redistributes.  Only that region <-> cloud hop
is charged as expensive ``cloud-model`` traffic; client <-> region
traffic keeps the flat engine's ``model`` kind.  See
``docs/hierarchy.md`` for the topology grammar, the bytes accounting
and the resume semantics (including the HierFAVG drift discussion that
used to live here).

The engine composes with the rest of the stack rather than simulating
around it:

* Client execution goes through the algorithm's
  :class:`~repro.fl.parallel.ClientExecutor` —
  :meth:`~repro.fl.parallel.ClientExecutor.run_regions` lets the wire
  transport run *all* regions' clients concurrently on one persistent
  process pool, which is the headline multi-core speedup.
* Virtual populations, sharded delta tables, streaming
  histories/ledgers, compression pipelines and fault models all work
  unchanged; the optional ``cloud_compression`` spec compresses the
  region -> cloud uplink as a delta against the last cloud model.
* Checkpoints carry the region models in a dedicated section
  (:data:`repro.ckpt.state.SECTION_HIERARCHY`); crash-resume is
  bit-identical, and flat <-> hierarchical cross-resume is refused.

**House invariant.** ``topology="hier:1:1"`` (one region, cloud sync
every round — where the sync short-circuits entirely) reproduces the
flat engine bit for bit — parameters, ledger, accuracy — for every
registered algorithm (``tests/fl/test_hierarchy_equivalence.py``).

The legacy eager HierFAVG entry points (:class:`HierarchyConfig`,
:func:`run_hierarchical`) remain as deprecated shims that delegate to
this engine.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import FederatedDataset
from repro.exceptions import CheckpointError, ConfigError
from repro.fl.client import evaluate_model
from repro.fl.comm import CommLedger
from repro.fl.config import FLConfig, parse_topology_spec
from repro.fl.metrics import History, RoundRecord
from repro.fl.server import weighted_average
from repro.fl.trainer import (
    RoundCallback,
    build_history,
    eval_per_client_accuracy,
    make_client_loss,
    release_round_state,
    resolve_round_callbacks,
    select_round_clients,
)
from repro.models.split import SplitModel
from repro.nn.serialization import set_flat_params
from repro.obs.sysinfo import record_scale_gauges


# -- region partitioning -------------------------------------------------------------


class RegionSet:
    """A contiguous partition of ``[0, num_clients)`` into regions.

    Regions are contiguous, ascending id ranges (``np.array_split``
    semantics: the first ``N % R`` regions get one extra client), so a
    sorted cohort splits into per-region sub-cohorts with
    ``searchsorted`` — no O(N) assignment array exists, which keeps a
    million-client virtual population's region bookkeeping O(R).
    Contiguity also makes region-major iteration over the sub-cohorts
    equal the global ascending selection order, the property that keeps
    commit order identical to the flat engine.
    """

    def __init__(self, num_clients: int, num_regions: int) -> None:
        if num_regions < 1:
            raise ConfigError(f"need at least one region, got {num_regions}")
        if num_regions > num_clients:
            raise ConfigError(
                f"need num_regions <= num_clients, got {num_regions} regions "
                f"for {num_clients} clients"
            )
        self.num_clients = int(num_clients)
        self.num_regions = int(num_regions)
        div, mod = divmod(self.num_clients, self.num_regions)
        sizes = np.full(self.num_regions, div, dtype=np.int64)
        sizes[:mod] += 1
        self.bounds = np.concatenate(([0], np.cumsum(sizes)))

    def region_sizes(self) -> np.ndarray:
        return np.diff(self.bounds)

    def slice(self, region: int) -> tuple[int, int]:
        """The ``[lo, hi)`` client-id range owned by one region."""
        return int(self.bounds[region]), int(self.bounds[region + 1])

    def region_of(self, client_ids) -> np.ndarray:
        """Owning region index for each client id."""
        ids = np.asarray(client_ids, dtype=np.int64)
        return np.searchsorted(self.bounds, ids, side="right") - 1

    def split_cohort(self, selected: np.ndarray) -> list[np.ndarray]:
        """Split a sorted cohort into per-region sub-cohorts.

        Sub-cohorts are contiguous slices of ``selected``; concatenated
        in region order they reproduce the cohort exactly.
        """
        cuts = np.searchsorted(selected, self.bounds)
        return [selected[cuts[r]: cuts[r + 1]] for r in range(self.num_regions)]

    def data_weights(self, client_sizes: np.ndarray) -> np.ndarray:
        """Per-region total data volume (the cloud averaging weights)."""
        return np.array(
            [
                client_sizes[self.bounds[r]: self.bounds[r + 1]].sum()
                for r in range(self.num_regions)
            ],
            dtype=np.float64,
        )


# -- the engine ---------------------------------------------------------------------


def _virtual_global(region_params: list[np.ndarray], weights: np.ndarray) -> np.ndarray:
    """The model the run reports between cloud syncs.

    With one region this *is* the region model (no averaging, keeping
    the flat bit-identity); with several it is the weighted average the
    next cloud sync would produce — an eval-only view, never fed back
    into training.
    """
    if len(region_params) == 1:
        return region_params[0]
    return weighted_average(region_params, weights)


def run_hier_federated(
    algorithm,
    fed: FederatedDataset,
    model_fn: Callable[[], SplitModel],
    config: FLConfig,
    *,
    eval_per_client: bool = False,
    callbacks: Sequence[RoundCallback] | None = None,
    selector=None,
    tracer=None,
    region_observer: Callable[[dict], None] | None = None,
) -> History:
    """Run one hierarchical federated job; called by
    :func:`repro.fl.trainer.run_federated` when ``config.topology``
    is ``'hier:R:P'`` (the dtype policy and executor lifecycle are
    managed there).

    ``region_observer``, when given, is invoked once per round with a
    dict carrying ``round``, ``cloud_sync``, ``region_params`` (copies),
    ``region_weights``, ``train_loss`` and ``test_accuracy`` (eval
    rounds only) — the hook the legacy :func:`run_hierarchical` shim
    and the drift studies build their per-region series from.
    """
    num_regions, edge_period = parse_topology_spec(config.topology)
    round_callbacks, tracer = resolve_round_callbacks(callbacks, tracer)

    model = model_fn()
    algorithm.tracer = tracer
    algorithm.setup(model, fed, config)
    if num_regions > 1 and not getattr(algorithm, "region_aggregation_safe", True):
        raise ConfigError(
            f"{algorithm.name} maintains exact per-round global state and "
            f"cannot aggregate per region; topology {config.topology!r} needs "
            f"R=1 (e.g. 'hier:1:{edge_period}') or a different algorithm"
        )
    regions = RegionSet(fed.num_clients, num_regions)
    round_rng = np.random.default_rng([config.seed, 0xF1])
    client_loss = make_client_loss(algorithm, model, fed, config)

    history = build_history(algorithm.name, config)

    assert algorithm.global_params is not None
    region_params = [algorithm.global_params.copy() for _ in range(num_regions)]
    region_weights = regions.data_weights(fed.client_sizes)
    # The reference the cloud-hop delta compression encodes against;
    # only advanced at cloud syncs.
    cloud_params = algorithm.global_params.copy()
    cloud_compressor = None
    spec = getattr(config, "cloud_compression", "none")
    if num_regions > 1 and spec not in (None, "", "none"):
        from repro.fl.compression import compressor_from_spec

        cloud_compressor = compressor_from_spec(spec)
    if tracer.enabled:
        tracer.metrics.gauge("hierarchy.regions").set(num_regions)
        tracer.metrics.gauge("hierarchy.edge_period").set(edge_period)

    # Crash-safe checkpointing: the standard run snapshot plus one
    # engine-owned section for the region models and the cloud
    # reference.  The sync schedule is a pure function of the round
    # index, so no schedule state needs to ride along.
    manager = None
    start_round = 0
    if config.checkpoint_dir is not None:
        from repro.ckpt.format import unpack_tree
        from repro.ckpt.manager import CheckpointManager
        from repro.ckpt.state import (
            SECTION_HIERARCHY,
            capture_run_state,
            restore_run_state,
        )

        manager = CheckpointManager(config.checkpoint_dir, keep=config.checkpoint_keep)
        if config.resume:
            loaded = manager.load_latest_valid()
            if loaded is not None:
                manifest, sections = loaded
                last_round = restore_run_state(
                    manifest,
                    sections,
                    algorithm=algorithm,
                    round_rng=round_rng,
                    history=history,
                    config=config,
                    tracer=tracer,
                )
                if SECTION_HIERARCHY not in sections:
                    raise CheckpointError(
                        "checkpoint carries no hierarchy section; it was "
                        "written by a flat run"
                    )
                tier_state = unpack_tree(sections[SECTION_HIERARCHY])
                region_params = [
                    np.array(p, copy=True) for p in tier_state["region_params"]
                ]
                cloud_params = np.array(tier_state["cloud_params"], copy=True)
                if len(region_params) != num_regions:
                    raise CheckpointError(
                        f"checkpoint carries {len(region_params)} region models, "
                        f"this run has {num_regions} regions"
                    )
                start_round = last_round + 1

    for round_idx in range(start_round, config.rounds):
        with tracer.span("round", round=round_idx):
            with tracer.span("sample"):
                selected = select_round_clients(
                    round_idx, fed, config, round_rng, selector, client_loss
                )
            if tracer.enabled:
                for client_id in selected:
                    tracer.metrics.counter(
                        "clients.selected", client=int(client_id)
                    ).inc()
            started = time.perf_counter()

            # -- the region-structured round (mirrors Algorithm.run_round) --
            algorithm._require_setup()
            sub_cohorts = regions.split_cohort(selected)
            for r, sub in enumerate(sub_cohorts):
                if len(sub) == 0 and num_regions > 1:
                    continue
                algorithm.global_params = region_params[r]
                algorithm._pre_round(round_idx, sub)
            # Dropout filters the full cohort through one fault-RNG
            # stream, so fault draws are independent of R.
            if algorithm.fault_model is not None:
                selected = algorithm.fault_model.surviving_clients(selected)
                sub_cohorts = regions.split_cohort(selected)
            with tracer.span("broadcast"):
                for r, sub in enumerate(sub_cohorts):
                    if len(sub) == 0 and num_regions > 1:
                        continue
                    algorithm.global_params = region_params[r]
                    algorithm._charge_broadcast(sub)

            region_jobs = [
                (sub, region_params[r]) for r, sub in enumerate(sub_cohorts)
            ]
            with tracer.span("region_execute", regions=num_regions):
                region_updates = algorithm.executor.run_regions(
                    algorithm, round_idx, region_jobs
                )

            all_updates = []
            for r, (sub, updates) in enumerate(zip(sub_cohorts, region_updates)):
                if len(sub) == 0 and num_regions > 1:
                    continue
                region_started = time.perf_counter()
                algorithm.global_params = region_params[r]
                for update in updates:
                    algorithm._materialize_params(update)
                if tracer.enabled:
                    histogram = tracer.metrics.histogram("client.update_norm")
                    for update in updates:
                        histogram.observe(
                            float(
                                np.linalg.norm(
                                    update.params - algorithm.global_params
                                )
                            )
                        )
                algorithm._charge_uploads(sub, updates)
                for update in updates:
                    if algorithm.fault_model is not None and (
                        algorithm.fault_model.is_byzantine(update.client_id)
                    ):
                        algorithm.fault_model.corrupted_total += 1
                    algorithm._commit_client(round_idx, update)
                with tracer.span("aggregate", region=r):
                    algorithm.global_params = algorithm._aggregate_updates(
                        round_idx, sub, updates
                    )
                    algorithm._post_aggregate(round_idx, sub)
                region_params[r] = algorithm.global_params
                all_updates.extend(updates)
                if tracer.enabled:
                    tracer.metrics.histogram("hierarchy.region_seconds").observe(
                        sum(u.train_seconds for u in updates)
                        + (time.perf_counter() - region_started)
                    )
            stats = algorithm._round_stats(selected, all_updates)

            # -- cloud synchronization ----------------------------------
            cloud_sync = num_regions > 1 and (round_idx + 1) % edge_period == 0
            if cloud_sync:
                with tracer.span("cloud_sync", round=round_idx):
                    assert algorithm.ledger is not None
                    if cloud_compressor is None:
                        summaries = region_params
                        algorithm.ledger.charge(
                            CommLedger.UP, "cloud-model",
                            algorithm.model_size, copies=num_regions,
                        )
                    else:
                        # Each region uploads a lossy delta against the
                        # last cloud model; the cloud averages the
                        # reconstructions and is charged the true
                        # encoded bytes.
                        summaries = []
                        for r, params in enumerate(region_params):
                            rng = np.random.default_rng(
                                [config.seed, round_idx, r, 0xC1]
                            )
                            recon, wire_size = cloud_compressor.compress(
                                params - cloud_params, rng
                            )
                            summaries.append(cloud_params + recon)
                            algorithm.ledger.charge_bytes(
                                CommLedger.UP, "cloud-model",
                                wire_size.nbytes(algorithm.ledger.dtype_bytes),
                            )
                    cloud_params = weighted_average(summaries, region_weights)
                    algorithm.ledger.charge(
                        CommLedger.DOWN, "cloud-model",
                        algorithm.model_size, copies=num_regions,
                    )
                    region_params = [
                        cloud_params.copy() for _ in range(num_regions)
                    ]

            # The reported/checkpointed model: the region model itself
            # at R=1 (flat bit-identity), the eval-only weighted average
            # between syncs otherwise.
            algorithm.global_params = _virtual_global(region_params, region_weights)
            elapsed = time.perf_counter() - started

            assert algorithm.ledger is not None
            round_comm = algorithm.ledger.end_round()
            if tracer.enabled:
                cloud_bytes = sum(
                    v for k, v in round_comm.items()
                    if k.partition(":")[2] == "cloud-model"
                )
                tracer.metrics.counter("hierarchy.cloud_bytes").inc(cloud_bytes)
                tracer.metrics.counter("hierarchy.region_bytes").inc(
                    round_comm["down"] + round_comm["up"] - cloud_bytes
                )

            record = RoundRecord(
                round_idx=round_idx,
                train_loss=stats.train_loss,
                reg_loss=stats.reg_loss,
                wall_time_sec=elapsed,
                bytes_down=round_comm["down"],
                bytes_up=round_comm["up"],
                num_selected=len(selected),
            )
            is_eval_round = (
                round_idx % config.eval_every == 0 or round_idx == config.rounds - 1
            )
            if is_eval_round:
                with tracer.span("eval"):
                    set_flat_params(model, algorithm.global_params)
                    test_loss, test_acc = evaluate_model(
                        model, fed.test, config.eval_batch
                    )
                    record.test_loss = test_loss
                    record.test_accuracy = test_acc
            history.append(record)
            for callback in round_callbacks:
                callback(record)
            if region_observer is not None:
                region_observer(
                    {
                        "round": round_idx,
                        "cloud_sync": cloud_sync,
                        "region_params": [p.copy() for p in region_params],
                        "region_weights": region_weights.copy(),
                        "train_loss": stats.train_loss,
                        "test_accuracy": record.test_accuracy,
                        "bytes": round_comm,
                    }
                )

            if manager is not None and (
                (round_idx + 1) % config.checkpoint_every == 0
                or round_idx == config.rounds - 1
            ):
                with tracer.span("checkpoint"):
                    meta, sections = capture_run_state(
                        round_idx=round_idx,
                        algorithm=algorithm,
                        round_rng=round_rng,
                        history=history,
                        config=config,
                        tracer=tracer,
                        extra_sections={
                            SECTION_HIERARCHY: {
                                "region_params": list(region_params),
                                "cloud_params": cloud_params,
                            }
                        },
                    )
                    manager.save(round_idx, meta, sections)
            record_scale_gauges(tracer, fed)
        release_round_state(fed)

    history.final_accuracy = history.last_accuracy()
    if eval_per_client:
        history.per_client_accuracy = eval_per_client_accuracy(
            algorithm, model, fed, config, tracer
        )
    return history


# -- deprecated eager-API shims ------------------------------------------------------

_RUN_HIERARCHICAL_WARNED = False


@dataclass
class HierarchyConfig:
    """Deprecated two-level schedule knobs (legacy eager API).

    Use ``FLConfig(topology="hier:R:P", rounds=edge_rounds)`` with
    :func:`repro.fl.trainer.run_federated` instead.

    Attributes:
        edge_rounds: total edge-aggregation rounds.
        edge_period: cloud synchronization every this many edge rounds.
    """

    edge_rounds: int = 20
    edge_period: int = 5

    def __post_init__(self) -> None:
        if self.edge_rounds <= 0 or self.edge_period <= 0:
            raise ConfigError("edge_rounds and edge_period must be positive")


@dataclass
class HierarchicalHistory:
    """Per-edge-round metrics of a hierarchical run (legacy eager API)."""

    edge_assignment: list[np.ndarray]
    records: list[dict] = field(default_factory=list)
    final_accuracy: float | None = None

    def cloud_rounds(self) -> list[int]:
        return [r["round"] for r in self.records if r["cloud_sync"]]

    def edge_divergence_series(self) -> np.ndarray:
        return np.array([r["edge_divergence"] for r in self.records])


def assign_edges(
    num_clients: int, num_edges: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Randomly attach clients to edges (each edge gets >= 1 client).

    Legacy helper of the eager API; the first-class engine partitions
    contiguously via :class:`RegionSet` instead, so samplers can split
    cohorts without an O(N) assignment array.
    """
    if not 1 <= num_edges <= num_clients:
        raise ConfigError("need 1 <= num_edges <= num_clients")
    order = rng.permutation(num_clients)
    return [np.sort(chunk) for chunk in np.array_split(order, num_edges)]


def run_hierarchical(
    fed: FederatedDataset,
    model_fn,
    config: FLConfig,
    hierarchy: HierarchyConfig,
    num_edges: int = 2,
) -> HierarchicalHistory:
    """Deprecated: run HierFAVG through the first-class engine.

    Warns once and delegates to :func:`run_hier_federated` with
    ``topology='hier:<num_edges>:<edge_period>'`` and plain FedAvg local
    work (what the eager loop implemented), rebuilding the legacy
    :class:`HierarchicalHistory` from the engine's ``region_observer``
    stream.  Prefer
    ``run_federated(algorithm, fed, model_fn, config.with_updates(
    topology=...))`` directly.
    """
    global _RUN_HIERARCHICAL_WARNED
    if not _RUN_HIERARCHICAL_WARNED:
        _RUN_HIERARCHICAL_WARNED = True
        warnings.warn(
            "run_hierarchical()/HierarchyConfig are deprecated; set "
            "FLConfig(topology='hier:R:P') and call run_federated() — the "
            "first-class engine runs regions in parallel and composes with "
            "checkpointing, compression and virtual populations",
            DeprecationWarning,
            stacklevel=2,
        )
    from repro.algorithms.fedavg import FedAvg
    from repro.fl.trainer import run_federated

    hier_config = config.with_updates(
        rounds=hierarchy.edge_rounds,
        topology=f"hier:{num_edges}:{hierarchy.edge_period}",
        eval_every=hierarchy.edge_period,
    )
    regions = RegionSet(fed.num_clients, num_edges)
    history = HierarchicalHistory(
        edge_assignment=[
            np.arange(*regions.slice(r), dtype=np.int64)
            for r in range(regions.num_regions)
        ]
    )

    def observe(info: dict) -> None:
        stacked = np.stack(info["region_params"])
        record = {
            "round": info["round"],
            "cloud_sync": info["cloud_sync"],
            "train_loss": info["train_loss"],
            "edge_divergence": float(
                np.linalg.norm(stacked - stacked.mean(axis=0), axis=1).mean()
            ),
            "bytes": info["bytes"],
        }
        if info["test_accuracy"] is not None:
            record["test_accuracy"] = info["test_accuracy"]
        history.records.append(record)

    run_federated(
        FedAvg(), fed, model_fn, hier_config, region_observer=observe
    )
    evaluated = [r for r in history.records if "test_accuracy" in r]
    history.final_accuracy = evaluated[-1]["test_accuracy"] if evaluated else None
    return history
