"""Hierarchical federated learning (client -> edge -> cloud).

HierFAVG (Liu et al. 2020): clients attach to edge aggregators; every
round each edge averages its own clients' models, and every
``edge_period`` rounds the cloud averages the edge models.  Between
cloud synchronizations the edges drift apart exactly like clients do in
flat FedAvg — the same phenomenon the paper's regularizer targets, one
level up — which makes the hierarchy a natural stress test for
cross-group non-IIDness.

This implementation reuses the flat runtime's client-side machinery and
adds the two-level aggregation schedule plus a ledger that distinguishes
cheap client-edge traffic from expensive edge-cloud traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import FederatedDataset
from repro.exceptions import ConfigError
from repro.fl.client import evaluate_model, local_sgd_steps
from repro.fl.comm import CommLedger
from repro.fl.config import FLConfig
from repro.fl.server import weighted_average
from repro.models.split import SplitModel
from repro.nn.serialization import get_flat_params, num_params, set_flat_params


@dataclass
class HierarchyConfig:
    """Two-level schedule knobs.

    Attributes:
        edge_rounds: total edge-aggregation rounds.
        edge_period: cloud synchronization every this many edge rounds.
    """

    edge_rounds: int = 20
    edge_period: int = 5

    def __post_init__(self) -> None:
        if self.edge_rounds <= 0 or self.edge_period <= 0:
            raise ConfigError("edge_rounds and edge_period must be positive")


@dataclass
class HierarchicalHistory:
    """Per-edge-round metrics of a hierarchical run."""

    edge_assignment: list[np.ndarray]
    records: list[dict] = field(default_factory=list)
    final_accuracy: float | None = None

    def cloud_rounds(self) -> list[int]:
        return [r["round"] for r in self.records if r["cloud_sync"]]

    def edge_divergence_series(self) -> np.ndarray:
        return np.array([r["edge_divergence"] for r in self.records])


def assign_edges(
    num_clients: int, num_edges: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Randomly attach clients to edges (each edge gets >= 1 client)."""
    if not 1 <= num_edges <= num_clients:
        raise ConfigError("need 1 <= num_edges <= num_clients")
    order = rng.permutation(num_clients)
    return [np.sort(chunk) for chunk in np.array_split(order, num_edges)]


def run_hierarchical(
    fed: FederatedDataset,
    model_fn,
    config: FLConfig,
    hierarchy: HierarchyConfig,
    num_edges: int = 2,
) -> HierarchicalHistory:
    """Run HierFAVG on ``fed``.

    Every edge round: each client under each edge trains E local steps
    from its edge's model; the edge averages them.  Every
    ``edge_period`` rounds the cloud averages the edges (weighted by
    their data volume) and redistributes.
    """
    rng = np.random.default_rng([config.seed, 0xED6E])
    assignment = assign_edges(fed.num_clients, num_edges, rng)
    model: SplitModel = model_fn()
    model_size = num_params(model)
    ledger = CommLedger(config.wire_bytes_per_scalar())

    cloud_params = get_flat_params(model)
    edge_params = [cloud_params.copy() for _ in range(num_edges)]
    edge_weights = np.array(
        [fed.client_sizes[clients].sum() for clients in assignment], dtype=np.float64
    )

    history = HierarchicalHistory(edge_assignment=assignment)
    for edge_round in range(hierarchy.edge_rounds):
        losses = []
        for edge_idx, clients in enumerate(assignment):
            updates = []
            for client_id in clients:
                set_flat_params(model, edge_params[edge_idx])
                result = local_sgd_steps(
                    model,
                    fed.clients[int(client_id)],
                    config,
                    np.random.default_rng([config.seed, edge_round, int(client_id)]),
                    step_offset=edge_round * config.local_steps,
                )
                updates.append(get_flat_params(model))
                losses.append(result.mean_task_loss)
            # Client <-> edge traffic (cheap links, still accounted).
            ledger.charge(CommLedger.DOWN, "edge-model", model_size, copies=len(clients))
            ledger.charge(CommLedger.UP, "edge-model", model_size, copies=len(clients))
            weights = fed.client_sizes[clients].astype(np.float64)
            edge_params[edge_idx] = weighted_average(updates, weights)

        cloud_sync = (edge_round + 1) % hierarchy.edge_period == 0
        if cloud_sync:
            cloud_params = weighted_average(edge_params, edge_weights)
            edge_params = [cloud_params.copy() for _ in range(num_edges)]
            # Edge <-> cloud traffic (the expensive WAN hop).
            ledger.charge(CommLedger.UP, "cloud-model", model_size, copies=num_edges)
            ledger.charge(CommLedger.DOWN, "cloud-model", model_size, copies=num_edges)

        stacked = np.stack(edge_params)
        divergence = float(np.linalg.norm(stacked - stacked.mean(axis=0), axis=1).mean())
        record = {
            "round": edge_round,
            "cloud_sync": cloud_sync,
            "train_loss": float(np.mean(losses)),
            "edge_divergence": divergence,
            "bytes": ledger.end_round(),
        }
        if cloud_sync or edge_round == hierarchy.edge_rounds - 1:
            set_flat_params(model, weighted_average(edge_params, edge_weights))
            _loss, acc = evaluate_model(model, fed.test, config.eval_batch)
            record["test_accuracy"] = acc
        history.records.append(record)

    last_eval = [r for r in history.records if "test_accuracy" in r]
    history.final_accuracy = last_eval[-1]["test_accuracy"] if last_eval else None
    return history
