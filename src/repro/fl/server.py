"""Server-side aggregation primitives."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ProtocolError


def weighted_average(vectors: list[np.ndarray], weights: np.ndarray) -> np.ndarray:
    """FedAvg aggregation: sum_k p_k * v_k with p normalized to 1.

    Args:
        vectors: per-client flat parameter vectors (same length).
        weights: non-negative weights, typically client sample counts;
            normalized internally.
    """
    if not vectors:
        raise ProtocolError("cannot aggregate an empty update set")
    weights = np.asarray(weights, dtype=np.float64)
    if len(weights) != len(vectors):
        raise ProtocolError(f"{len(vectors)} vectors but {len(weights)} weights")
    if (weights < 0).any():
        raise ProtocolError("aggregation weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ProtocolError("aggregation weights sum to zero")
    norm = weights / total
    dim = vectors[0].shape
    # Accumulate in float64 regardless of the client dtype (a float32
    # running sum would lose low-order bits client by client), then cast
    # back so a float32 run keeps float32 global parameters.  For
    # float64 inputs the cast is a no-op and results are unchanged.
    out = np.zeros(dim, dtype=np.float64)
    for vec, w in zip(vectors, norm):
        if vec.shape != dim:
            raise ProtocolError(f"vector shape {vec.shape} != {dim}")
        out += w * vec
    return out.astype(np.result_type(*(v.dtype for v in vectors)), copy=False)
