"""Per-client runtime models for the asynchronous execution engine.

A :class:`ClientRuntime` answers one question: *how long does client k
take to run one dispatched local round?*  The answer is simulated
seconds — the async engine (:mod:`repro.fl.async_engine`) advances an
event clock with them, so wall-clock cost of the simulation itself is
unaffected.

Every model is **stateless**: a duration is a pure function of
``(seed, round_idx, client_id)``, exactly like the per-client training
RNG streams.  That is what keeps checkpoint/resume bit-identical with
no runtime state to snapshot, and what makes durations independent of
executor placement or worker count.

Three families cover the straggler regimes of interest:

* :class:`InstantRuntime` — every client finishes immediately.  The
  zero-latency limit, in which the async engine reproduces the
  synchronous trainer bit for bit.
* :class:`GaussianRuntime` — each client draws a persistent base speed
  from a log-normal heterogeneity distribution, then jitters each
  dispatch with Gaussian noise (the afl-bench ``GaussianRuntime``
  idiom).  ``heterogeneity`` is the knob the straggler study sweeps.
* :class:`TraceRuntime` — trace-driven durations: an explicit
  ``(num_clients,)`` or ``(num_clients, T)`` table, cycling over
  dispatch rounds, e.g. replayed from device profiling logs.

:func:`make_runtime` builds a model from the ``FLConfig.runtime``
string spec (``"instant"``, ``"gaussian:mean=1,std=0.1,het=2"``,
``"trace:<path.json>"``) so the CLI and config files can select one
without constructing objects.
"""

from __future__ import annotations

import json

import numpy as np

from repro.exceptions import ConfigError
from repro.fl.config import RUNTIME_KINDS, validate_choice  # noqa: F401  (re-export)

# Sub-stream tags keeping runtime draws disjoint from training/privacy
# RNG streams derived from the same master seed.
_BASE_TAG = 0xA51
_JITTER_TAG = 0xA52


class ClientRuntime:
    """Interface: simulated seconds for one dispatched client round."""

    kind = "base"

    def duration(self, round_idx: int, client_id: int) -> float:
        """Simulated seconds client ``client_id`` needs for the local
        round it was dispatched in round ``round_idx``.  Deterministic
        in its arguments."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.kind


class InstantRuntime(ClientRuntime):
    """Every client completes immediately — the zero-latency limit."""

    kind = "instant"

    def duration(self, round_idx: int, client_id: int) -> float:
        return 0.0


class GaussianRuntime(ClientRuntime):
    """Log-normal per-client base speed with Gaussian per-dispatch jitter.

    Client k's base time is ``mean * exp(heterogeneity * z_k)`` with
    ``z_k ~ N(0, 1)`` drawn once per client from the seed, so
    ``heterogeneity=0`` gives a homogeneous fleet and larger values an
    increasingly heavy-tailed straggler population.  Each dispatch then
    multiplies the base by ``max(eps, 1 + std * z)`` — relative jitter,
    so fast and slow clients wobble proportionally.
    """

    kind = "gaussian"

    def __init__(
        self,
        num_clients: int,
        mean: float = 1.0,
        std: float = 0.1,
        heterogeneity: float = 0.0,
        seed: int = 0,
    ) -> None:
        if num_clients < 1:
            raise ConfigError("GaussianRuntime needs num_clients >= 1")
        if mean <= 0:
            raise ConfigError("GaussianRuntime mean must be positive")
        if std < 0 or heterogeneity < 0:
            raise ConfigError("GaussianRuntime std/heterogeneity must be >= 0")
        self.mean = float(mean)
        self.std = float(std)
        self.heterogeneity = float(heterogeneity)
        self.seed = int(seed)
        base_rng = np.random.default_rng([self.seed, _BASE_TAG])
        z = base_rng.standard_normal(num_clients)
        self.base_times = self.mean * np.exp(self.heterogeneity * z)

    def duration(self, round_idx: int, client_id: int) -> float:
        rng = np.random.default_rng(
            [self.seed, int(round_idx), int(client_id), _JITTER_TAG]
        )
        jitter = max(1e-6, 1.0 + self.std * rng.standard_normal())
        return float(self.base_times[client_id] * jitter)

    def describe(self) -> str:
        return (
            f"gaussian(mean={self.mean}, std={self.std}, "
            f"het={self.heterogeneity})"
        )


class TraceRuntime(ClientRuntime):
    """Trace-driven durations from an explicit per-client table.

    ``times`` is ``(num_clients,)`` (a constant per-client duration) or
    ``(num_clients, T)`` (per-dispatch traces, cycled by round index).
    """

    kind = "trace"

    def __init__(self, times) -> None:
        table = np.asarray(times, dtype=np.float64)
        if table.ndim == 1:
            table = table[:, None]
        if table.ndim != 2 or table.size == 0:
            raise ConfigError(
                "TraceRuntime times must be (num_clients,) or (num_clients, T)"
            )
        if (table <= 0).any():
            raise ConfigError("TraceRuntime durations must be positive")
        self.times = table

    def duration(self, round_idx: int, client_id: int) -> float:
        row = self.times[client_id]
        return float(row[round_idx % len(row)])

    def describe(self) -> str:
        return f"trace(clients={self.times.shape[0]}, length={self.times.shape[1]})"

    @classmethod
    def from_json(cls, path: str) -> "TraceRuntime":
        """Load a trace file: a JSON list (flat or nested) or an object
        with a ``"times"`` key holding one."""
        with open(path) as handle:
            data = json.load(handle)
        if isinstance(data, dict):
            data = data.get("times")
        if data is None:
            raise ConfigError(f"trace file {path!r} has no 'times' entry")
        return cls(data)


_GAUSSIAN_KEYS = {"mean": "mean", "std": "std", "het": "heterogeneity",
                  "heterogeneity": "heterogeneity"}


def _parse_gaussian_params(params: str) -> dict:
    kwargs: dict = {}
    for item in filter(None, params.split(",")):
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or key not in _GAUSSIAN_KEYS:
            raise ConfigError(
                f"bad gaussian runtime parameter {item!r}; expected "
                f"key=value with key in {sorted(set(_GAUSSIAN_KEYS))}"
            )
        try:
            kwargs[_GAUSSIAN_KEYS[key]] = float(value)
        except ValueError as exc:
            raise ConfigError(
                f"gaussian runtime parameter {key!r} must be a number, "
                f"got {value!r}"
            ) from exc
    return kwargs


def make_runtime(
    spec: "str | ClientRuntime", num_clients: int, seed: int = 0
) -> ClientRuntime:
    """Build a runtime model from a config spec (or pass one through).

    Specs: ``"instant"``, ``"gaussian"``,
    ``"gaussian:mean=1.0,std=0.1,het=2.0"``, ``"trace:<path.json>"``.
    """
    if isinstance(spec, ClientRuntime):
        return spec
    kind, _sep, params = str(spec).partition(":")
    validate_choice("runtime", kind)
    if kind == "instant":
        if params:
            raise ConfigError("the instant runtime takes no parameters")
        return InstantRuntime()
    if kind == "gaussian":
        return GaussianRuntime(
            num_clients, seed=seed, **_parse_gaussian_params(params)
        )
    if not params:
        raise ConfigError(
            "the trace runtime needs a file: runtime='trace:<path.json>'"
        )
    return TraceRuntime.from_json(params)
