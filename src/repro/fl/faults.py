"""Client failure injection for robustness experiments.

Real federations lose clients mid-round (device churn) and may contain
corrupted or adversarial participants.  :class:`FaultModel` simulates
both on top of any FedAvg-family algorithm:

* **dropout** — a selected client fails to report with probability
  ``dropout_prob``; the server aggregates whoever remains (at least one
  reporter is always kept so a round is never empty).
* **byzantine clients** — a fixed subset of client ids upload corrupted
  parameters (sign-flipped and amplified — a standard strong attack).

The paper itself notes its methods "can only alleviate the data
heterogeneity problem ... especially in case of extreme non-IID (i.e.
with outliers)"; the failure benches make that limitation measurable.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError


class FaultModel:
    """Configuration + mechanics of client failures.

    Args:
        dropout_prob: probability a selected client drops this round.
        byzantine_clients: client ids that always upload corrupted
            parameters.
        corruption_scale: magnitude of the byzantine sign-flip attack.
        seed: dedicated randomness stream for fault decisions.
    """

    def __init__(
        self,
        dropout_prob: float = 0.0,
        byzantine_clients: tuple[int, ...] = (),
        corruption_scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= dropout_prob < 1.0:
            raise ConfigError(f"dropout_prob must be in [0, 1), got {dropout_prob}")
        if corruption_scale <= 0:
            raise ConfigError("corruption_scale must be positive")
        self.dropout_prob = dropout_prob
        self.byzantine_clients = frozenset(int(c) for c in byzantine_clients)
        self.corruption_scale = corruption_scale
        self._rng = np.random.default_rng([seed, 0xFA17])
        self.dropped_total = 0
        self.corrupted_total = 0

    def state_dict(self) -> dict:
        """Round-coupled fault state: the dropout RNG and the counters."""
        return {
            "rng": self._rng.bit_generator.state,
            "dropped_total": self.dropped_total,
            "corrupted_total": self.corrupted_total,
        }

    def load_state_dict(self, state: dict) -> None:
        """Resume fault decisions exactly where a checkpoint left them."""
        self._rng.bit_generator.state = state["rng"]
        self.dropped_total = int(state["dropped_total"])
        self.corrupted_total = int(state["corrupted_total"])

    def surviving_clients(self, selected: np.ndarray) -> np.ndarray:
        """Apply dropout to this round's selection (>= 1 survivor)."""
        if self.dropout_prob == 0.0:
            return selected
        keep = self._rng.random(len(selected)) >= self.dropout_prob
        if not keep.any():
            keep[self._rng.integers(0, len(selected))] = True
        self.dropped_total += int((~keep).sum())
        return selected[keep]

    def is_byzantine(self, client_id: int) -> bool:
        """Whether ``client_id`` uploads corrupted parameters."""
        return int(client_id) in self.byzantine_clients

    def corrupt(
        self, client_id: int, params: np.ndarray, anchor: np.ndarray
    ) -> np.ndarray:
        """The byzantine upload of ``client_id`` — pure, no bookkeeping.

        Byzantine clients report the anchor minus an amplified version
        of their true update — the classic sign-flip attack.  Pure so it
        can run inside a worker process; the execution engine counts
        corruptions once per commit in the parent.
        """
        return anchor - self.corruption_scale * (params - anchor)

    def maybe_corrupt(
        self, client_id: int, params: np.ndarray, anchor: np.ndarray
    ) -> np.ndarray:
        """Return the (possibly corrupted) upload of ``client_id``."""
        if not self.is_byzantine(client_id):
            return params
        self.corrupted_total += 1
        return self.corrupt(client_id, params, anchor)
