"""Pluggable client-execution engines with serial-equivalence guarantees.

One federated round trains every selected client independently: the
per-client work reads round-start state (global parameters, delta
tables, control variates) and all randomness is derived from
``(seed, round, client)`` streams, so client order and placement cannot
change the numbers.  The engines here exploit that:

* :class:`SerialExecutor` — the in-process reference loop.
* :class:`ParallelExecutor` — a ``concurrent.futures`` process pool
  (``fork`` start method) with two transports:

  - ``'wire'`` (default): the pool is forked **once per run** and kept
    alive across rounds; the round-constant algorithm state (global
    parameters, delta tables, control variates) is packed into the
    flat-buffer wire format (:mod:`repro.fl.wire`) and written into a
    fork-inherited anonymous shared-memory buffer **once per round** —
    workers map it zero-copy instead of re-receiving pickled state.
    Workers return packed update buffers rather than pickled numpy
    objects.
  - ``'pickle'``: the pre-wire engine — one forked pool per round, the
    algorithm shipped to workers as fork-inherited memory, results
    returned as pickled :class:`ClientUpdate` records.

**Determinism contract.**  ``Algorithm._client_update`` must not mutate
shared algorithm state (worker-side mutations are discarded); every
per-client side effect belongs in ``_commit_client``, which the round
runs in *selection order* regardless of completion order.  Workers
return :class:`ClientUpdate` records and the parent reduces them in
selection order, so a parallel round is bit-identical to
``num_workers=1`` under either transport.

**Wire-transport contract.**  Because wire workers live across rounds,
everything a worker-side ``_client_update`` reads from shared algorithm
state must be enumerated by ``Algorithm._worker_state()`` (and
reinstated by ``_install_worker_state``); state not listed there goes
stale in the workers after round 0.  Algorithms that cannot enumerate
their round state set ``wire_transport_safe = False`` to force the
pickle engine.

**Fault tolerance.**  A worker crash (or any pool failure: fork
unavailable, unpicklable results, poisoned tasks) degrades the executor
to in-process serial execution with a :class:`RuntimeWarning` instead of
killing the run; a round-state payload the wire format cannot express
falls back to the pickle transport the same way.  The determinism
contract makes every retry safe.
"""

from __future__ import annotations

import mmap
import multiprocessing
import os
import struct
import time
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import as_completed
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError, WireError
from repro.fl import wire
from repro.fl.compression import WireSize
from repro.fl.config import EXECUTOR_MODES, TRANSPORTS, validate_choice
from repro.obs.trace import NULL_TRACER


@dataclass
class ClientUpdate:
    """Everything one client's local round produces.

    Attributes:
        client_id: the trained client.
        params: the parameters the server receives (after the fault /
            compression upload pipeline).  ``None`` while the update is
            still carrying compressed wire streams — the round
            materializes it before any reduction step runs.
        wire: upload size in legacy scalar units (compressed size when
            compressing); kept for backwards compatibility, the byte
            accounting uses :attr:`wire_size`.
        task_loss: mean task loss over the local steps.
        reg_loss: mean (lambda-weighted) regularizer loss.
        num_steps: local steps actually run (FedNova's tau_k).
        train_seconds: worker-side wall time of the local work.
        worker: pid of the process that ran the work (0 = in-process).
        payload: algorithm-specific picklable extras (rFedAvg's delta,
            SCAFFOLD's control refresh, MOON's previous-model update).
        params_streams: compressed wire streams (int32 ``indices`` +
            ``values``) when a sparse compressor encoded the upload;
            the server reconstructs ``params`` from them.
        wire_size: exact on-wire footprint of the upload
            (:class:`~repro.fl.compression.WireSize`); ``None`` falls
            back to legacy scalar accounting.
        residual: the client's next error-feedback accumulator
            ``e_{t+1}`` when upload compression runs with error
            feedback; committed to the server-side residual table in
            selection order.  Simulation bookkeeping — in a real
            deployment this state never leaves the client, so it is
            not charged to the ledger.
    """

    client_id: int
    params: np.ndarray | None
    wire: int
    task_loss: float
    reg_loss: float
    num_steps: int
    train_seconds: float = 0.0
    worker: int = 0
    payload: dict | None = None
    params_streams: dict | None = None
    wire_size: WireSize | None = None
    residual: np.ndarray | None = None


class ClientExecutor:
    """Interface: run the selected clients' local work for one round."""

    name = "base"
    num_workers = 1

    def run(self, algorithm, round_idx: int, client_ids: list[int]) -> list[ClientUpdate]:
        """Return one :class:`ClientUpdate` per client, in input order."""
        raise NotImplementedError

    def run_regions(
        self,
        algorithm,
        round_idx: int,
        regions: list[tuple[np.ndarray, np.ndarray]],
    ) -> list[list[ClientUpdate]]:
        """Run several regions' cohorts, each against its own model.

        ``regions`` is a list of ``(client_ids, region_params)`` pairs
        (the hierarchical engine's per-region sub-cohorts).  Returns one
        update list per region, each in input order.  The base
        implementation runs regions sequentially through :meth:`run`
        with the region's parameters installed; the wire-transport pool
        overrides this to run *all* regions' clients concurrently.
        Determinism contract as :meth:`run`: per-client work depends
        only on ``(seed, round, client)`` and the installed region
        state, so scheduling cannot change the numbers.
        """
        out: list[list[ClientUpdate]] = []
        for client_ids, params in regions:
            if not len(client_ids):
                out.append([])
                continue
            algorithm.global_params = params
            out.append(self.run(algorithm, round_idx, [int(c) for c in client_ids]))
        return out

    def close(self) -> None:
        """Release pools / shared buffers.  The executor stays usable —
        resources are re-created lazily on the next :meth:`run`."""


class SerialExecutor(ClientExecutor):
    """The reference engine: clients run one at a time, in-process."""

    name = "serial"

    def run(self, algorithm, round_idx: int, client_ids: list[int]) -> list[ClientUpdate]:
        tracer = algorithm.tracer
        updates: list[ClientUpdate] = []
        for client_id in client_ids:
            with tracer.span("local_train", client=int(client_id)):
                updates.append(algorithm._client_update(round_idx, int(client_id)))
        return updates


# The worker-process side of ParallelExecutor.  The algorithm (and, for
# the wire transport, the shared state buffer) arrive via the pool
# initializer — under fork, initargs are inherited memory, never
# pickled — so closures, tracers and live numpy state all survive; the
# per-task payloads that cross the call queue are plain picklable
# tuples.
_WORKER_ALGORITHM = None
_WORKER_STATE_BUF: mmap.mmap | None = None
_WORKER_STATE_SEQ = 0
# The unpacked round-state dict of the currently installed sequence —
# hierarchical tasks look their region's parameter segment up here
# before running (see _run_hier_wire_task).
_WORKER_STATE: dict | None = None

# Shared-memory round-state layout: [u64 payload length][u64 sequence]
# then the packed state message.  The sequence number (monotone in the
# parent) tells a worker whether its installed state is current, so an
# executor reused across runs can never serve stale round-0 state.
_STATE_HEADER = struct.Struct("<QQ")


def _bind_worker_algorithm(algorithm) -> None:
    global _WORKER_ALGORITHM
    _WORKER_ALGORITHM = algorithm
    # Child processes never report spans directly; timings travel back
    # inside ClientUpdate and the parent re-emits them.
    algorithm.tracer = NULL_TRACER


def _bind_worker_transport(algorithm, state_buf: mmap.mmap) -> None:
    global _WORKER_STATE_BUF, _WORKER_STATE_SEQ
    _bind_worker_algorithm(algorithm)
    _WORKER_STATE_BUF = state_buf
    _WORKER_STATE_SEQ = 0


def _install_round_state() -> None:
    """Adopt the round state currently in the shared buffer (idempotent).

    The parent writes the buffer strictly between rounds (all futures of
    the previous round have completed, none of the next round are
    submitted), so reading here never races a write, and the zero-copy
    views stay valid for the whole round they are used in.
    """
    global _WORKER_STATE_SEQ, _WORKER_STATE
    length, seq = _STATE_HEADER.unpack_from(_WORKER_STATE_BUF, 0)
    if seq == _WORKER_STATE_SEQ:
        return
    view = memoryview(_WORKER_STATE_BUF)[_STATE_HEADER.size : _STATE_HEADER.size + length]
    state = wire.unpack_state(view)
    _WORKER_ALGORITHM._install_worker_state(state)
    _WORKER_STATE = state
    _WORKER_STATE_SEQ = seq


def _run_task(round_idx: int, slots: list[tuple[int, int]]) -> list[tuple[int, ClientUpdate]]:
    """Run a chunk of ``(position, client_id)`` slots in this worker."""
    pid = os.getpid()
    out = []
    for position, client_id in slots:
        update = _WORKER_ALGORITHM._client_update(round_idx, client_id)
        update.worker = pid
        out.append((position, update))
    return out


def _run_wire_task(
    round_idx: int, slots: list[tuple[int, int]]
) -> list[tuple[int, bytes | ClientUpdate]]:
    """Wire-transport task: refresh round state, return packed updates.

    An update the wire format cannot express (exotic payload values)
    falls back to the pickled record for that client only.
    """
    _install_round_state()
    pid = os.getpid()
    out: list[tuple[int, bytes | ClientUpdate]] = []
    for position, client_id in slots:
        update = _WORKER_ALGORITHM._client_update(round_idx, client_id)
        update.worker = pid
        try:
            out.append((position, wire.pack_client_update(update)))
        except WireError:
            out.append((position, update))
    return out


def _run_hier_wire_task(
    round_idx: int, region: int, slots: list[tuple[int, int]]
) -> list[tuple[int, bytes | ClientUpdate]]:
    """Wire-transport task bound to one region of a hierarchical round.

    The broadcast round state carries every region's model as a
    ``hier.<r>`` segment; the task installs the shared state once per
    sequence, then points ``global_params`` at its own region's segment
    before running — so one persistent pool serves all regions of a
    round concurrently.
    """
    _install_round_state()
    _WORKER_ALGORITHM.global_params = _WORKER_STATE[f"hier.{region}"]
    pid = os.getpid()
    out: list[tuple[int, bytes | ClientUpdate]] = []
    for position, client_id in slots:
        update = _WORKER_ALGORITHM._client_update(round_idx, client_id)
        update.worker = pid
        try:
            out.append((position, wire.pack_client_update(update)))
        except WireError:
            out.append((position, update))
    return out


class ParallelExecutor(ClientExecutor):
    """Process-pool engine.

    Args:
        num_workers: pool size (capped at the round's client count for
            scheduling purposes).
        chunked: schedule contiguous client chunks (one task per worker,
            fewer queue round-trips) instead of one task per client
            (better load balance under heterogeneous client cost).
        transport: ``'wire'`` (persistent pool, shared-memory round
            state, packed results — the default) or ``'pickle'`` (one
            forked pool per round, pickled results).
    """

    name = "process"

    def __init__(
        self, num_workers: int, chunked: bool = False, transport: str = "wire"
    ) -> None:
        if num_workers < 1:
            raise ConfigError(f"num_workers must be >= 1, got {num_workers}")
        validate_choice("transport", transport)
        self.num_workers = num_workers
        self.chunked = chunked
        self.transport = transport
        self._fallback: SerialExecutor | None = None
        self._pool: _ProcessPool | None = None
        self._mmap: mmap.mmap | None = None
        self._bound = None  # weakref to the algorithm forked into the pool
        self._seq = 0

    # -- degradation ---------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True once the engine has fallen back to in-process execution."""
        return self._fallback is not None

    def _degrade(self, reason: str) -> SerialExecutor:
        self._close_wire()
        warnings.warn(
            f"parallel client execution disabled ({reason}); "
            "continuing with in-process serial execution",
            RuntimeWarning,
            stacklevel=3,
        )
        self._fallback = SerialExecutor()
        return self._fallback

    # -- scheduling ----------------------------------------------------------------
    def _tasks(self, client_ids: list[int]) -> list[list[tuple[int, int]]]:
        slots = list(enumerate(int(c) for c in client_ids))
        if not self.chunked:
            return [[slot] for slot in slots]
        num_chunks = min(self.num_workers, len(slots))
        bounds = np.array_split(np.arange(len(slots)), num_chunks)
        return [[slots[i] for i in chunk] for chunk in bounds if len(chunk)]

    # -- pickle transport (one pool per round) -------------------------------------
    def _run_pool(self, algorithm, round_idx: int, client_ids: list[int]) -> list[ClientUpdate]:
        context = multiprocessing.get_context("fork")
        workers = min(self.num_workers, len(client_ids))
        results: list[ClientUpdate | None] = [None] * len(client_ids)
        with _ProcessPool(
            max_workers=workers,
            mp_context=context,
            initializer=_bind_worker_algorithm,
            initargs=(algorithm,),
        ) as pool:
            futures = [
                pool.submit(_run_task, round_idx, task) for task in self._tasks(client_ids)
            ]
            for future in as_completed(futures):
                for position, update in future.result():
                    results[position] = update
        missing = [client_ids[i] for i, u in enumerate(results) if u is None]
        if missing:
            raise RuntimeError(f"workers returned no result for clients {missing}")
        return results  # type: ignore[return-value]

    # -- wire transport (persistent pool + shared-memory state) --------------------
    def _use_wire(self, algorithm) -> bool:
        return (
            self.transport == "wire"
            and getattr(algorithm, "wire_transport_safe", False)
            and hasattr(algorithm, "_worker_state")
        )

    def _close_wire(self) -> None:
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=True, cancel_futures=True)
            except Exception:
                pass
            self._pool = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        self._bound = None

    def close(self) -> None:
        self._close_wire()

    def _ensure_wire_pool(self, algorithm, state_len: int) -> None:
        """Fork the persistent pool (or re-fork it when the bound
        algorithm changed or the state outgrew the shared buffer)."""
        needed = _STATE_HEADER.size + state_len
        if self._pool is not None:
            bound = self._bound() if self._bound is not None else None
            if bound is not algorithm or needed > len(self._mmap):
                self._close_wire()
        if self._pool is None:
            # Round state is fixed-size after setup for every built-in
            # algorithm, so a small slack absorbs header jitter without
            # re-forks.
            self._mmap = mmap.mmap(-1, needed + 4096)
            self._pool = _ProcessPool(
                max_workers=self.num_workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_bind_worker_transport,
                initargs=(algorithm, self._mmap),
            )
            self._bound = weakref.ref(algorithm)

    def _broadcast_state(self, packed: bytes) -> None:
        """Publish the round state: one write, visible to every worker."""
        self._seq += 1
        header_size = _STATE_HEADER.size
        self._mmap[:header_size] = _STATE_HEADER.pack(len(packed), self._seq)
        self._mmap[header_size : header_size + len(packed)] = packed

    def _run_wire_pool(
        self, algorithm, round_idx: int, client_ids: list[int]
    ) -> list[ClientUpdate]:
        packed = wire.pack_state(algorithm._worker_state())
        self._ensure_wire_pool(algorithm, len(packed))
        self._broadcast_state(packed)
        results: list[ClientUpdate | None] = [None] * len(client_ids)
        futures = [
            self._pool.submit(_run_wire_task, round_idx, task)
            for task in self._tasks(client_ids)
        ]
        for future in as_completed(futures):
            for position, item in future.result():
                if isinstance(item, (bytes, bytearray)):
                    item = wire.unpack_client_update(item)
                results[position] = item
        missing = [client_ids[i] for i, u in enumerate(results) if u is None]
        if missing:
            raise RuntimeError(f"workers returned no result for clients {missing}")
        return results  # type: ignore[return-value]

    def _run_hier_wire_pool(
        self,
        algorithm,
        round_idx: int,
        regions: list[tuple[np.ndarray, np.ndarray]],
    ) -> list[list[ClientUpdate]]:
        """Run every region's cohort concurrently on the persistent pool.

        One broadcast carries the shared algorithm state plus every
        region's model (``hier.<r>`` segments); tasks from all regions
        share the worker pool, so regions aggregate-in-parallel instead
        of waiting on each other — the hierarchical engine's multi-core
        speedup.  Results are slotted back per region in input order.
        """
        state = algorithm._worker_state()
        for r, (_ids, params) in enumerate(regions):
            state[f"hier.{r}"] = params
        packed = wire.pack_state(state)
        self._ensure_wire_pool(algorithm, len(packed))
        self._broadcast_state(packed)
        results: list[list[ClientUpdate | None]] = [
            [None] * len(ids) for ids, _params in regions
        ]
        future_region = {}
        for r, (client_ids, _params) in enumerate(regions):
            if not len(client_ids):
                continue
            for task in self._tasks([int(c) for c in client_ids]):
                future = self._pool.submit(_run_hier_wire_task, round_idx, r, task)
                future_region[future] = r
        for future in as_completed(future_region):
            r = future_region[future]
            for position, item in future.result():
                if isinstance(item, (bytes, bytearray)):
                    item = wire.unpack_client_update(item)
                results[r][position] = item
        missing = [
            (r, int(regions[r][0][i]))
            for r, slots in enumerate(results)
            for i, u in enumerate(slots)
            if u is None
        ]
        if missing:
            raise RuntimeError(
                f"workers returned no result for (region, client) {missing}"
            )
        return results  # type: ignore[return-value]

    def run_regions(
        self,
        algorithm,
        round_idx: int,
        regions: list[tuple[np.ndarray, np.ndarray]],
    ) -> list[list[ClientUpdate]]:
        live = sum(1 for ids, _params in regions if len(ids))
        if (
            self._fallback is not None
            or live <= 1
            or not self._use_wire(algorithm)
            or "fork" not in multiprocessing.get_all_start_methods()
        ):
            # Sequential per-region dispatch; run() itself handles
            # degradation, fork availability and the pickle transport.
            return super().run_regions(algorithm, round_idx, regions)
        started = time.perf_counter()
        try:
            results = self._run_hier_wire_pool(algorithm, round_idx, regions)
        except WireError as exc:
            self._close_wire()
            warnings.warn(
                f"packed wire transport unavailable ({exc}); "
                "falling back to sequential region execution",
                RuntimeWarning,
                stacklevel=3,
            )
            self.transport = "pickle"
            return super().run_regions(algorithm, round_idx, regions)
        except Exception as exc:  # worker crash, pickling failure, pool breakage
            self._degrade(f"worker pool failed: {exc!r}")
            return super().run_regions(algorithm, round_idx, regions)
        elapsed = time.perf_counter() - started
        self._record_metrics(
            algorithm.tracer,
            [update for slots in results for update in slots],
            elapsed,
        )
        return results

    def _dispatch(self, algorithm, round_idx: int, client_ids: list[int]) -> list[ClientUpdate]:
        if self._use_wire(algorithm):
            try:
                return self._run_wire_pool(algorithm, round_idx, client_ids)
            except WireError as exc:
                # The algorithm's round state cannot ride the packed
                # format; parallelism itself is fine — use pickling.
                self._close_wire()
                warnings.warn(
                    f"packed wire transport unavailable ({exc}); "
                    "falling back to the pickle transport",
                    RuntimeWarning,
                    stacklevel=4,
                )
                self.transport = "pickle"
        return self._run_pool(algorithm, round_idx, client_ids)

    # -- execution -----------------------------------------------------------------
    def run(self, algorithm, round_idx: int, client_ids: list[int]) -> list[ClientUpdate]:
        if self._fallback is not None:
            return self._fallback.run(algorithm, round_idx, client_ids)
        if not len(client_ids):
            return []
        if "fork" not in multiprocessing.get_all_start_methods():
            return self._degrade("the 'fork' start method is unavailable").run(
                algorithm, round_idx, client_ids
            )
        started = time.perf_counter()
        try:
            updates = self._dispatch(algorithm, round_idx, [int(c) for c in client_ids])
        except Exception as exc:  # worker crash, pickling failure, pool breakage
            return self._degrade(f"worker pool failed: {exc!r}").run(
                algorithm, round_idx, client_ids
            )
        elapsed = time.perf_counter() - started
        self._record_metrics(algorithm.tracer, updates, elapsed)
        return updates

    def _record_metrics(self, tracer, updates: list[ClientUpdate], elapsed: float) -> None:
        """Emit per-round parallelism telemetry through the tracer.

        Besides the worker/speedup gauges, this flags rounds where the
        pool made things *slower* (busy time below wall time — the
        cpu-bound regime on a single core, where fork + pickling overhead
        dominates; see ``docs/parallelism.md``).  The hint is an obs-layer
        signal, not a warning, so determinism-focused test runs stay
        quiet.
        """
        if not tracer.enabled:
            return
        # Re-emit each worker's local_train as a span with the
        # worker-measured duration, in selection order.
        for update in updates:
            with tracer.span(
                "local_train", client=update.client_id, worker=update.worker
            ) as span:
                pass
            span.duration = update.train_seconds
        metrics = tracer.metrics
        metrics.gauge("parallel.workers").set(min(self.num_workers, len(updates)))
        if elapsed > 0:
            busy = sum(u.train_seconds for u in updates)
            speedup = busy / elapsed
            metrics.gauge("parallel.speedup").set(speedup)
            if speedup < 1.0:
                metrics.counter("parallel.slowdown_rounds").inc()
                with tracer.span(
                    "parallel_hint",
                    speedup=round(speedup, 3),
                    hint="pool overhead exceeds parallel gain; "
                    "consider executor='serial' on this machine",
                ):
                    pass
        return


def make_executor(config) -> ClientExecutor:
    """Build the engine an :class:`~repro.fl.config.FLConfig` asks for.

    ``executor='auto'`` picks the process pool whenever
    ``num_workers > 1`` **and** the host has more than one CPU — on a
    single-core host pool overhead always exceeds the parallel gain
    (the cpu_bound regime in BENCH_parallel.json), so auto resolves to
    the serial loop there.  ``'serial'``, ``'process'`` and
    ``'chunked'`` force a specific engine (an explicit ``'process'``
    run on one core still gets the ``parallel_hint`` span instead of a
    silent downgrade).  The config's ``transport`` selects how the pool
    moves payloads.
    """
    if getattr(config, "execution", "sync") == "serve":
        # The serving engine replaces the in-process pool wholesale:
        # workers are socket-connected processes (:mod:`repro.serve`),
        # and the executor/transport knobs do not apply.
        from repro.serve.server import ServeExecutor

        return ServeExecutor.from_config(config)
    mode = getattr(config, "executor", "auto")
    workers = int(getattr(config, "num_workers", 1))
    transport = getattr(config, "transport", "wire")
    validate_choice("executor", mode)
    if mode == "serial" or (
        mode == "auto" and (workers <= 1 or (os.cpu_count() or 1) <= 1)
    ):
        return SerialExecutor()
    return ParallelExecutor(workers, chunked=(mode == "chunked"), transport=transport)
