"""Pluggable client-execution engines with serial-equivalence guarantees.

One federated round trains every selected client independently: the
per-client work reads round-start state (global parameters, delta
tables, control variates) and all randomness is derived from
``(seed, round, client)`` streams, so client order and placement cannot
change the numbers.  The engines here exploit that:

* :class:`SerialExecutor` — the in-process reference loop.
* :class:`ParallelExecutor` — a ``concurrent.futures`` process pool
  (``fork`` start method) that ships picklable ``(position, client_id)``
  task payloads to workers and the full algorithm state to each worker
  process at fork time, once per round, so per-round state (delta
  tables, previous local models, control variates) is always current.

**Determinism contract.**  ``Algorithm._client_update`` must not mutate
shared algorithm state (worker-side mutations are discarded with the
forked process); every per-client side effect belongs in
``_commit_client``, which the round runs in *selection order* regardless
of completion order.  Workers return :class:`ClientUpdate` records and
the parent reduces them in selection order, so a parallel round is
bit-identical to ``num_workers=1``.

**Fault tolerance.**  A worker crash (or any pool failure: fork
unavailable, unpicklable results, poisoned tasks) degrades the executor
to in-process serial execution with a :class:`RuntimeWarning` instead of
killing the run; the determinism contract makes the retry safe.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import as_completed
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError
from repro.obs.trace import NULL_TRACER

EXECUTOR_MODES = ("auto", "serial", "process", "chunked")


@dataclass
class ClientUpdate:
    """Everything one client's local round produces.

    Attributes:
        client_id: the trained client.
        params: the parameters the server receives (after the fault /
            compression upload pipeline).
        wire: upload size in scalars (compressed size when compressing).
        task_loss: mean task loss over the local steps.
        reg_loss: mean (lambda-weighted) regularizer loss.
        num_steps: local steps actually run (FedNova's tau_k).
        train_seconds: worker-side wall time of the local work.
        worker: pid of the process that ran the work (0 = in-process).
        payload: algorithm-specific picklable extras (rFedAvg's delta,
            SCAFFOLD's control refresh, MOON's previous-model update).
    """

    client_id: int
    params: np.ndarray
    wire: int
    task_loss: float
    reg_loss: float
    num_steps: int
    train_seconds: float = 0.0
    worker: int = 0
    payload: dict | None = None


class ClientExecutor:
    """Interface: run the selected clients' local work for one round."""

    name = "base"
    num_workers = 1

    def run(self, algorithm, round_idx: int, client_ids: list[int]) -> list[ClientUpdate]:
        """Return one :class:`ClientUpdate` per client, in input order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (pools are per-round, so a no-op here)."""


class SerialExecutor(ClientExecutor):
    """The reference engine: clients run one at a time, in-process."""

    name = "serial"

    def run(self, algorithm, round_idx: int, client_ids: list[int]) -> list[ClientUpdate]:
        tracer = algorithm.tracer
        updates: list[ClientUpdate] = []
        for client_id in client_ids:
            with tracer.span("local_train", client=int(client_id)):
                updates.append(algorithm._client_update(round_idx, int(client_id)))
        return updates


# The worker-process side of ParallelExecutor.  The algorithm arrives
# via the pool initializer (under fork, initargs are inherited memory,
# never pickled), so closures, tracers and live numpy state all survive;
# the per-task payloads that cross the call queue are plain picklable
# tuples.
_WORKER_ALGORITHM = None


def _bind_worker_algorithm(algorithm) -> None:
    global _WORKER_ALGORITHM
    _WORKER_ALGORITHM = algorithm
    # Child processes never report spans directly; timings travel back
    # inside ClientUpdate and the parent re-emits them.
    algorithm.tracer = NULL_TRACER


def _run_task(round_idx: int, slots: list[tuple[int, int]]) -> list[tuple[int, ClientUpdate]]:
    """Run a chunk of ``(position, client_id)`` slots in this worker."""
    pid = os.getpid()
    out = []
    for position, client_id in slots:
        update = _WORKER_ALGORITHM._client_update(round_idx, client_id)
        update.worker = pid
        out.append((position, update))
    return out


class ParallelExecutor(ClientExecutor):
    """Process-pool engine: one forked pool per round.

    Args:
        num_workers: pool size (capped at the round's client count).
        chunked: schedule contiguous client chunks (one task per worker,
            fewer pickling round-trips) instead of one task per client
            (better load balance under heterogeneous client cost).
    """

    name = "process"

    def __init__(self, num_workers: int, chunked: bool = False) -> None:
        if num_workers < 1:
            raise ConfigError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.chunked = chunked
        self._fallback: SerialExecutor | None = None

    # -- degradation ---------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True once the engine has fallen back to in-process execution."""
        return self._fallback is not None

    def _degrade(self, reason: str) -> SerialExecutor:
        warnings.warn(
            f"parallel client execution disabled ({reason}); "
            "continuing with in-process serial execution",
            RuntimeWarning,
            stacklevel=3,
        )
        self._fallback = SerialExecutor()
        return self._fallback

    # -- scheduling ----------------------------------------------------------------
    def _tasks(self, client_ids: list[int]) -> list[list[tuple[int, int]]]:
        slots = list(enumerate(int(c) for c in client_ids))
        if not self.chunked:
            return [[slot] for slot in slots]
        num_chunks = min(self.num_workers, len(slots))
        bounds = np.array_split(np.arange(len(slots)), num_chunks)
        return [[slots[i] for i in chunk] for chunk in bounds if len(chunk)]

    def _run_pool(self, algorithm, round_idx: int, client_ids: list[int]) -> list[ClientUpdate]:
        context = multiprocessing.get_context("fork")
        workers = min(self.num_workers, len(client_ids))
        results: list[ClientUpdate | None] = [None] * len(client_ids)
        with _ProcessPool(
            max_workers=workers,
            mp_context=context,
            initializer=_bind_worker_algorithm,
            initargs=(algorithm,),
        ) as pool:
            futures = [
                pool.submit(_run_task, round_idx, task) for task in self._tasks(client_ids)
            ]
            for future in as_completed(futures):
                for position, update in future.result():
                    results[position] = update
        missing = [client_ids[i] for i, u in enumerate(results) if u is None]
        if missing:
            raise RuntimeError(f"workers returned no result for clients {missing}")
        return results  # type: ignore[return-value]

    # -- execution -----------------------------------------------------------------
    def run(self, algorithm, round_idx: int, client_ids: list[int]) -> list[ClientUpdate]:
        if self._fallback is not None:
            return self._fallback.run(algorithm, round_idx, client_ids)
        if not len(client_ids):
            return []
        if "fork" not in multiprocessing.get_all_start_methods():
            return self._degrade("the 'fork' start method is unavailable").run(
                algorithm, round_idx, client_ids
            )
        started = time.perf_counter()
        try:
            updates = self._run_pool(algorithm, round_idx, [int(c) for c in client_ids])
        except Exception as exc:  # worker crash, pickling failure, pool breakage
            return self._degrade(f"worker pool failed: {exc!r}").run(
                algorithm, round_idx, client_ids
            )
        elapsed = time.perf_counter() - started
        self._record_metrics(algorithm.tracer, updates, elapsed)
        return updates

    def _record_metrics(self, tracer, updates: list[ClientUpdate], elapsed: float) -> None:
        """Emit per-round parallelism telemetry through the tracer.

        Besides the worker/speedup gauges, this flags rounds where the
        pool made things *slower* (busy time below wall time — the
        cpu-bound regime on a single core, where fork + pickling overhead
        dominates; see ``docs/parallelism.md``).  The hint is an obs-layer
        signal, not a warning, so determinism-focused test runs stay
        quiet.
        """
        if not tracer.enabled:
            return
        # Re-emit each worker's local_train as a span with the
        # worker-measured duration, in selection order.
        for update in updates:
            with tracer.span(
                "local_train", client=update.client_id, worker=update.worker
            ) as span:
                pass
            span.duration = update.train_seconds
        metrics = tracer.metrics
        metrics.gauge("parallel.workers").set(min(self.num_workers, len(updates)))
        if elapsed > 0:
            busy = sum(u.train_seconds for u in updates)
            speedup = busy / elapsed
            metrics.gauge("parallel.speedup").set(speedup)
            if speedup < 1.0:
                metrics.counter("parallel.slowdown_rounds").inc()
                with tracer.span(
                    "parallel_hint",
                    speedup=round(speedup, 3),
                    hint="pool overhead exceeds parallel gain; "
                    "consider executor='serial' on this machine",
                ):
                    pass
        return


def make_executor(config) -> ClientExecutor:
    """Build the engine an :class:`~repro.fl.config.FLConfig` asks for.

    ``executor='auto'`` picks the process pool whenever
    ``num_workers > 1`` and the serial loop otherwise; ``'serial'``,
    ``'process'`` and ``'chunked'`` force a specific engine.
    """
    mode = getattr(config, "executor", "auto")
    workers = int(getattr(config, "num_workers", 1))
    if mode not in EXECUTOR_MODES:
        raise ConfigError(f"executor must be one of {EXECUTOR_MODES}, got {mode!r}")
    if mode == "serial" or (mode == "auto" and workers <= 1):
        return SerialExecutor()
    return ParallelExecutor(workers, chunked=(mode == "chunked"))
