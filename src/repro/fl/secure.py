"""Secure aggregation via pairwise additive masking (Bonawitz et al. 2017).

The paper's privacy evaluation perturbs the delta payloads with DP noise
(:mod:`repro.core.privacy`); secure aggregation is the complementary
cryptographic approach: each pair of clients (i, j) derives a shared
mask m_ij from a common seed, client i adds +m_ij and client j adds
-m_ij, so individual uploads look uniformly random to the server while
the *sum* is exact.

This module simulates the masking math (not the key agreement): masks
come from per-pair seeded generators standing in for Diffie-Hellman
shared secrets.  Aggregation-weight handling follows the standard trick
of pre-scaling each update by its weight so the server only needs the
plain sum.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ProtocolError


class SecureAggregator:
    """Pairwise-mask secure aggregation for one federated round.

    Args:
        round_seed: seed material shared by all pairs this round (stands
            in for the DH-derived per-round secrets).
        mask_scale: standard deviation of the masks (large enough to
            drown the signal; exact cancellation makes the value
            irrelevant to correctness).
    """

    def __init__(self, round_seed: int, mask_scale: float = 100.0) -> None:
        if mask_scale <= 0:
            raise ProtocolError("mask_scale must be positive")
        self.round_seed = round_seed
        self.mask_scale = mask_scale

    def _pair_mask(self, low: int, high: int, dim: int) -> np.ndarray:
        """The shared mask of the client pair (low < high)."""
        if low >= high:
            raise ProtocolError("pair must be ordered low < high")
        rng = np.random.default_rng([self.round_seed, low, high])
        return rng.normal(0.0, self.mask_scale, size=dim)

    def mask_update(
        self, client_id: int, participants: list[int], update: np.ndarray
    ) -> np.ndarray:
        """What ``client_id`` actually uploads.

        Adds +mask for every higher-id participant and -mask for every
        lower-id participant; all masks cancel in the sum over the full
        participant set.
        """
        if client_id not in participants:
            raise ProtocolError(f"client {client_id} not in participant list")
        masked = np.array(update, dtype=np.float64, copy=True)
        for other in participants:
            if other == client_id:
                continue
            low, high = min(client_id, other), max(client_id, other)
            mask = self._pair_mask(low, high, update.size)
            masked += mask if client_id == low else -mask
        return masked

    def aggregate(self, masked_updates: list[np.ndarray]) -> np.ndarray:
        """Server-side plain sum of masked uploads (masks cancel)."""
        if not masked_updates:
            raise ProtocolError("nothing to aggregate")
        return np.sum(masked_updates, axis=0)


def secure_weighted_average(
    updates: list[np.ndarray],
    weights: np.ndarray,
    participants: list[int],
    round_seed: int,
    mask_scale: float = 100.0,
) -> np.ndarray:
    """End-to-end helper: pre-scale, mask, sum.

    Equivalent to :func:`repro.fl.server.weighted_average` but the
    server only ever sees masked vectors.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if len(updates) != len(weights) or len(updates) != len(participants):
        raise ProtocolError("updates, weights and participants must align")
    total = weights.sum()
    if total <= 0:
        raise ProtocolError("weights must sum to a positive value")
    aggregator = SecureAggregator(round_seed, mask_scale)
    masked = [
        aggregator.mask_update(cid, participants, (w / total) * update)
        for cid, w, update in zip(participants, weights, updates)
    ]
    return aggregator.aggregate(masked)
