"""Event-driven asynchronous execution engine with buffered aggregation.

FedAsync-style staleness weighting (Xie et al. 2019) built on the
execute/commit/aggregate split of the parallel engine so
**async is a scheduler swap, not an algorithm rewrite** — all ten
registered algorithms run unmodified, parallel client execution and the
packed wire transport included.

How a run proceeds (``config.execution == "async"``):

1. **Dispatch.**  Each server round samples a cohort from the *same*
   selection stream as the synchronous trainer, charges the broadcast,
   and runs every cohort member's local work immediately through the
   algorithm's :class:`~repro.fl.parallel.ClientExecutor`.  Each
   finished update is pushed onto an event heap with an *arrival time*
   drawn from the per-client runtime model
   (:mod:`repro.fl.runtime`) — training is simulated-time-shifted, not
   recomputed, so heavy lifting happens exactly once.
2. **Drain.**  The server pops arrivals in simulated-time order into a
   buffer until ``buffer_size`` updates are in hand (FedBuff-style), or
   the optional ``buffer_timeout`` fires with at least one update.
   Updates dispatched in earlier rounds arrive late and count with
   their staleness ``s = flush_round - dispatch_round``.
3. **Flush.**  Each buffered update that is stale (``s >= 1``) is
   re-based onto the current global model and discounted:
   ``params <- w_t + (1+s)^(-a) * (params - base)`` where ``base`` is
   the global model the client trained from.  Fresh updates (``s = 0``)
   are left byte-for-byte untouched.  Then the algorithm's own
   ``_commit_client`` / ``_aggregate_updates`` / ``_post_aggregate``
   run exactly as in a synchronous round.

**Zero-latency limit.**  With instant runtimes and a full-cohort buffer
every dispatched update arrives fresh and in selection order, so step 3
reduces to the synchronous round verbatim — the engine is bit-identical
to :func:`repro.fl.trainer.run_federated`'s barrier loop for every
algorithm, executor, transport and dtype (the ``async-equivalence``
test matrix enforces this).

Checkpoint/resume rides the :mod:`repro.ckpt` subsystem: the engine
adds one extra section (in-flight events, sim clock, async history) to
the standard run snapshot, and a resumed async run replays
bit-identically.  Runtime models are stateless by construction, so
there is no runtime RNG to snapshot.
"""

from __future__ import annotations

import heapq
import json
import time
from dataclasses import asdict, dataclass, field, fields
from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import FederatedDataset
from repro.exceptions import CheckpointError
from repro.fl.compression import WireSize
from repro.fl.config import FLConfig
from repro.fl.metrics import History, RoundRecord
from repro.fl.parallel import ClientUpdate
from repro.fl.runtime import make_runtime
from repro.fl.trainer import (
    RoundCallback,
    build_history,
    eval_per_client_accuracy,
    make_client_loss,
    release_round_state,
    resolve_round_callbacks,
    select_round_clients,
)
from repro.fl.client import evaluate_model
from repro.models.split import SplitModel
from repro.nn.serialization import set_flat_params
from repro.obs.sysinfo import record_scale_gauges


@dataclass
class AsyncUpdateRecord:
    """One client update applied by the asynchronous server.

    The JSON contract is symmetric with
    :class:`~repro.fl.metrics.RoundRecord`: :meth:`to_dict` /
    :meth:`from_dict` round-trip exactly and unknown keys are ignored.
    """

    update_idx: int
    sim_time: float
    client_id: int
    staleness: int
    effective_weight: float
    train_loss: float
    test_accuracy: float | None = None
    dispatch_round: int = 0
    flush_round: int = 0

    # -- persistence --------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable representation (plain python scalars)."""
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "AsyncUpdateRecord":
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def from_json(cls, text: str) -> "AsyncUpdateRecord":
        return cls.from_dict(json.loads(text))


@dataclass
class AsyncHistory:
    """Per-update trajectory of an asynchronous run.

    The engine's :class:`~repro.fl.metrics.History` carries the
    round-level curve (one record per buffer flush); this carries the
    update-level view — who arrived when, how stale, at what weight.
    """

    records: list[AsyncUpdateRecord] = field(default_factory=list)
    final_accuracy: float | None = None
    discarded_updates: int = 0

    def staleness_values(self) -> np.ndarray:
        return np.array([r.staleness for r in self.records])

    def max_staleness(self) -> int:
        values = self.staleness_values()
        return int(values.max()) if len(values) else 0

    def mean_staleness(self) -> float:
        values = self.staleness_values()
        return float(values.mean()) if len(values) else 0.0

    def client_update_counts(self, num_clients: int) -> np.ndarray:
        counts = np.zeros(num_clients, dtype=np.int64)
        for record in self.records:
            counts[record.client_id] += 1
        return counts

    def accuracies(self) -> np.ndarray:
        pts = [
            (r.update_idx, r.test_accuracy)
            for r in self.records
            if r.test_accuracy is not None
        ]
        return np.array(pts) if pts else np.zeros((0, 2))

    # -- persistence --------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "final_accuracy": self.final_accuracy,
            "discarded_updates": self.discarded_updates,
            "records": [r.to_dict() for r in self.records],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "AsyncHistory":
        """Inverse of :meth:`to_dict`; extra top-level keys are ignored."""
        history = cls()
        history.final_accuracy = data.get("final_accuracy")
        history.discarded_updates = int(data.get("discarded_updates", 0))
        for record in data.get("records", []):
            history.records.append(AsyncUpdateRecord.from_dict(record))
        return history

    @classmethod
    def from_json(cls, text: str) -> "AsyncHistory":
        return cls.from_dict(json.loads(text))


# -- in-flight event (de)serialization for checkpoints ------------------------------

_UPDATE_SCALAR_FIELDS = (
    "client_id", "wire", "task_loss", "reg_loss", "num_steps",
    "train_seconds", "worker",
)


def _update_to_tree(update: ClientUpdate) -> dict:
    """A :class:`ClientUpdate` as a pack_tree-able dict.

    In-flight updates are always materialized (``params`` dense,
    ``params_streams`` consumed) before they enter the event heap, so
    only dense parameters, the scalar fields, the algorithm payload and
    the wire accounting need to ride along.
    """
    assert update.params is not None and update.params_streams is None
    tree = {name: getattr(update, name) for name in _UPDATE_SCALAR_FIELDS}
    tree["params"] = update.params
    tree["payload"] = update.payload
    tree["wire_size"] = asdict(update.wire_size) if update.wire_size else None
    if update.residual is not None:
        tree["residual"] = update.residual
    return tree


def _update_from_tree(tree: dict) -> ClientUpdate:
    wire_size = tree.get("wire_size")
    residual = tree.get("residual")
    return ClientUpdate(
        params=np.array(tree["params"], copy=True),
        payload=tree.get("payload"),
        wire_size=WireSize(**wire_size) if wire_size else None,
        residual=None if residual is None else np.array(residual, copy=True),
        **{name: tree[name] for name in _UPDATE_SCALAR_FIELDS},
    )


# -- the engine ---------------------------------------------------------------------


class _EventQueue:
    """Min-heap of in-flight updates ordered by (arrival time, dispatch
    sequence).  The sequence number both breaks time ties (dispatch
    order == selection order, the zero-latency bit-identity invariant)
    and keeps heap comparisons away from the payload objects."""

    def __init__(self) -> None:
        self.heap: list[tuple[float, int, int, np.ndarray, ClientUpdate]] = []
        self.seq = 0

    def __len__(self) -> int:
        return len(self.heap)

    def push(
        self, when: float, dispatch_round: int, base: np.ndarray, update: ClientUpdate
    ) -> None:
        heapq.heappush(self.heap, (when, self.seq, dispatch_round, base, update))
        self.seq += 1

    def peek_time(self) -> float:
        return self.heap[0][0]

    def pop(self) -> tuple[float, int, np.ndarray, ClientUpdate]:
        when, _seq, dispatch_round, base, update = heapq.heappop(self.heap)
        return when, dispatch_round, base, update

    def inflight_clients(self) -> set[int]:
        """Ids of clients with an undelivered update in the queue.

        Derived from the heap contents, so a checkpoint-restored queue
        reconstructs exactly the same set — the dispatch cap needs no
        extra persisted state.
        """
        return {update.client_id for _, _, _, _, update in self.heap}

    # -- checkpointing -----------------------------------------------------------
    def state_tree(self) -> dict:
        return {
            "seq": self.seq,
            "events": [
                {
                    "time": float(when),
                    "seq": int(seq),
                    "round": int(dispatch_round),
                    "base": base,
                    "update": _update_to_tree(update),
                }
                for when, seq, dispatch_round, base, update in self.heap
            ],
        }

    def restore_tree(self, tree: dict) -> None:
        self.seq = int(tree["seq"])
        self.heap = [
            (
                float(event["time"]),
                int(event["seq"]),
                int(event["round"]),
                np.array(event["base"], copy=True),
                _update_from_tree(event["update"]),
            )
            for event in tree["events"]
        ]
        heapq.heapify(self.heap)


def run_async_federated_engine(
    algorithm,
    fed: FederatedDataset,
    model_fn: Callable[[], SplitModel],
    config: FLConfig,
    *,
    eval_per_client: bool = False,
    callbacks: Sequence[RoundCallback] | None = None,
    selector=None,
    tracer=None,
    runtime=None,
) -> History:
    """Run one asynchronous federated job; called by
    :func:`repro.fl.trainer.run_federated` when
    ``config.execution == "async"`` (the dtype policy and executor
    lifecycle are managed there).

    Returns the run's :class:`~repro.fl.metrics.History` — one record
    per buffer flush, so downstream tooling (runner, artifacts, report
    tables) works unchanged — with the update-level
    :class:`AsyncHistory` attached as ``history.async_history``.
    """
    round_callbacks, tracer = resolve_round_callbacks(callbacks, tracer)

    model = model_fn()
    algorithm.tracer = tracer
    algorithm.setup(model, fed, config)
    round_rng = np.random.default_rng([config.seed, 0xF1])
    client_loss = make_client_loss(algorithm, model, fed, config)
    runtime = make_runtime(
        runtime if runtime is not None else config.runtime,
        fed.num_clients,
        config.seed,
    )

    history = build_history(algorithm.name, config)
    async_history = AsyncHistory()
    history.async_history = async_history
    queue = _EventQueue()
    clock = 0.0
    update_counter = 0

    # Crash-safe checkpointing: the standard run snapshot plus one
    # engine-owned section for the event queue / sim clock / async
    # records.  Flush boundaries are the only snapshot points, exactly
    # like round boundaries in the synchronous loop.
    manager = None
    start_round = 0
    if config.checkpoint_dir is not None:
        from repro.ckpt.format import unpack_tree
        from repro.ckpt.manager import CheckpointManager
        from repro.ckpt.state import (
            SECTION_ASYNC,
            capture_run_state,
            restore_run_state,
        )

        manager = CheckpointManager(config.checkpoint_dir, keep=config.checkpoint_keep)
        if config.resume:
            loaded = manager.load_latest_valid()
            if loaded is not None:
                manifest, sections = loaded
                last_round = restore_run_state(
                    manifest,
                    sections,
                    algorithm=algorithm,
                    round_rng=round_rng,
                    history=history,
                    config=config,
                    tracer=tracer,
                )
                if SECTION_ASYNC not in sections:
                    raise CheckpointError(
                        "checkpoint carries no async-engine section; it was "
                        "written by a synchronous run"
                    )
                engine_state = unpack_tree(sections[SECTION_ASYNC])
                clock = float(engine_state["clock"])
                update_counter = int(engine_state["update_counter"])
                queue.restore_tree(engine_state["queue"])
                restored = AsyncHistory.from_dict(engine_state["async_history"])
                async_history.records = restored.records
                async_history.final_accuracy = restored.final_accuracy
                async_history.discarded_updates = restored.discarded_updates
                start_round = last_round + 1

    for round_idx in range(start_round, config.rounds):
        with tracer.span("round", round=round_idx):
            started = time.perf_counter()

            # 1. Dispatch this round's cohort.
            with tracer.span("sample"):
                selected = select_round_clients(
                    round_idx, fed, config, round_rng, selector, client_loss
                )
            # Dispatch cap: a client whose previous update is still in
            # flight is not re-dispatched — it is deferred, not dropped
            # (its earlier update will still arrive and count).  Without
            # this, a small buffer plus a long-tail runtime re-dispatches
            # slow clients every round and the queue grows without
            # bound.  Under zero latency the queue drains fully each
            # round, the in-flight set is empty, and the filter is a
            # no-op — bit-identity with the sync loop is untouched.
            if getattr(config, "dispatch_cap", True) and len(queue):
                inflight = queue.inflight_clients()
                keep = np.array(
                    [int(c) not in inflight for c in selected], dtype=bool
                )
                deferred = int(len(selected) - keep.sum())
                if deferred:
                    selected = selected[keep]
                    if tracer.enabled:
                        tracer.metrics.counter("async.deferred_dispatches").inc(
                            deferred
                        )
            # Same ordering as the sync trainer: the selection counter
            # sees the sampled cohort, fault dropout filters after.
            if tracer.enabled:
                for client_id in selected:
                    tracer.metrics.counter(
                        "clients.selected", client=int(client_id)
                    ).inc()
            algorithm._pre_round(round_idx, selected)
            if algorithm.fault_model is not None:
                selected = algorithm.fault_model.surviving_clients(selected)
            with tracer.span("broadcast"):
                algorithm._charge_broadcast(selected)
            with tracer.span("dispatch", cohort=len(selected)):
                updates = algorithm._execute_clients(round_idx, selected)
                base = algorithm.global_params
                for update in updates:
                    queue.push(
                        clock + runtime.duration(round_idx, update.client_id),
                        round_idx,
                        base,
                        update,
                    )

            # 2. Drain arrivals into the buffer.
            target = config.buffer_size or len(selected)
            if not target and len(queue):
                # Every cohort member was deferred: the round still
                # consumes at least one arrival so the backlog drains.
                target = 1
            deadline = (
                clock + config.buffer_timeout
                if config.buffer_timeout is not None
                else None
            )
            buffer: list[tuple[int, int, np.ndarray, ClientUpdate]] = []
            while len(queue) and len(buffer) < target:
                if (
                    deadline is not None
                    and buffer
                    and queue.peek_time() > deadline
                ):
                    break
                when, dispatch_round, event_base, update = queue.pop()
                clock = max(clock, when)
                staleness = round_idx - dispatch_round
                buffer.append((dispatch_round, staleness, event_base, update))

            # 3. Flush: staleness-discount, commit, aggregate.
            buffer_ids = np.array(
                [update.client_id for _, _, _, update in buffer], dtype=np.int64
            )
            flush_records: list[AsyncUpdateRecord] = []
            for dispatch_round, staleness, event_base, update in buffer:
                weight = 1.0
                if staleness > 0:
                    # Re-base the stale delta onto the current model and
                    # discount it; fresh updates stay bitwise untouched.
                    weight = (1.0 + staleness) ** (-config.staleness_exponent)
                    update.params = algorithm.global_params + weight * (
                        update.params - event_base
                    )
                    if tracer.enabled:
                        tracer.metrics.counter("async.stale_updates").inc()
                flush_records.append(
                    AsyncUpdateRecord(
                        update_idx=update_counter,
                        sim_time=clock,
                        client_id=update.client_id,
                        staleness=staleness,
                        effective_weight=weight,
                        train_loss=update.task_loss,
                        dispatch_round=dispatch_round,
                        flush_round=round_idx,
                    )
                )
                update_counter += 1
                if tracer.enabled:
                    tracer.metrics.histogram("async.staleness").observe(
                        float(staleness)
                    )
            async_history.records.extend(flush_records)
            if tracer.enabled:
                tracer.metrics.gauge("async.buffer_occupancy").set(len(buffer))
                tracer.metrics.gauge("async.inflight").set(len(queue))
                tracer.metrics.gauge("async.sim_time").set(clock)

            buffered_updates = [update for _, _, _, update in buffer]
            algorithm._charge_uploads(buffer_ids, buffered_updates)
            for update in buffered_updates:
                if algorithm.fault_model is not None and (
                    algorithm.fault_model.is_byzantine(update.client_id)
                ):
                    algorithm.fault_model.corrupted_total += 1
                algorithm._commit_client(round_idx, update)
            if buffered_updates:
                with tracer.span("aggregate"):
                    algorithm.global_params = algorithm._aggregate_updates(
                        round_idx, buffer_ids, buffered_updates
                    )
                    algorithm._post_aggregate(round_idx, buffer_ids)
                stats = algorithm._round_stats(buffer_ids, buffered_updates)
                train_loss, reg_loss = stats.train_loss, stats.reg_loss
            else:  # every dispatched client dropped out — keep the model
                train_loss, reg_loss = float("nan"), 0.0
            elapsed = time.perf_counter() - started

            assert algorithm.ledger is not None
            round_comm = algorithm.ledger.end_round()
            record = RoundRecord(
                round_idx=round_idx,
                train_loss=train_loss,
                reg_loss=reg_loss,
                wall_time_sec=elapsed,
                bytes_down=round_comm["down"],
                bytes_up=round_comm["up"],
                num_selected=len(selected),
            )
            is_eval_round = (
                round_idx % config.eval_every == 0 or round_idx == config.rounds - 1
            )
            if is_eval_round:
                with tracer.span("eval"):
                    assert algorithm.global_params is not None
                    set_flat_params(model, algorithm.global_params)
                    test_loss, test_acc = evaluate_model(
                        model, fed.test, config.eval_batch
                    )
                    record.test_loss = test_loss
                    record.test_accuracy = test_acc
                    if flush_records:
                        flush_records[-1].test_accuracy = test_acc
            history.append(record)
            for callback in round_callbacks:
                callback(record)

            if manager is not None and (
                (round_idx + 1) % config.checkpoint_every == 0
                or round_idx == config.rounds - 1
            ):
                with tracer.span("checkpoint"):
                    meta, sections = capture_run_state(
                        round_idx=round_idx,
                        algorithm=algorithm,
                        round_rng=round_rng,
                        history=history,
                        config=config,
                        tracer=tracer,
                        extra_sections={
                            SECTION_ASYNC: {
                                "clock": float(clock),
                                "update_counter": int(update_counter),
                                "queue": queue.state_tree(),
                                "async_history": async_history.to_dict(),
                            }
                        },
                    )
                    manager.save(round_idx, meta, sections)
            record_scale_gauges(tracer, fed)
        release_round_state(fed)

    # In-flight stragglers at the end of the round budget never land.
    async_history.discarded_updates += len(queue)
    if tracer.enabled and len(queue):
        tracer.metrics.counter("async.discarded_updates").inc(len(queue))

    history.final_accuracy = history.last_accuracy()
    async_history.final_accuracy = history.final_accuracy
    if eval_per_client:
        history.per_client_accuracy = eval_per_client_accuracy(
            algorithm, model, fed, config, tracer
        )
    return history
