"""Lossy payload compression for federated uploads.

The paper's related-work section surveys communication-compression
approaches (Konecny et al.'s quantization / random subsampling, sketch
methods).  This module implements that menu as a **composable
pipeline**: a spec string such as ``"topk:0.01|qsgd:8"`` chains an
optional *selector* stage (which coordinates travel) with an optional
*value coder* stage (how many bits each travels as):

========== ========= ====================================================
stage      role      meaning
========== ========= ====================================================
``topk:R``   selector keep the ``R`` fraction of largest-|x| coordinates
``randk:R``  selector keep a uniformly random ``R`` fraction, rescaled
                      to be unbiased (alias: ``subsample:R``)
``sketch:R`` selector count-sketch projection into ``R * d`` buckets
                      (deterministic hash/sign tables; no index stream)
``qsgd:B``   coder    QSGD-style stochastic quantization to ``B``-bit
                      signed levels around a max-norm scale
``sign``     coder    1-bit sign compression with a mean-|x| scale
``quantize:B`` coder  ``B``-bit stochastic uniform quantization over
                      [min, max] (two range scalars)
``none``     —        identity; must appear alone
========== ========= ====================================================

Composition rules: at most one selector (first) and at most one value
coder (last).  :func:`compressor_from_spec` is the canonical factory;
:func:`repro.fl.config.validate_compression_spec` validates specs
through the choice registry (typo suggestions included).

Every compressor maps a flat float vector to a (reconstructed_vector,
:class:`WireSize`) pair: the reconstruction is what the server
aggregates (lossy), and the wire size describes what actually crosses
the wire so the ledger can charge real bytes under the active dtype
policy.  Pipelines (and the sparse legacy classes) additionally
implement :meth:`Compressor.encode` / :meth:`Compressor.decode`, which
split the payload into wire streams (an ``int32`` index stream plus a
value stream) — the packed wire transport ships those instead of a
dense reconstruction, and ``decode(encode(v))`` is bit-identical to
``compress(v)`` under the same rng.

**Error feedback** lives one layer up (``repro.algorithms.base``): the
client compresses ``update + residual`` and keeps
``e_{t+1} = e_t + update - decompress(compress(update + e_t))``; the
pipeline itself is stateless, which is what makes it safe to fork into
worker processes.

**Byte accounting.**  Pipeline stage footprints are deterministic
functions of the input size, so per-stage encoded bytes
(:meth:`CompressionPipeline.stage_footprints`) can be reported without
shipping extra metadata.  Historically indices were charged as "1
scalar per index"; construct a *legacy* compressor class with
``legacy_scalars=True`` to restore the old accounting (and dense
shipping) when reproducing pre-wire experiment numbers — see
``docs/compression.md`` and ``docs/performance.md``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError

INDEX_BYTES = 4  # compressed coordinate indices travel as int32

_SKETCH_SEED = 0x5CE7C4  # root of the deterministic count-sketch tables


@dataclass(frozen=True)
class WireSize:
    """What one upload actually puts on the wire.

    Attributes:
        values: count of dtype-width scalars (model coefficients, delta
            entries, quantization range endpoints).
        index_ints: count of ``int32`` coordinate indices.
        raw_bytes: dtype-independent raw bytes (bit-packed quantization
            words).
        legacy_scalars: the equivalent count under the old "everything
            is one scalar" accounting, kept for back-compatibility
            (:attr:`ClientUpdate.wire <repro.fl.parallel.ClientUpdate>`).
        legacy: True when the producing compressor was constructed with
            ``legacy_scalars=True`` — byte charges then use the old
            scalar accounting.
    """

    values: int
    index_ints: int = 0
    raw_bytes: int = 0
    legacy_scalars: int | None = None
    legacy: bool = False

    @property
    def scalars(self) -> int:
        """Equivalent scalar count under the legacy accounting."""
        if self.legacy_scalars is not None:
            return self.legacy_scalars
        return self.values + self.index_ints

    def nbytes(self, dtype_bytes: int) -> int:
        """Actual wire bytes under a ``dtype_bytes``-per-scalar policy."""
        if self.legacy:
            return self.scalars * int(dtype_bytes)
        return (
            self.values * int(dtype_bytes)
            + self.index_ints * INDEX_BYTES
            + self.raw_bytes
        )

    def __add__(self, other: "WireSize") -> "WireSize":
        return WireSize(
            values=self.values + other.values,
            index_ints=self.index_ints + other.index_ints,
            raw_bytes=self.raw_bytes + other.raw_bytes,
            legacy_scalars=self.scalars + other.scalars,
            legacy=self.legacy or other.legacy,
        )


class Compressor:
    """Interface: compress a flat vector, report its wire size."""

    name = "base"

    def compress(
        self, vec: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, WireSize]:
        """Return (lossy reconstruction, wire size)."""
        raise NotImplementedError

    def encode(
        self, vec: np.ndarray, rng: np.random.Generator
    ) -> tuple[dict[str, np.ndarray], WireSize] | None:
        """Split ``vec`` into wire streams instead of a dense vector.

        Returns ``None`` when this compressor has no stream form (the
        caller then uses :meth:`compress` with the *same* rng — an
        implementation must consume the rng in ``encode`` exactly when
        it would in ``compress``, so either path sees identical draws).
        """
        return None

    def decode(self, streams: dict[str, np.ndarray], size: int) -> np.ndarray:
        """Materialize the dense reconstruction from wire streams.

        Must be bit-identical to what :meth:`compress` would have
        returned for the same input and rng.
        """
        raise NotImplementedError(f"{self.name} has no stream form")


class NoCompression(Compressor):
    name = "none"

    def compress(self, vec, rng):
        return np.array(vec, copy=True), WireSize(values=int(vec.size))


class TopKSparsifier(Compressor):
    """Keep the fraction ``ratio`` of largest-|x| coordinates.

    Wire size: k values plus k ``int32`` indices (legacy accounting:
    2 scalars per kept coordinate).
    """

    name = "topk"

    def __init__(self, ratio: float, legacy_scalars: bool = False) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ConfigError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self.legacy = bool(legacy_scalars)

    def _keep(self, vec: np.ndarray) -> np.ndarray:
        k = max(1, int(round(self.ratio * vec.size)))
        return np.argpartition(np.abs(vec), -k)[-k:]

    def _wire(self, k: int) -> WireSize:
        return WireSize(values=k, index_ints=k, legacy_scalars=2 * k, legacy=self.legacy)

    def compress(self, vec, rng):
        vec = np.asarray(vec, dtype=np.float64)
        keep = self._keep(vec)
        out = np.zeros_like(vec)
        out[keep] = vec[keep]
        return out, self._wire(keep.size)

    def encode(self, vec, rng):
        if self.legacy:
            return None  # legacy mode ships the dense reconstruction
        vec = np.asarray(vec, dtype=np.float64)
        keep = self._keep(vec)
        streams = {
            "indices": keep.astype(np.int32),
            "values": vec[keep],
        }
        return streams, self._wire(keep.size)

    def decode(self, streams, size):
        out = np.zeros(size, dtype=streams["values"].dtype)
        out[streams["indices"]] = streams["values"]
        return out


class RandomSubsampler(Compressor):
    """Transmit a uniformly random coordinate subset, rescaled to be
    unbiased: E[reconstruction] = vec."""

    name = "subsample"

    def __init__(self, ratio: float, legacy_scalars: bool = False) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ConfigError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self.legacy = bool(legacy_scalars)

    def _keep(self, vec: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        k = max(1, int(round(self.ratio * vec.size)))
        return rng.choice(vec.size, size=k, replace=False)

    def _wire(self, k: int) -> WireSize:
        return WireSize(values=k, index_ints=k, legacy_scalars=2 * k, legacy=self.legacy)

    def compress(self, vec, rng):
        vec = np.asarray(vec, dtype=np.float64)
        keep = self._keep(vec, rng)
        out = np.zeros_like(vec)
        out[keep] = vec[keep] * (vec.size / keep.size)  # inverse-probability scaling
        return out, self._wire(keep.size)

    def encode(self, vec, rng):
        if self.legacy:
            return None
        vec = np.asarray(vec, dtype=np.float64)
        keep = self._keep(vec, rng)
        streams = {
            "indices": keep.astype(np.int32),
            # Scaled exactly as compress() scales, so decode() scatters
            # bit-identical values.
            "values": vec[keep] * (vec.size / keep.size),
        }
        return streams, self._wire(keep.size)

    def decode(self, streams, size):
        out = np.zeros(size, dtype=streams["values"].dtype)
        out[streams["indices"]] = streams["values"]
        return out


class UniformQuantizer(Compressor):
    """b-bit stochastic uniform quantization over [min, max].

    Unbiased: each value rounds up with probability equal to its
    fractional position between adjacent levels.  Wire size: 2 range
    scalars plus ``ceil(size * b / 8)`` raw bytes of bit-packed levels.
    ``legacy_scalars=True`` keeps the old *scalar count* — ``2 +
    ceil(size * b / 32)``, i.e. bit-packed words counted as 32-bit
    scalars — on :attr:`WireSize.scalars`, but byte charges always use
    the actual bit-width payload: the old mode multiplied the packed
    words by the dtype width, double-charging a float64 run 4x.  The
    reconstruction ships dense — there is no index stream to exploit.
    """

    name = "quantize"

    def __init__(self, bits: int, legacy_scalars: bool = False) -> None:
        if not 1 <= bits <= 16:
            raise ConfigError(f"bits must be in [1, 16], got {bits}")
        self.bits = bits
        self.legacy = bool(legacy_scalars)

    def _wire(self, size: int) -> WireSize:
        # legacy=False always: quantized payloads are bit-packed words,
        # so charging them as dtype-width scalars misstates the wire.
        return WireSize(
            values=2,
            raw_bytes=int(np.ceil(size * self.bits / 8.0)),
            legacy_scalars=2 + int(np.ceil(size * self.bits / 32.0)),
            legacy=False,
        )

    def compress(self, vec, rng):
        vec = np.asarray(vec, dtype=np.float64)
        lo, hi = float(vec.min()), float(vec.max())
        if hi == lo:
            return np.full_like(vec, lo), WireSize(values=2, legacy=False)
        levels = (1 << self.bits) - 1
        scaled = (vec - lo) / (hi - lo) * levels
        floor = np.floor(scaled)
        frac = scaled - floor
        rounded = floor + (rng.random(vec.shape) < frac)
        rounded = np.clip(rounded, 0, levels)
        recon = lo + rounded / levels * (hi - lo)
        return recon, self._wire(vec.size)


# -- composable pipeline stages ----------------------------------------------------


class _Stage:
    """One stage of a :class:`CompressionPipeline` (internal).

    Stages are stateless and deterministic in shape: their wire
    footprint depends only on the input size, never on the data, so the
    parent can account per-stage bytes without shipping metadata.
    """

    kind = "stage"
    role = ""  # "selector" | "coder"

    @property
    def spec(self) -> str:
        raise NotImplementedError


def _parse_ratio(kind: str, arg: str) -> float:
    try:
        ratio = float(arg)
    except ValueError:
        raise ConfigError(f"compression stage '{kind}' needs a float ratio, got {arg!r}")
    if not 0.0 < ratio <= 1.0:
        raise ConfigError(f"compression stage '{kind}' ratio must be in (0, 1], got {ratio}")
    return ratio


def _parse_bits(kind: str, arg: str, lo: int, hi: int) -> int:
    try:
        bits = int(arg)
    except ValueError:
        raise ConfigError(f"compression stage '{kind}' needs an int bit-width, got {arg!r}")
    if not lo <= bits <= hi:
        raise ConfigError(
            f"compression stage '{kind}' bits must be in [{lo}, {hi}], got {bits}"
        )
    return bits


class _TopKStage(_Stage):
    kind = "topk"
    role = "selector"

    def __init__(self, arg: str) -> None:
        self.ratio = _parse_ratio(self.kind, arg)

    @property
    def spec(self) -> str:
        return f"{self.kind}:{self.ratio:g}"

    def carrier_size(self, size: int) -> int:
        return max(1, int(round(self.ratio * size)))

    def footprint(self, size: int) -> WireSize:
        return WireSize(values=0, index_ints=self.carrier_size(size))

    def select(self, vec: np.ndarray, rng) -> tuple[np.ndarray, np.ndarray]:
        k = self.carrier_size(vec.size)
        keep = np.argpartition(np.abs(vec), -k)[-k:]
        return keep, vec[keep]


class _RandKStage(_Stage):
    kind = "randk"
    role = "selector"

    def __init__(self, arg: str) -> None:
        self.ratio = _parse_ratio(self.kind, arg)

    @property
    def spec(self) -> str:
        return f"{self.kind}:{self.ratio:g}"

    def carrier_size(self, size: int) -> int:
        return max(1, int(round(self.ratio * size)))

    def footprint(self, size: int) -> WireSize:
        return WireSize(values=0, index_ints=self.carrier_size(size))

    def select(self, vec: np.ndarray, rng) -> tuple[np.ndarray, np.ndarray]:
        k = self.carrier_size(vec.size)
        keep = rng.choice(vec.size, size=k, replace=False)
        # Inverse-probability scaling keeps the selection unbiased.
        return keep, vec[keep] * (vec.size / k)


class _SketchStage(_Stage):
    """Count-sketch projection: d coordinates hash into ``ratio * d``
    signed buckets; the estimate for coordinate i is
    ``sign(i) * bucket[h(i)]``.  Hash and sign tables derive
    deterministically from (size, width), so decode needs no streams
    beyond the buckets themselves and no index ints cross the wire."""

    kind = "sketch"
    role = "selector"

    def __init__(self, arg: str) -> None:
        self.ratio = _parse_ratio(self.kind, arg)

    @property
    def spec(self) -> str:
        return f"{self.kind}:{self.ratio:g}"

    def carrier_size(self, size: int) -> int:
        return max(1, int(round(self.ratio * size)))

    def footprint(self, size: int) -> WireSize:
        return WireSize(values=0)  # the bucket payload is charged downstream

    def _tables(self, size: int) -> tuple[np.ndarray, np.ndarray]:
        width = self.carrier_size(size)
        rng = np.random.default_rng([_SKETCH_SEED, size, width])
        buckets = rng.integers(0, width, size=size)
        signs = (rng.integers(0, 2, size=size) * 2 - 1).astype(np.float64)
        return buckets, signs

    def project(self, vec: np.ndarray) -> np.ndarray:
        buckets, signs = self._tables(vec.size)
        out = np.zeros(self.carrier_size(vec.size), dtype=np.float64)
        np.add.at(out, buckets, signs * vec)
        return out

    def expand(self, values: np.ndarray, size: int) -> np.ndarray:
        buckets, signs = self._tables(size)
        return signs * values[buckets]


class _QSGDStage(_Stage):
    """QSGD-style quantization: a max-norm scale plus ``bits``-bit
    signed stochastic levels, ``L = 2^(bits-1) - 1`` per sign."""

    kind = "qsgd"
    role = "coder"

    def __init__(self, arg: str) -> None:
        self.bits = _parse_bits(self.kind, arg, 2, 16)

    @property
    def spec(self) -> str:
        return f"{self.kind}:{self.bits}"

    def footprint(self, size: int) -> WireSize:
        return WireSize(values=1, raw_bytes=int(np.ceil(size * self.bits / 8.0)))

    def code(self, values: np.ndarray, rng) -> np.ndarray:
        draws = rng.random(values.shape)  # data-independent rng consumption
        scale = float(np.max(np.abs(values))) if values.size else 0.0
        if scale == 0.0:
            return np.zeros_like(values)
        levels = (1 << (self.bits - 1)) - 1
        scaled = values / scale * levels
        floor = np.floor(scaled)
        quantized = np.clip(floor + (draws < scaled - floor), -levels, levels)
        return quantized * (scale / levels)


class _SignStage(_Stage):
    """1-bit sign compression with a mean-|x| scale (signSGD with
    majority-vote scaling collapses to this in the single-round view)."""

    kind = "sign"
    role = "coder"

    def __init__(self, arg: str) -> None:
        if arg:
            raise ConfigError(f"compression stage 'sign' takes no parameter, got {arg!r}")

    @property
    def spec(self) -> str:
        return self.kind

    def footprint(self, size: int) -> WireSize:
        return WireSize(values=1, raw_bytes=int(np.ceil(size / 8.0)))

    def code(self, values: np.ndarray, rng) -> np.ndarray:
        scale = float(np.mean(np.abs(values))) if values.size else 0.0
        return np.where(values < 0.0, -scale, scale)


class _UniformStage(_Stage):
    """Pipeline form of :class:`UniformQuantizer`: two range scalars
    plus ``bits``-bit stochastic levels over [min, max]."""

    kind = "quantize"
    role = "coder"

    def __init__(self, arg: str) -> None:
        self.bits = _parse_bits(self.kind, arg, 1, 16)

    @property
    def spec(self) -> str:
        return f"{self.kind}:{self.bits}"

    def footprint(self, size: int) -> WireSize:
        return WireSize(values=2, raw_bytes=int(np.ceil(size * self.bits / 8.0)))

    def code(self, values: np.ndarray, rng) -> np.ndarray:
        draws = rng.random(values.shape)  # data-independent rng consumption
        lo = float(values.min()) if values.size else 0.0
        hi = float(values.max()) if values.size else 0.0
        if hi == lo:
            return np.full_like(values, lo)
        levels = (1 << self.bits) - 1
        scaled = (values - lo) / (hi - lo) * levels
        floor = np.floor(scaled)
        rounded = np.clip(floor + (draws < scaled - floor), 0, levels)
        return lo + rounded / levels * (hi - lo)


#: stage kind -> class, also consulted by the config choice registry.
PIPELINE_STAGES: dict[str, type[_Stage]] = {
    _TopKStage.kind: _TopKStage,
    _RandKStage.kind: _RandKStage,
    _SketchStage.kind: _SketchStage,
    _QSGDStage.kind: _QSGDStage,
    _SignStage.kind: _SignStage,
    _UniformStage.kind: _UniformStage,
}

#: accepted spellings for spec validation ('none' + stage kinds + aliases).
SPEC_STAGE_KINDS: tuple[str, ...] = ("none", *PIPELINE_STAGES, "subsample")

_STAGE_ALIASES = {"subsample": "randk"}


def parse_compression_spec(spec: str) -> list[_Stage]:
    """Parse and validate a pipeline spec like ``"topk:0.01|qsgd:8"``.

    Returns the (possibly empty, for ``"none"``) stage list.  Raises
    :class:`~repro.exceptions.ConfigError` on unknown stages, bad
    parameters, or illegal compositions (more than one selector, more
    than one value coder, selector not first, coder not last).
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ConfigError(f"compression spec must be a non-empty string, got {spec!r}")
    parts = [part.strip() for part in spec.split("|")]
    if "none" in parts:
        if parts != ["none"]:
            raise ConfigError(
                f"compression spec 'none' cannot be combined with other stages: {spec!r}"
            )
        return []
    stages: list[_Stage] = []
    for part in parts:
        kind, sep, arg = part.partition(":")
        kind = _STAGE_ALIASES.get(kind.strip(), kind.strip())
        cls = PIPELINE_STAGES.get(kind)
        if cls is None:
            raise ConfigError(
                f"unknown compression stage {kind!r} in spec {spec!r}; "
                f"choose from {sorted(SPEC_STAGE_KINDS)}"
            )
        stages.append(cls(arg.strip()))
    selectors = [s for s in stages if s.role == "selector"]
    coders = [s for s in stages if s.role == "coder"]
    if len(selectors) > 1:
        raise ConfigError(f"compression spec {spec!r} has more than one selector stage")
    if len(coders) > 1:
        raise ConfigError(f"compression spec {spec!r} has more than one value-coder stage")
    if selectors and stages[0] is not selectors[0]:
        raise ConfigError(f"selector stage must come first in compression spec {spec!r}")
    if coders and stages[-1] is not coders[0]:
        raise ConfigError(f"value-coder stage must come last in compression spec {spec!r}")
    return stages


class CompressionPipeline(Compressor):
    """Composable lossy compressor built from a spec string.

    ``compress`` / ``encode`` / ``decode`` follow the
    :class:`Compressor` contract; ``decode(encode(v))`` is bit-identical
    to ``compress(v)`` by construction (both run the same selection /
    coding and the same scatter).  Stage wire footprints depend only on
    the input size — see :meth:`stage_footprints`.
    """

    name = "pipeline"

    def __init__(self, spec: str) -> None:
        stages = parse_compression_spec(spec)
        if not stages:
            raise ConfigError(
                "CompressionPipeline needs at least one stage; use "
                "compressor_from_spec() to map 'none' to no compressor"
            )
        self.stages = stages
        self.selector = next((s for s in stages if s.role == "selector"), None)
        self.coder = next((s for s in stages if s.role == "coder"), None)
        self.spec = "|".join(stage.spec for stage in stages)

    def __repr__(self) -> str:
        return f"CompressionPipeline({self.spec!r})"

    # -- shape accounting -------------------------------------------------------
    def carrier_size(self, size: int) -> int:
        """How many carrier values survive selection for a d=size input."""
        return self.selector.carrier_size(size) if self.selector is not None else int(size)

    def wire_size(self, size: int) -> WireSize:
        """Total wire footprint for one d=size upload (data-independent)."""
        total = WireSize(values=0)
        for _, footprint in self.stage_footprints(size):
            total = total + footprint
        return total

    def stage_footprints(self, size: int) -> list[tuple[str, WireSize]]:
        """Per-stage true encoded bytes: ``[(stage_spec, WireSize), ...]``.

        Footprints sum to :meth:`wire_size`.  When no value coder is
        present the carrier values travel as dtype-width scalars,
        reported as a synthetic ``'values'`` entry.
        """
        out: list[tuple[str, WireSize]] = []
        carrier = int(size)
        if self.selector is not None:
            out.append((self.selector.spec, self.selector.footprint(size)))
            carrier = self.selector.carrier_size(size)
        if self.coder is not None:
            out.append((self.coder.spec, self.coder.footprint(carrier)))
        else:
            out.append(("values", WireSize(values=carrier)))
        return out

    # -- compression ------------------------------------------------------------
    def _encode_parts(
        self, vec: np.ndarray, rng
    ) -> tuple[np.ndarray | None, np.ndarray]:
        vec = np.asarray(vec, dtype=np.float64).ravel()
        indices: np.ndarray | None = None
        if isinstance(self.selector, _SketchStage):
            values = self.selector.project(vec)
        elif self.selector is not None:
            indices, values = self.selector.select(vec, rng)
        else:
            values = vec
        if self.coder is not None:
            values = self.coder.code(values, rng)
        return indices, np.asarray(values, dtype=np.float64)

    def _expand(
        self, indices: np.ndarray | None, values: np.ndarray, size: int
    ) -> np.ndarray:
        if isinstance(self.selector, _SketchStage):
            return self.selector.expand(values, size)
        if self.selector is not None:
            out = np.zeros(int(size), dtype=np.float64)
            out[indices] = values
            return out
        return np.array(values, dtype=np.float64, copy=True)

    def compress(self, vec, rng):
        size = int(np.asarray(vec).size)
        indices, values = self._encode_parts(vec, rng)
        return self._expand(indices, values, size), self.wire_size(size)

    def encode(self, vec, rng):
        size = int(np.asarray(vec).size)
        indices, values = self._encode_parts(vec, rng)
        streams = {"values": values}
        if indices is not None:
            streams["indices"] = indices.astype(np.int32)
        return streams, self.wire_size(size)

    def decode(self, streams, size):
        return self._expand(streams.get("indices"), streams["values"], int(size))


def compressor_from_spec(spec: str | None) -> Compressor | None:
    """Canonical factory: spec string -> compressor (``None`` for 'none').

    ``compressor_from_spec("none")`` (or ``None`` / ``""``) returns
    ``None`` so callers can keep the uncompressed fast path — and its
    byte accounting — bit-identical to a run with no compression knob.
    """
    if spec is None or spec == "" or spec == "none":
        return None
    if not parse_compression_spec(spec):  # "none" with whitespace etc.
        return None
    return CompressionPipeline(spec)


_MAKE_COMPRESSOR_WARNED = False


def make_compressor(name: str, **kwargs) -> Compressor:
    """Deprecated factory: 'none' | 'topk' | 'subsample' | 'quantize'.

    Use spec strings instead — :func:`compressor_from_spec`
    (``"topk:0.05"``, ``"quantize:8"``) or the ``FLConfig.compression``
    knob, which add composition and error feedback.  This alias warns
    once per process and delegates to the legacy single-stage classes
    (still the right tool for ``legacy_scalars=True`` byte accounting).
    """
    global _MAKE_COMPRESSOR_WARNED
    if not _MAKE_COMPRESSOR_WARNED:
        _MAKE_COMPRESSOR_WARNED = True
        warnings.warn(
            "make_compressor() is deprecated; build compressors from spec "
            "strings via compressor_from_spec() or FLConfig(compression=...)",
            DeprecationWarning,
            stacklevel=2,
        )
    table = {
        "none": NoCompression,
        "topk": TopKSparsifier,
        "subsample": RandomSubsampler,
        "quantize": UniformQuantizer,
    }
    if name not in table:
        raise ConfigError(f"unknown compressor {name!r}; choose from {sorted(table)}")
    return table[name](**kwargs)
