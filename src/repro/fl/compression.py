"""Payload compression strategies for federated uploads.

The paper's related-work section surveys communication-compression
approaches (Konecny et al.'s quantization / random subsampling, sketch
methods); this module implements the standard menu so experiments can
combine the distribution regularizer with compressed model uploads:

* :class:`TopKSparsifier` — keep the k largest-magnitude coordinates.
* :class:`UniformQuantizer` — b-bit stochastic uniform quantization.
* :class:`RandomSubsampler` — transmit a random coordinate subset.
* :class:`NoCompression` — identity (the default everywhere else).

Every compressor maps a flat float vector to a (reconstructed_vector,
wire_scalars) pair: the reconstruction is what the server aggregates
(lossy), and ``wire_scalars`` is the equivalent float count charged to
the communication ledger (indices are charged at one scalar per
transmitted coordinate, a standard simplification).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError


class Compressor:
    """Interface: compress a flat vector, report its wire size."""

    name = "base"

    def compress(
        self, vec: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, int]:
        """Return (lossy reconstruction, wire size in scalars)."""
        raise NotImplementedError


class NoCompression(Compressor):
    name = "none"

    def compress(self, vec, rng):
        return np.array(vec, copy=True), int(vec.size)


class TopKSparsifier(Compressor):
    """Keep the fraction ``ratio`` of largest-|x| coordinates.

    Wire size: 2 scalars per kept coordinate (value + index).
    """

    name = "topk"

    def __init__(self, ratio: float) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ConfigError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio

    def compress(self, vec, rng):
        vec = np.asarray(vec, dtype=np.float64)
        k = max(1, int(round(self.ratio * vec.size)))
        keep = np.argpartition(np.abs(vec), -k)[-k:]
        out = np.zeros_like(vec)
        out[keep] = vec[keep]
        return out, 2 * k


class RandomSubsampler(Compressor):
    """Transmit a uniformly random coordinate subset, rescaled to be
    unbiased: E[reconstruction] = vec."""

    name = "subsample"

    def __init__(self, ratio: float) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ConfigError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio

    def compress(self, vec, rng):
        vec = np.asarray(vec, dtype=np.float64)
        k = max(1, int(round(self.ratio * vec.size)))
        keep = rng.choice(vec.size, size=k, replace=False)
        out = np.zeros_like(vec)
        out[keep] = vec[keep] * (vec.size / k)  # inverse-probability scaling
        return out, 2 * k


class UniformQuantizer(Compressor):
    """b-bit stochastic uniform quantization over [min, max].

    Unbiased: each value rounds up with probability equal to its
    fractional position between adjacent levels.  Wire size:
    ``ceil(b/32)``-fraction of a float per coordinate plus 2 scalars for
    the range.
    """

    name = "quantize"

    def __init__(self, bits: int) -> None:
        if not 1 <= bits <= 16:
            raise ConfigError(f"bits must be in [1, 16], got {bits}")
        self.bits = bits

    def compress(self, vec, rng):
        vec = np.asarray(vec, dtype=np.float64)
        lo, hi = float(vec.min()), float(vec.max())
        if hi == lo:
            return np.full_like(vec, lo), 2
        levels = (1 << self.bits) - 1
        scaled = (vec - lo) / (hi - lo) * levels
        floor = np.floor(scaled)
        frac = scaled - floor
        rounded = floor + (rng.random(vec.shape) < frac)
        rounded = np.clip(rounded, 0, levels)
        recon = lo + rounded / levels * (hi - lo)
        wire = 2 + int(np.ceil(vec.size * self.bits / 32.0))
        return recon, wire


def make_compressor(name: str, **kwargs) -> Compressor:
    """Factory: 'none' | 'topk' | 'subsample' | 'quantize'."""
    table = {
        "none": NoCompression,
        "topk": TopKSparsifier,
        "subsample": RandomSubsampler,
        "quantize": UniformQuantizer,
    }
    if name not in table:
        raise ConfigError(f"unknown compressor {name!r}; choose from {sorted(table)}")
    return table[name](**kwargs)
