"""Payload compression strategies for federated uploads.

The paper's related-work section surveys communication-compression
approaches (Konecny et al.'s quantization / random subsampling, sketch
methods); this module implements the standard menu so experiments can
combine the distribution regularizer with compressed model uploads:

* :class:`TopKSparsifier` — keep the k largest-magnitude coordinates.
* :class:`UniformQuantizer` — b-bit stochastic uniform quantization.
* :class:`RandomSubsampler` — transmit a random coordinate subset.
* :class:`NoCompression` — identity (the default everywhere else).

Every compressor maps a flat float vector to a (reconstructed_vector,
:class:`WireSize`) pair: the reconstruction is what the server
aggregates (lossy), and the wire size describes what actually crosses
the wire so the ledger can charge real bytes under the active dtype
policy.  Sparse compressors additionally implement
:meth:`Compressor.encode` / :meth:`Compressor.decode`, which split the
payload into an ``int32`` index stream plus a value stream — the packed
wire transport ships those instead of a dense reconstruction, and
``decode(encode(v))`` is bit-identical to ``compress(v)`` under the
same rng.

**Byte accounting.**  Historically indices were charged as "1 scalar
per index" (a common simplification).  The wire path charges them as 4
``int32`` bytes each instead; construct a compressor with
``legacy_scalars=True`` to restore the old accounting (and dense
shipping) when reproducing pre-wire experiment numbers — see
``docs/performance.md`` for the delta.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError

INDEX_BYTES = 4  # compressed coordinate indices travel as int32


@dataclass(frozen=True)
class WireSize:
    """What one upload actually puts on the wire.

    Attributes:
        values: count of dtype-width scalars (model coefficients, delta
            entries, quantization range endpoints).
        index_ints: count of ``int32`` coordinate indices.
        raw_bytes: dtype-independent raw bytes (bit-packed quantization
            words).
        legacy_scalars: the equivalent count under the old "everything
            is one scalar" accounting, kept for back-compatibility
            (:attr:`ClientUpdate.wire <repro.fl.parallel.ClientUpdate>`).
        legacy: True when the producing compressor was constructed with
            ``legacy_scalars=True`` — byte charges then use the old
            scalar accounting.
    """

    values: int
    index_ints: int = 0
    raw_bytes: int = 0
    legacy_scalars: int | None = None
    legacy: bool = False

    @property
    def scalars(self) -> int:
        """Equivalent scalar count under the legacy accounting."""
        if self.legacy_scalars is not None:
            return self.legacy_scalars
        return self.values + self.index_ints

    def nbytes(self, dtype_bytes: int) -> int:
        """Actual wire bytes under a ``dtype_bytes``-per-scalar policy."""
        if self.legacy:
            return self.scalars * int(dtype_bytes)
        return (
            self.values * int(dtype_bytes)
            + self.index_ints * INDEX_BYTES
            + self.raw_bytes
        )

    def __add__(self, other: "WireSize") -> "WireSize":
        return WireSize(
            values=self.values + other.values,
            index_ints=self.index_ints + other.index_ints,
            raw_bytes=self.raw_bytes + other.raw_bytes,
            legacy_scalars=self.scalars + other.scalars,
            legacy=self.legacy or other.legacy,
        )


class Compressor:
    """Interface: compress a flat vector, report its wire size."""

    name = "base"

    def compress(
        self, vec: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, WireSize]:
        """Return (lossy reconstruction, wire size)."""
        raise NotImplementedError

    def encode(
        self, vec: np.ndarray, rng: np.random.Generator
    ) -> tuple[dict[str, np.ndarray], WireSize] | None:
        """Split ``vec`` into wire streams instead of a dense vector.

        Returns ``None`` when this compressor has no stream form (the
        caller then uses :meth:`compress` with the *same* rng — an
        implementation must consume the rng in ``encode`` exactly when
        it would in ``compress``, so either path sees identical draws).
        """
        return None

    def decode(self, streams: dict[str, np.ndarray], size: int) -> np.ndarray:
        """Materialize the dense reconstruction from wire streams.

        Must be bit-identical to what :meth:`compress` would have
        returned for the same input and rng.
        """
        raise NotImplementedError(f"{self.name} has no stream form")


class NoCompression(Compressor):
    name = "none"

    def compress(self, vec, rng):
        return np.array(vec, copy=True), WireSize(values=int(vec.size))


class TopKSparsifier(Compressor):
    """Keep the fraction ``ratio`` of largest-|x| coordinates.

    Wire size: k values plus k ``int32`` indices (legacy accounting:
    2 scalars per kept coordinate).
    """

    name = "topk"

    def __init__(self, ratio: float, legacy_scalars: bool = False) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ConfigError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self.legacy = bool(legacy_scalars)

    def _keep(self, vec: np.ndarray) -> np.ndarray:
        k = max(1, int(round(self.ratio * vec.size)))
        return np.argpartition(np.abs(vec), -k)[-k:]

    def _wire(self, k: int) -> WireSize:
        return WireSize(values=k, index_ints=k, legacy_scalars=2 * k, legacy=self.legacy)

    def compress(self, vec, rng):
        vec = np.asarray(vec, dtype=np.float64)
        keep = self._keep(vec)
        out = np.zeros_like(vec)
        out[keep] = vec[keep]
        return out, self._wire(keep.size)

    def encode(self, vec, rng):
        if self.legacy:
            return None  # legacy mode ships the dense reconstruction
        vec = np.asarray(vec, dtype=np.float64)
        keep = self._keep(vec)
        streams = {
            "indices": keep.astype(np.int32),
            "values": vec[keep],
        }
        return streams, self._wire(keep.size)

    def decode(self, streams, size):
        out = np.zeros(size, dtype=streams["values"].dtype)
        out[streams["indices"]] = streams["values"]
        return out


class RandomSubsampler(Compressor):
    """Transmit a uniformly random coordinate subset, rescaled to be
    unbiased: E[reconstruction] = vec."""

    name = "subsample"

    def __init__(self, ratio: float, legacy_scalars: bool = False) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ConfigError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self.legacy = bool(legacy_scalars)

    def _keep(self, vec: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        k = max(1, int(round(self.ratio * vec.size)))
        return rng.choice(vec.size, size=k, replace=False)

    def _wire(self, k: int) -> WireSize:
        return WireSize(values=k, index_ints=k, legacy_scalars=2 * k, legacy=self.legacy)

    def compress(self, vec, rng):
        vec = np.asarray(vec, dtype=np.float64)
        keep = self._keep(vec, rng)
        out = np.zeros_like(vec)
        out[keep] = vec[keep] * (vec.size / keep.size)  # inverse-probability scaling
        return out, self._wire(keep.size)

    def encode(self, vec, rng):
        if self.legacy:
            return None
        vec = np.asarray(vec, dtype=np.float64)
        keep = self._keep(vec, rng)
        streams = {
            "indices": keep.astype(np.int32),
            # Scaled exactly as compress() scales, so decode() scatters
            # bit-identical values.
            "values": vec[keep] * (vec.size / keep.size),
        }
        return streams, self._wire(keep.size)

    def decode(self, streams, size):
        out = np.zeros(size, dtype=streams["values"].dtype)
        out[streams["indices"]] = streams["values"]
        return out


class UniformQuantizer(Compressor):
    """b-bit stochastic uniform quantization over [min, max].

    Unbiased: each value rounds up with probability equal to its
    fractional position between adjacent levels.  Wire size: 2 range
    scalars plus ``ceil(size * b / 8)`` raw bytes of bit-packed levels
    (legacy accounting: ``2 + ceil(size * b / 32)`` scalars).  The
    reconstruction ships dense — there is no index stream to exploit.
    """

    name = "quantize"

    def __init__(self, bits: int, legacy_scalars: bool = False) -> None:
        if not 1 <= bits <= 16:
            raise ConfigError(f"bits must be in [1, 16], got {bits}")
        self.bits = bits
        self.legacy = bool(legacy_scalars)

    def _wire(self, size: int) -> WireSize:
        return WireSize(
            values=2,
            raw_bytes=int(np.ceil(size * self.bits / 8.0)),
            legacy_scalars=2 + int(np.ceil(size * self.bits / 32.0)),
            legacy=self.legacy,
        )

    def compress(self, vec, rng):
        vec = np.asarray(vec, dtype=np.float64)
        lo, hi = float(vec.min()), float(vec.max())
        if hi == lo:
            return np.full_like(vec, lo), WireSize(values=2, legacy=self.legacy)
        levels = (1 << self.bits) - 1
        scaled = (vec - lo) / (hi - lo) * levels
        floor = np.floor(scaled)
        frac = scaled - floor
        rounded = floor + (rng.random(vec.shape) < frac)
        rounded = np.clip(rounded, 0, levels)
        recon = lo + rounded / levels * (hi - lo)
        return recon, self._wire(vec.size)


def make_compressor(name: str, **kwargs) -> Compressor:
    """Factory: 'none' | 'topk' | 'subsample' | 'quantize'."""
    table = {
        "none": NoCompression,
        "topk": TopKSparsifier,
        "subsample": RandomSubsampler,
        "quantize": UniformQuantizer,
    }
    if name not in table:
        raise ConfigError(f"unknown compressor {name!r}; choose from {sorted(table)}")
    return table[name](**kwargs)
