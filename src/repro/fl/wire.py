"""Packed flat-buffer wire format for federated payloads.

Everything that crosses the client-server boundary (or a worker-process
boundary) is a small set of named numpy arrays plus a handful of scalar
fields.  Pickling those is convenient but wasteful: every message pays
the full pickle machinery, dense float64 copies of sparse payloads, and
per-task re-serialization of round-constant state.  This module defines
a minimal self-describing binary layout instead:

    offset 0   magic          b"RFW1"
           4   version        u8  (currently 1)
           5   kind           u8  (KIND_CODES)
           6   segment count  u16 LE
           8   header length  u32 LE (magic through segment table)
          12   total length   u64 LE (whole message)
          20   segment table  one entry per segment
           -   payload        contiguous segment buffers, each 8-aligned

    segment entry:
        flag      u8  (0 = array, 1 = float scalar, 2 = int scalar)
        dtype     u8  (DTYPE_CODES)
        ndim      u8
        name len  u8
        offset    u64 LE (from message start)
        dims      ndim x u64 LE
        name      utf-8 bytes

The payload buffers are dtype-true — a float32 vector costs 4 bytes per
scalar on the wire, never a pickled float64 copy — and :func:`unpack`
returns **zero-copy read-only views** into the source buffer, so a
worker can decode a round-state broadcast out of shared memory without
materializing anything.

Three message kinds are used by the transport layer:

* ``"state"`` — the round-constant algorithm state the parent broadcasts
  to workers once per round (:meth:`FederatedAlgorithm._worker_state`).
* ``"update"`` — one finished :class:`~repro.fl.parallel.ClientUpdate`,
  including compressed index/value streams when a sparsifying
  compressor is active.
* ``"generic"`` — free-form named segments.

Anything that cannot be expressed as named arrays / float / int
segments raises :class:`~repro.exceptions.WireError`; callers treat
that as "fall back to pickle", never as a fatal error.

**Framing.**  In memory a message's extent is known from context (a
shared-memory header stores the length).  On a byte stream — the
multi-process serving subsystem (:mod:`repro.serve`) speaks RFW1 over
TCP / Unix-domain sockets — messages are delimited by a little-endian
``u64`` length prefix (:func:`frame`) and reassembled from arbitrarily
fragmented reads by :class:`FrameAssembler`.  Truncated, torn, or
oversized input must never escape as ``IndexError`` / ``struct.error``:
both the assembler and :func:`unpack` validate every declared length
and offset against the actual buffer and raise :class:`WireError`.
"""

from __future__ import annotations

import struct
from typing import Mapping

import numpy as np

from repro.exceptions import WireError

MAGIC = b"RFW1"
VERSION = 1

KIND_CODES = {"generic": 0, "update": 1, "state": 2}
_KIND_NAMES = {code: name for name, code in KIND_CODES.items()}

# Wire dtype registry.  Only dtypes that actually cross the boundary are
# admitted; anything else (object arrays, strings) must go via pickle.
DTYPE_CODES = {
    np.dtype(np.float32): 0,
    np.dtype(np.float64): 1,
    np.dtype(np.int32): 2,
    np.dtype(np.int64): 3,
    np.dtype(np.bool_): 4,
    np.dtype(np.uint8): 5,
}
_CODE_DTYPES = {code: dt for dt, code in DTYPE_CODES.items()}

_FLAG_ARRAY = 0
_FLAG_FLOAT = 1
_FLAG_INT = 2

_HEADER = struct.Struct("<4sBBHIQ")  # magic, version, kind, nseg, hdr_len, total_len
_ENTRY_FIXED = struct.Struct("<BBBBQ")  # flag, dtype, ndim, name_len, offset

_ALIGN = 8


def _align(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


def _as_segment(name: str, value) -> tuple[int, np.ndarray]:
    """Normalize one segment value to (flag, contiguous ndarray)."""
    if isinstance(value, np.ndarray):
        if value.dtype not in DTYPE_CODES:
            raise WireError(f"segment {name!r}: unsupported dtype {value.dtype}")
        return _FLAG_ARRAY, np.ascontiguousarray(value)
    if isinstance(value, (bool, np.bool_)):
        return _FLAG_INT, np.asarray(int(value), dtype=np.int64)
    if isinstance(value, (int, np.integer)):
        return _FLAG_INT, np.asarray(int(value), dtype=np.int64)
    if isinstance(value, (float, np.floating)):
        return _FLAG_FLOAT, np.asarray(float(value), dtype=np.float64)
    raise WireError(f"segment {name!r}: cannot encode {type(value).__name__}")


def pack(kind: str, segments: Mapping[str, object]) -> bytes:
    """Encode named segments into one contiguous wire message."""
    if kind not in KIND_CODES:
        raise WireError(f"unknown message kind {kind!r}")
    normalized: list[tuple[str, bytes, int, np.ndarray]] = []
    for name, value in segments.items():
        name_bytes = name.encode("utf-8")
        if not name_bytes or len(name_bytes) > 255:
            raise WireError(f"segment name {name!r} must encode to 1..255 bytes")
        flag, arr = _as_segment(name, value)
        if arr.ndim > 255:
            raise WireError(f"segment {name!r}: too many dimensions")
        normalized.append((name, name_bytes, flag, arr))

    header_len = _HEADER.size + sum(
        _ENTRY_FIXED.size + arr.ndim * 8 + len(name_bytes)
        for _, name_bytes, _, arr in normalized
    )
    offsets: list[int] = []
    cursor = _align(header_len)
    for _, _, _, arr in normalized:
        offsets.append(cursor)
        cursor = _align(cursor + arr.nbytes)
    total_len = cursor

    buf = bytearray(total_len)
    _HEADER.pack_into(
        buf, 0, MAGIC, VERSION, KIND_CODES[kind], len(normalized), header_len, total_len
    )
    pos = _HEADER.size
    for (name, name_bytes, flag, arr), offset in zip(normalized, offsets):
        _ENTRY_FIXED.pack_into(
            buf, pos, flag, DTYPE_CODES[arr.dtype], arr.ndim, len(name_bytes), offset
        )
        pos += _ENTRY_FIXED.size
        for dim in arr.shape:
            struct.pack_into("<Q", buf, pos, dim)
            pos += 8
        buf[pos : pos + len(name_bytes)] = name_bytes
        pos += len(name_bytes)
        buf[offset : offset + arr.nbytes] = arr.tobytes()
    return bytes(buf)


def unpack(buf) -> tuple[str, dict[str, object]]:
    """Decode a wire message into ``(kind, segments)``.

    Array segments come back as zero-copy **read-only** views into
    ``buf`` (which may be bytes, a memoryview, or an mmap); scalar
    segments come back as plain ``float`` / ``int``.  The views keep
    ``buf`` alive, but a caller that overwrites a shared buffer in place
    (the round-state mmap) must not hold views across the overwrite.
    """
    view = memoryview(buf)
    if len(view) < _HEADER.size:
        raise WireError(f"message truncated: {len(view)} bytes")
    try:
        magic, version, kind_code, nseg, header_len, total_len = _HEADER.unpack_from(
            view, 0
        )
    except struct.error as exc:  # non-contiguous / exotic buffer shapes
        raise WireError(f"unreadable message header: {exc}") from exc
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r}")
    if version != VERSION:
        raise WireError(f"unsupported wire version {version}")
    if kind_code not in _KIND_NAMES:
        raise WireError(f"unknown kind code {kind_code}")
    if header_len < _HEADER.size:
        raise WireError(
            f"header length {header_len} smaller than the fixed header"
        )
    if total_len > len(view) or header_len > total_len:
        raise WireError(
            f"message truncated: header claims {total_len} bytes, have {len(view)}"
        )

    segments: dict[str, object] = {}
    pos = _HEADER.size
    for _ in range(nseg):
        # Every entry read is bounds-checked against the *declared*
        # header extent first, so a lying segment count or a torn table
        # raises WireError instead of struct.error / IndexError.
        if pos + _ENTRY_FIXED.size > header_len:
            raise WireError("segment table overruns the declared header")
        flag, dtype_code, ndim, name_len, offset = _ENTRY_FIXED.unpack_from(view, pos)
        pos += _ENTRY_FIXED.size
        if pos + ndim * 8 + name_len > header_len:
            raise WireError("segment entry overruns the declared header")
        dims = struct.unpack_from(f"<{ndim}Q", view, pos) if ndim else ()
        pos += ndim * 8
        try:
            name = bytes(view[pos : pos + name_len]).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"segment name is not valid UTF-8: {exc}") from exc
        pos += name_len
        if flag not in (_FLAG_ARRAY, _FLAG_FLOAT, _FLAG_INT):
            raise WireError(f"segment {name!r}: unknown flag {flag}")
        dtype = _CODE_DTYPES.get(dtype_code)
        if dtype is None:
            raise WireError(f"segment {name!r}: unknown dtype code {dtype_code}")
        # Python-int product: u64 dims from a hostile message cannot
        # silently overflow an int64 accumulator into a "valid" size.
        count = 1
        for dim in dims:
            count *= int(dim)
        if flag != _FLAG_ARRAY and count != 1:
            raise WireError(f"scalar segment {name!r} must hold exactly one value")
        end = offset + count * dtype.itemsize
        if offset < header_len or end > total_len:
            raise WireError(f"segment {name!r} overruns the message")
        arr = np.frombuffer(view, dtype=dtype, count=count, offset=offset)
        if flag == _FLAG_FLOAT:
            segments[name] = float(arr[0])
        elif flag == _FLAG_INT:
            segments[name] = int(arr[0])
        else:
            arr = arr.reshape(dims)
            arr.flags.writeable = False
            segments[name] = arr
    return _KIND_NAMES[kind_code], segments


# -- stream framing -----------------------------------------------------------------

# A framed message on a byte stream is [u64 LE length][message].  The
# serving subsystem (repro.serve) uses this for every socket exchange.
FRAME_PREFIX = struct.Struct("<Q")

# A declared frame length beyond this is treated as stream corruption,
# not as a request to buffer gigabytes: no payload in this codebase
# comes anywhere near it, and a torn prefix read as a length must not
# stall the reader forever waiting for impossible bytes.
MAX_FRAME_BYTES = 1 << 31


def frame(message: bytes) -> bytes:
    """Length-prefix one wire message for transmission on a byte stream."""
    if not message:
        raise WireError("cannot frame an empty message")
    if len(message) > MAX_FRAME_BYTES:
        raise WireError(
            f"message of {len(message)} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "frame limit"
        )
    return FRAME_PREFIX.pack(len(message)) + message


class FrameAssembler:
    """Reassemble length-prefixed frames from fragmented stream reads.

    Sockets deliver bytes, not messages: one ``recv`` may carry half a
    length prefix, several concatenated frames, or a single byte.
    :meth:`feed` buffers whatever arrives and returns every *complete*
    frame payload, in order.  A declared length of zero or beyond
    ``max_frame_bytes`` raises :class:`WireError` immediately — the
    stream is corrupt and waiting for more bytes cannot fix it.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb one read's bytes; return the completed frame payloads."""
        self._buffer.extend(data)
        frames: list[bytes] = []
        while len(self._buffer) >= FRAME_PREFIX.size:
            (length,) = FRAME_PREFIX.unpack_from(self._buffer, 0)
            if length == 0 or length > self.max_frame_bytes:
                raise WireError(
                    f"frame declares {length} bytes "
                    f"(limit {self.max_frame_bytes}); stream is corrupt"
                )
            end = FRAME_PREFIX.size + length
            if len(self._buffer) < end:
                break
            frames.append(bytes(self._buffer[FRAME_PREFIX.size : end]))
            del self._buffer[:end]
        return frames


# -- round-state broadcast ----------------------------------------------------------


def pack_state(state: Mapping[str, object]) -> bytes:
    """Encode a round-state dict (arrays / scalars) for broadcast."""
    return pack("state", state)


def unpack_state(buf) -> dict[str, object]:
    """Decode a round-state broadcast; arrays are zero-copy views."""
    kind, segments = unpack(buf)
    if kind != "state":
        raise WireError(f"expected a state message, got {kind!r}")
    return segments


# -- client updates -----------------------------------------------------------------

# Fixed numeric fields of ClientUpdate, packed as scalar segments.
_UPDATE_INTS = ("client_id", "wire", "num_steps", "worker")
_UPDATE_FLOATS = ("task_loss", "reg_loss", "train_seconds")


def pack_client_update(update) -> bytes:
    """Encode a :class:`~repro.fl.parallel.ClientUpdate`.

    Raises :class:`WireError` when the update carries anything the
    format cannot express (e.g. an exotic payload value); the transport
    then falls back to returning the pickled update.
    """
    segments: dict[str, object] = {}
    for field in _UPDATE_INTS:
        segments[f"f.{field}"] = int(getattr(update, field))
    for field in _UPDATE_FLOATS:
        segments[f"f.{field}"] = float(getattr(update, field))
    if update.params is not None:
        segments["params"] = update.params
    if update.residual is not None:
        segments["residual"] = update.residual
    if update.wire_size is not None:
        ws = update.wire_size
        legacy_scalars = -1 if ws.legacy_scalars is None else int(ws.legacy_scalars)
        segments["wire_size"] = np.array(
            [ws.values, ws.index_ints, ws.raw_bytes, legacy_scalars, int(ws.legacy)],
            dtype=np.int64,
        )
    if update.params_streams:
        for name, value in update.params_streams.items():
            if not isinstance(value, np.ndarray):
                raise WireError(f"stream {name!r} must be an ndarray")
            segments[f"s.{name}"] = value
    if update.payload:
        for name, value in update.payload.items():
            segments[f"p.{name}"] = value
    return pack("update", segments)


def unpack_client_update(buf):
    """Decode a packed client update; array fields are zero-copy views."""
    from repro.fl.compression import WireSize
    from repro.fl.parallel import ClientUpdate

    kind, segments = unpack(buf)
    if kind != "update":
        raise WireError(f"expected an update message, got {kind!r}")
    fields: dict[str, object] = {}
    streams: dict[str, np.ndarray] = {}
    payload: dict[str, object] = {}
    params = None
    residual = None
    wire_size = None
    for name, value in segments.items():
        prefix, _, rest = name.partition(".")
        if prefix == "f":
            fields[rest] = value
        elif prefix == "s":
            streams[rest] = value
        elif prefix == "p":
            payload[rest] = value
        elif name == "params":
            params = value
        elif name == "residual":
            residual = value
        elif name == "wire_size":
            values, index_ints, raw_bytes, legacy_scalars, legacy = (
                int(x) for x in value
            )
            wire_size = WireSize(
                values=values,
                index_ints=index_ints,
                raw_bytes=raw_bytes,
                legacy_scalars=None if legacy_scalars < 0 else legacy_scalars,
                legacy=bool(legacy),
            )
        else:
            raise WireError(f"unexpected segment {name!r} in update message")
    missing = [f for f in _UPDATE_INTS + _UPDATE_FLOATS if f not in fields]
    if missing:
        raise WireError(f"update message missing fields {missing}")
    return ClientUpdate(
        client_id=int(fields["client_id"]),
        params=params,
        wire=int(fields["wire"]),
        task_loss=float(fields["task_loss"]),
        reg_loss=float(fields["reg_loss"]),
        num_steps=int(fields["num_steps"]),
        train_seconds=float(fields["train_seconds"]),
        worker=int(fields["worker"]),
        payload=payload or None,
        params_streams=streams or None,
        wire_size=wire_size,
        residual=residual,
    )
