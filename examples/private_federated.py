"""Differentially private distribution regularization (paper Sec. VI-B8).

The delta vectors a client uploads are a function of its raw data, so
the paper protects them with the Gaussian mechanism: clip to C0, add
N(0, sigma2^2 C0^2 / L^2) noise.  This example sweeps the noise level
and shows the paper's observation that moderate noise is nearly free.

    python examples/private_federated.py
"""

from repro.algorithms import RFedAvgPlus
from repro.core.privacy import GaussianDeltaMechanism
from repro.experiments import build_image_federation, cross_silo_config, default_model_fn
from repro.fl import run_federated


def main() -> None:
    fed = build_image_federation(
        "synth_cifar", num_clients=10, similarity=0.0, num_train=2000, num_test=400
    )
    config = cross_silo_config(rounds=60, batch_size=32, lr=0.5, eval_every=5)
    model_fn = default_model_fn("mlp", fed.spec, scale=1.0)

    print("sigma2   noise-std(L=200)   final accuracy")
    for sigma in [0.0, 1.0, 5.0, 20.0]:
        mechanism = GaussianDeltaMechanism(sigma=sigma, clip_norm=5.0, seed=1)
        algorithm = RFedAvgPlus(lam=1e-3, privacy=mechanism)
        history = run_federated(algorithm, fed, model_fn, config)
        noise = mechanism.noise_std(batch_size=200)
        print(f"{sigma:6.1f}   {noise:16.5f}   {history.tail_mean_accuracy(3):.4f}")


if __name__ == "__main__":
    main()
