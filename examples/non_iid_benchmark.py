"""Compare all six algorithms across non-IID severities on synth-CIFAR.

Reproduces the spirit of the paper's Table I at example scale: the
similarity knob sweeps from totally non-IID (0%) to IID (100%) and the
script prints a paper-style accuracy table.

    python examples/non_iid_benchmark.py
"""

from repro.experiments import (
    build_image_federation,
    cross_silo_config,
    default_model_fn,
)
from repro.experiments.report import format_accuracy_table
from repro.experiments.runner import compare_algorithms

ALGORITHMS = {
    "fedavg": {},
    "fedprox": {"mu": 1.0},
    "scaffold": {"eta_g": 1.0},
    "qfedavg": {"q": 1.0},
    "rfedavg": {"lam": 1e-3},
    "rfedavg+": {"lam": 1e-3},
}


def main() -> None:
    config = cross_silo_config(rounds=60, batch_size=32, lr=0.5, eval_every=4)

    def model_fn_builder(fed, seed):
        return default_model_fn("mlp", fed.spec, seed=seed, scale=1.0)

    columns = {}
    for similarity, label in [(0.0, "Sim 0%"), (0.1, "Sim 10%"), (1.0, "Sim 100%")]:

        def fed_builder(seed, _sim=similarity):
            return build_image_federation(
                "synth_cifar",
                num_clients=10,
                similarity=_sim,
                num_train=2000,
                num_test=400,
                seed=seed,
            )

        print(f"running all algorithms at {label} ...")
        columns[label] = compare_algorithms(
            ALGORITHMS, fed_builder, model_fn_builder, config, repeats=2,
            # SCAFFOLD's control variates are unstable at lr=0.5 (the
            # paper also tunes some methods separately).
            config_overrides={"scaffold": {"lr": 0.15}},
        )

    print()
    print(format_accuracy_table(columns, title="synth-CIFAR, cross-silo (example scale)"))


if __name__ == "__main__":
    main()
