"""Compare all six algorithms across non-IID severities on synth-CIFAR.

Reproduces the spirit of the paper's Table I at example scale: the
similarity knob sweeps from totally non-IID (0%) to IID (100%) and the
script prints a paper-style accuracy table.  Each cell is two repeats of
the "cifar-noniid" preset via :func:`repro.run_experiment`.

    python examples/non_iid_benchmark.py
"""

import repro
from repro.experiments.report import format_accuracy_table
from repro.experiments.runner import RunResult

ALGORITHMS = {
    "fedavg": {},
    "fedprox": {"mu": 1.0},
    "scaffold": {"eta_g": 1.0},
    "qfedavg": {"q": 1.0},
    "rfedavg": {"lam": 1e-3},
    "rfedavg+": {"lam": 1e-3},
}
REPEATS = 2


def run_cell(name: str, kwargs: dict, similarity: float) -> RunResult:
    overrides = {"algorithm": name, "similarity": similarity, **kwargs}
    if name == "scaffold":
        # SCAFFOLD's control variates are unstable at lr=0.5 (the paper
        # also tunes some methods separately).
        overrides["lr"] = 0.15
    result = RunResult(algorithm=name)
    for rep in range(REPEATS):
        history, _ = repro.run_experiment(
            "cifar-noniid", seed=1000 * rep, overrides=overrides
        )
        result.histories.append(history)
    return result


def main() -> None:
    columns = {}
    for similarity, label in [(0.0, "Sim 0%"), (0.1, "Sim 10%"), (1.0, "Sim 100%")]:
        print(f"running all algorithms at {label} ...")
        columns[label] = {
            name: run_cell(name, kwargs, similarity)
            for name, kwargs in ALGORITHMS.items()
        }

    print()
    print(format_accuracy_table(columns, title="synth-CIFAR, cross-silo (example scale)"))


if __name__ == "__main__":
    main()
