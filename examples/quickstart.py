"""Quickstart: train rFedAvg+ vs FedAvg on non-IID synthetic MNIST.

Runs in under a minute on one CPU core and prints the round-by-round
accuracy of both methods plus the communication bill.

    python examples/quickstart.py
"""

from repro.algorithms import make_algorithm
from repro.experiments import build_image_federation, cross_silo_config, default_model_fn
from repro.fl import run_federated


def main() -> None:
    # A 10-client federation with fully non-IID label skew (Sim 0%).
    fed = build_image_federation(
        "synth_mnist", num_clients=10, similarity=0.0, num_train=2000, num_test=400
    )
    print(f"clients: {fed.num_clients}, shard sizes: {fed.client_sizes.tolist()}")

    config = cross_silo_config(rounds=60, batch_size=32, lr=0.5, eval_every=5)
    model_fn = default_model_fn("mlp", fed.spec, scale=1.0)

    for name, kwargs in [("fedavg", {}), ("rfedavg+", {"lam": 1e-3})]:
        algorithm = make_algorithm(name, **kwargs)
        history = run_federated(algorithm, fed, model_fn, config)
        print(f"\n=== {name} ===")
        for round_idx, accuracy in history.accuracies():
            print(f"  round {int(round_idx):3d}  test accuracy {accuracy:.4f}")
        print(f"  total traffic: {history.total_bytes():,} bytes")
        print(f"  mean time per round: {1000 * history.mean_round_time():.1f} ms")


if __name__ == "__main__":
    main()
