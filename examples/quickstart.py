"""Quickstart: train rFedAvg+ vs FedAvg on non-IID synthetic MNIST.

Runs in under a minute on one CPU core and prints the round-by-round
accuracy of both methods plus the communication bill.  Built on the
single public entry point :func:`repro.run_experiment` — swap the
``overrides`` dict to change the dataset, algorithm, or any config knob.

    python examples/quickstart.py
"""

import repro


def main() -> None:
    # The "quickstart" preset: a 10-client federation with fully non-IID
    # label skew (Sim 0%) on synthetic MNIST, cross-silo config.
    for name, overrides in [
        ("fedavg", {"algorithm": "fedavg"}),
        ("rfedavg+", {}),
    ]:
        history, _ = repro.run_experiment("quickstart", seed=0, overrides=overrides)
        print(f"\n=== {name} ===")
        for round_idx, accuracy in history.accuracies():
            print(f"  round {int(round_idx):3d}  test accuracy {accuracy:.4f}")
        print(f"  total traffic: {history.total_bytes():,} bytes")
        print(f"  mean time per round: {1000 * history.mean_round_time():.1f} ms")


if __name__ == "__main__":
    main()
