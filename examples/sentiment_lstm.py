"""Federated sentiment analysis with the paper's LSTM on synth-Sent140.

Demonstrates the sequence-model path: Embedding -> 2-layer LSTM ->
FC feature layer (where the MMD regularizer acts) -> classifier, trained
with RMSProp exactly as the paper configures Sent140.  The federation is
*naturally* non-IID: one client per simulated Twitter user, each with
their own vocabulary and sentiment prior.

    python examples/sentiment_lstm.py
"""

from repro.algorithms import make_algorithm
from repro.data.stats import quantity_imbalance
from repro.experiments import build_sent140_federation, default_model_fn
from repro.fl import FLConfig, run_federated


def main() -> None:
    fed = build_sent140_federation(num_users=20, iid=False, seed=0)
    print(
        f"{fed.num_clients} users, "
        f"{fed.total_train_samples()} tweets, "
        f"quantity imbalance (cv): {quantity_imbalance(fed.client_sizes):.2f}"
    )

    config = FLConfig(
        rounds=10,
        local_steps=5,
        batch_size=10,
        sample_ratio=1.0,
        optimizer="rmsprop",
        lr=0.01,
        eval_every=2,
    )
    model_fn = default_model_fn("lstm", fed.spec, scale=0.15)

    for name, kwargs in [("fedavg", {}), ("rfedavg+", {"lam": 1e-2})]:
        algorithm = make_algorithm(name, **kwargs)
        history = run_federated(algorithm, fed, model_fn, config)
        print(f"\n=== {name} (LSTM + RMSProp) ===")
        for round_idx, accuracy in history.accuracies():
            print(f"  round {int(round_idx):3d}  test accuracy {accuracy:.4f}")


if __name__ == "__main__":
    main()
