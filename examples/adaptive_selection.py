"""Adaptive participant selection (the paper's future-work direction).

The conclusion proposes combining the regularized framework with
"adaptive participant selection".  This example contrasts uniform
sampling with loss-biased Power-of-Choice selection under rFedAvg+ on a
non-IID federation with partial participation.

    python examples/adaptive_selection.py
"""

from repro.algorithms import RFedAvgPlus
from repro.experiments import build_image_federation, cross_device_config, default_model_fn
from repro.fl import run_federated
from repro.fl.selection import PowerOfChoiceSelector, UniformSelector


def main() -> None:
    fed = build_image_federation(
        "synth_cifar", num_clients=30, similarity=0.0, num_train=2000, num_test=400
    )
    config = cross_device_config(rounds=40, lr=0.5, sample_ratio=0.2, eval_every=8)
    model_fn = default_model_fn("mlp", fed.spec, scale=1.0)

    strategies = [
        ("uniform", UniformSelector(config.sample_ratio)),
        ("power-of-choice", PowerOfChoiceSelector(config.sample_ratio, candidate_factor=3.0)),
    ]
    for label, selector in strategies:
        algorithm = RFedAvgPlus(lam=1e-3)
        history = run_federated(algorithm, fed, model_fn, config, selector=selector)
        print(f"\n=== rFedAvg+ with {label} selection ===")
        for round_idx, accuracy in history.accuracies():
            print(f"  round {int(round_idx):3d}  test accuracy {accuracy:.4f}")


if __name__ == "__main__":
    main()
