"""Asynchronous federated learning with heterogeneous client speeds.

Runs the paper's algorithms through the event-driven async engine
(``FLConfig(execution="async")``): every round's cohort is dispatched,
updates arrive on a simulated clock drawn from a per-client runtime
model, and the server aggregates as soon as ``buffer_size`` updates are
in hand — stale arrivals discounted by ``(1 + staleness)^-a``.  With
the discount the stragglers' stale updates are damped; without one
they drag the model around.

``buffer_size=1`` with a per-client runtime reproduces the classic
one-update-per-arrival FedAsync protocol through the engine, which also
composes with algorithms, checkpointing and tracing.

    python examples/async_federation.py
"""

from repro.algorithms import make_algorithm
from repro.experiments import build_image_federation, default_model_fn
from repro.fl.config import FLConfig
from repro.fl.runtime import GaussianRuntime
from repro.fl.trainer import run_federated


def main() -> None:
    fed = build_image_federation(
        "synth_mnist", num_clients=8, similarity=0.0, num_train=1600, num_test=400
    )
    model_fn = default_model_fn("mlp", fed.spec, scale=1.0)
    # Log-normal speed heterogeneity: a het=1.5 fleet spans roughly an
    # order of magnitude between its fastest and slowest clients.
    runtime = GaussianRuntime(fed.num_clients, std=0.1, heterogeneity=1.5, seed=0)
    print("client round times:", [round(t, 1) for t in runtime.base_times])

    for exponent in [0.0, 1.0]:
        config = FLConfig(
            rounds=15, local_steps=5, batch_size=32, lr=0.3, eval_every=5,
            execution="async", buffer_size=4, staleness_exponent=exponent,
        )
        history = run_federated(
            make_algorithm("rfedavg+", lam=1e-3), fed, model_fn, config,
            runtime=runtime,
        )
        async_history = history.async_history
        counts = async_history.client_update_counts(fed.num_clients)
        print(f"\n=== staleness exponent {exponent} ===")
        print(f"applied updates per client: {counts.tolist()}")
        print(f"max staleness seen: {async_history.max_staleness()}")
        print(f"mean staleness:     {async_history.mean_staleness():.2f}")
        print(f"left in flight:     {async_history.discarded_updates}")
        for round_idx, accuracy in history.accuracies():
            print(f"  round {int(round_idx):3d}  test accuracy {accuracy:.4f}")


if __name__ == "__main__":
    main()
