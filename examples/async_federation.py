"""Asynchronous federated learning with heterogeneous client speeds.

Contrasts the paper's synchronous rounds with FedAsync-style staleness-
weighted server updates when client speeds vary by an order of
magnitude.  With a staleness discount the stragglers' stale updates are
damped; without one they drag the model around.

    python examples/async_federation.py
"""

import numpy as np

from repro.experiments import build_image_federation, default_model_fn
from repro.fl.async_sim import AsyncConfig, run_async_federated


def main() -> None:
    fed = build_image_federation(
        "synth_mnist", num_clients=8, similarity=0.0, num_train=1600, num_test=400
    )
    model_fn = default_model_fn("mlp", fed.spec, scale=1.0)
    # Two fast clients, six slow ones (5-15x slower).
    rng = np.random.default_rng(0)
    speeds = np.concatenate([[1.0, 1.2], rng.uniform(5.0, 15.0, size=6)])
    print("client round times:", np.round(speeds, 1).tolist())

    for exponent in [0.0, 1.0]:
        config = AsyncConfig(
            max_updates=120, local_steps=5, batch_size=32, lr=0.3,
            alpha=0.6, staleness_exponent=exponent, eval_every=20,
        )
        history = run_async_federated(fed, model_fn, speeds, config)
        counts = history.client_update_counts(fed.num_clients)
        print(f"\n=== staleness exponent {exponent} ===")
        print(f"updates per client: {counts.tolist()}")
        print(f"max staleness seen: {int(history.staleness_values().max())}")
        for update_idx, accuracy in history.accuracies():
            print(f"  update {int(update_idx):4d}  test accuracy {accuracy:.4f}")


if __name__ == "__main__":
    main()
