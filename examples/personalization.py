"""Personalized federated learning (the paper's future-work direction).

Train a global model with rFedAvg+, then let every client fine-tune a
private copy on its own shard.  Prints per-client accuracy before and
after personalization plus the global-accuracy cost of adapting.

    python examples/personalization.py
"""

from repro.algorithms import RFedAvgPlus, personalize
from repro.experiments import build_femnist_federation, default_model_fn
from repro.fl import FLConfig, run_federated
from repro.fl.client import evaluate_model
from repro.nn.serialization import set_flat_params


def main() -> None:
    fed = build_femnist_federation(num_writers=12, samples_per_writer=25, seed=0)
    config = FLConfig(
        rounds=20, local_steps=5, batch_size=16, sample_ratio=1.0, lr=0.3, eval_every=5
    )
    model_fn = default_model_fn("mlp", fed.spec, scale=0.5)

    algorithm = RFedAvgPlus(lam=1e-3)
    history = run_federated(algorithm, fed, model_fn, config)
    model = model_fn()
    set_flat_params(model, algorithm.global_params)
    _loss, global_acc = evaluate_model(model, fed.test)
    print(f"global model test accuracy: {global_acc:.4f}\n")

    result = personalize(
        algorithm.global_params, fed, model_fn, finetune_steps=15, lr=0.1
    )
    print(f"{'writer':>6s} {'global@local':>13s} {'personalized':>13s}")
    for cid in range(fed.num_clients):
        print(
            f"{cid:6d} {result.global_local_accuracy[cid]:13.4f} "
            f"{result.personalized_local_accuracy[cid]:13.4f}"
        )
    print(f"\nmean personalization gain: {result.mean_personalization_gain():+.4f}")
    print(f"mean global-accuracy cost: {result.mean_forgetting(global_acc):+.4f}")


if __name__ == "__main__":
    main()
