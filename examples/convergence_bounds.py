"""Instantiating the paper's convergence bounds on real training.

Estimates the Theorem 1/2 constants (L, mu, G, H, tau) for a strongly
convex logistic model on a non-IID federation, runs rFedAvg+ with the
theory's inverse-decay learning-rate schedule, and prints the measured
optimality gap next to the theoretical envelope.

    python examples/convergence_bounds.py
"""

from repro.algorithms import RFedAvgPlus
from repro.analysis.convergence import (
    constant_c2,
    constant_c3,
    theorem1_bound,
    theory_schedule,
)
from repro.analysis.estimation import estimate_problem_constants
from repro.experiments import build_image_federation, default_model_fn
from repro.fl import FLConfig, run_federated


def main() -> None:
    fed = build_image_federation(
        "synth_mnist", num_clients=8, similarity=0.0, num_train=1600, num_test=400
    )
    model_fn = default_model_fn("logistic", fed.spec)

    lam = 1e-3
    constants = estimate_problem_constants(
        model_fn(), fed, local_steps=5, lam=lam
    )
    print("estimated constants:")
    print(f"  L   = {constants.smoothness:.3f}   mu  = {constants.strong_convexity:.4f}")
    print(f"  G   = {constants.grad_bound:.3f}   H   = {constants.phi_grad_bound:.3f}")
    print(f"  tau = {constants.diameter:.3f}   gamma = {constants.gamma:.1f}")
    print(f"  C2  = {constant_c2(constants):.1f}  <  C3 = {constant_c3(constants):.1f}"
          "   (rFedAvg+'s smaller constant, Thm. 1 vs Thm. 2)")

    config = FLConfig(
        rounds=40, local_steps=5, batch_size=64, sample_ratio=1.0,
        lr_schedule=theory_schedule(constants), eval_every=4,
    )
    history = run_federated(RFedAvgPlus(lam=lam), fed, model_fn, config)

    losses = history.test_losses()
    f_star = losses[:, 1].min()
    print("\nround   measured gap   Thm.1 envelope")
    for round_idx, loss in losses:
        t = int(round_idx) * config.local_steps
        bound = theorem1_bound(max(t, 1), constants, initial_gap=float(losses[0, 1]))
        print(f"{int(round_idx):5d}   {loss - f_star:12.4f}   {bound:14.4f}")


if __name__ == "__main__":
    main()
