"""Combining the distribution regularizer with upload compression.

The paper's related work surveys quantization / sparsification for
communication-efficient FL; this example shows they compose with
rFedAvg+ — the delta payloads are already tiny (Table III), and the
model uploads can be quantized on top for a ~4x total traffic cut with
almost no accuracy loss.

    python examples/compressed_uploads.py
"""

from repro.algorithms import RFedAvgPlus
from repro.experiments import build_image_federation, cross_silo_config, default_model_fn
from repro.fl import run_federated
from repro.fl.compression import TopKSparsifier, UniformQuantizer


def main() -> None:
    fed = build_image_federation(
        "synth_cifar", num_clients=10, similarity=0.0, num_train=2000, num_test=400
    )
    config = cross_silo_config(rounds=40, batch_size=32, lr=0.5, eval_every=8)
    model_fn = default_model_fn("mlp", fed.spec, scale=1.0)

    variants = [
        ("dense uploads", None),
        ("8-bit quantized", UniformQuantizer(8)),
        ("top-10% sparsified", TopKSparsifier(0.10)),
    ]
    print(f"{'variant':22s} {'accuracy':>9s} {'uplink bytes':>14s}")
    for label, compressor in variants:
        algorithm = RFedAvgPlus(lam=1e-3)
        if compressor is not None:
            algorithm = algorithm.with_compressor(compressor)
        history = run_federated(algorithm, fed, model_fn, config)
        uplink = algorithm.ledger.total("up:model")
        print(f"{label:22s} {history.tail_mean_accuracy(3):9.4f} {uplink:14,}")


if __name__ == "__main__":
    main()
