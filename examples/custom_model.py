"""Plugging a custom architecture into the federated runtime.

Any network expressed as a feature extractor + head SplitModel can be
trained with every algorithm in the library — this example builds a
custom CNN variant (extra conv block, LeakyReLU, dropout) from raw
``repro.nn`` layers and runs it under rFedAvg+ on synth-FEMNIST.

    python examples/custom_model.py
"""

import numpy as np

from repro import nn
from repro.algorithms import make_algorithm
from repro.experiments import build_femnist_federation
from repro.fl import FLConfig, run_federated
from repro.models import SplitModel


def build_custom_cnn(seed: int) -> SplitModel:
    """3-block CNN with 48-d features for 12x12 grayscale glyphs."""
    rng = np.random.default_rng(seed)
    features = nn.Sequential(
        nn.Conv2d(1, 8, 3, padding=1, rng=rng),
        nn.LeakyReLU(0.1),
        nn.MaxPool2d(2),  # 12 -> 6
        nn.Conv2d(8, 16, 3, padding=1, rng=rng),
        nn.LeakyReLU(0.1),
        nn.MaxPool2d(2),  # 6 -> 3
        nn.Flatten(),
        nn.Dropout(0.1, seed=seed),
        nn.Linear(16 * 3 * 3, 48, rng=rng),
        nn.ReLU(),
    )
    head = nn.Linear(48, 10, rng=rng)
    return SplitModel(features, head, feature_dim=48)


def main() -> None:
    fed = build_femnist_federation(num_writers=20, samples_per_writer=25, seed=0)
    config = FLConfig(
        rounds=15, local_steps=5, batch_size=16, sample_ratio=0.5, lr=0.1, eval_every=3
    )
    algorithm = make_algorithm("rfedavg+", lam=1e-3)
    history = run_federated(algorithm, fed, lambda: build_custom_cnn(0), config)
    print("custom CNN on synth-FEMNIST (20 writers, SR=0.5):")
    for round_idx, accuracy in history.accuracies():
        print(f"  round {int(round_idx):3d}  test accuracy {accuracy:.4f}")


if __name__ == "__main__":
    main()
