"""rFedAvg (Algorithm 1) tests."""

import numpy as np

from repro.algorithms import RFedAvg
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated
from repro.models import build_mlp


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def test_round_zero_has_no_regularizer(toy_federation):
    """Before any delta is reported, the regularizer must stay off."""
    config = FLConfig(rounds=1, local_steps=2, batch_size=8, lr=0.1, seed=1)
    alg = RFedAvg(lam=10.0)  # huge lambda would wreck the run if active
    history = run_federated(alg, toy_federation, _model_fn(toy_federation), config)
    assert history.records[0].reg_loss == 0.0


def test_regularizer_activates_after_first_round(toy_federation):
    config = FLConfig(rounds=3, local_steps=2, batch_size=8, lr=0.1, seed=1)
    alg = RFedAvg(lam=1.0)
    history = run_federated(alg, toy_federation, _model_fn(toy_federation), config)
    assert history.records[0].reg_loss == 0.0
    assert history.records[1].reg_loss > 0.0


def test_delta_table_filled_by_selected_clients(toy_federation):
    config = FLConfig(rounds=1, local_steps=2, batch_size=8, lr=0.1, sample_ratio=0.5, seed=1)
    alg = RFedAvg(lam=1e-3)
    run_federated(alg, toy_federation, _model_fn(toy_federation), config)
    assert alg.delta_table.reported_mask.sum() == 2  # only the selected half


def test_deltas_computed_with_local_models_are_inconsistent(toy_federation):
    """rFedAvg's deltas come from divergent local models, so the table
    scatter (delta inconsistency) is positive — the drawback the paper's
    Remarks call out."""
    config = FLConfig(rounds=2, local_steps=5, batch_size=8, lr=0.2, seed=0)
    alg = RFedAvg(lam=1e-3)
    run_federated(alg, toy_federation, _model_fn(toy_federation), config)
    assert alg.delta_table.delta_inconsistency() > 0.0


def test_broadcast_cost_scales_with_n_squared(toy_federation, fast_config):
    """Downlink delta traffic per round is N * (N * d) after round 0."""
    alg = RFedAvg(lam=1e-3)
    run_federated(alg, toy_federation, _model_fn(toy_federation), fast_config)
    n = toy_federation.num_clients
    d = alg.model.feature_dim
    per_round = n * n * d * fast_config.wire_bytes_per_scalar()
    # Rounds 1..R-1 broadcast the table (round 0 has nothing to send).
    expected = (fast_config.rounds - 1) * per_round
    assert alg.ledger.total("down:delta") == expected


def test_upload_includes_own_delta(toy_federation, fast_config):
    alg = RFedAvg(lam=1e-3)
    run_federated(alg, toy_federation, _model_fn(toy_federation), fast_config)
    n = toy_federation.num_clients
    d = alg.model.feature_dim
    expected = fast_config.rounds * n * d * fast_config.wire_bytes_per_scalar()
    assert alg.ledger.total("up:delta") == expected


def test_learns_on_iid(iid_federation):
    config = FLConfig(rounds=20, local_steps=4, batch_size=16, lr=0.3, eval_every=5, seed=0)
    history = run_federated(
        RFedAvg(lam=1e-4), iid_federation, _model_fn(iid_federation), config
    )
    assert history.final_accuracy > 0.5
