"""FedProx tests."""

import numpy as np
import pytest

from repro.algorithms import FedAvg, FedProx
from repro.exceptions import ConfigError
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated
from repro.models import build_mlp
from repro.nn.serialization import get_flat_params


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def test_mu_zero_equals_fedavg(toy_federation, fast_config):
    hist_prox = run_federated(
        FedProx(mu=0.0), toy_federation, _model_fn(toy_federation), fast_config
    )
    hist_avg = run_federated(
        FedAvg(), toy_federation, _model_fn(toy_federation), fast_config
    )
    np.testing.assert_array_equal(hist_prox.train_losses(), hist_avg.train_losses())
    assert hist_prox.final_accuracy == hist_avg.final_accuracy


def test_large_mu_keeps_model_near_global(toy_federation):
    """The proximal term shrinks the distance travelled in one round."""
    config = FLConfig(rounds=1, local_steps=10, batch_size=8, lr=0.1, seed=4)
    model_fn = _model_fn(toy_federation)
    start = get_flat_params(model_fn())

    alg_free = FedProx(mu=0.0)
    run_federated(alg_free, toy_federation, model_fn, config)
    dist_free = np.linalg.norm(alg_free.global_params - start)

    # Keep lr * mu < 2 or the proximal update itself oscillates.
    alg_tight = FedProx(mu=8.0)
    run_federated(alg_tight, toy_federation, model_fn, config)
    dist_tight = np.linalg.norm(alg_tight.global_params - start)

    assert dist_tight < 0.7 * dist_free


def test_negative_mu_rejected():
    with pytest.raises(ConfigError):
        FedProx(mu=-0.1)


def test_moderate_mu_still_learns(iid_federation):
    config = FLConfig(rounds=20, local_steps=4, batch_size=16, lr=0.3, eval_every=5, seed=0)
    history = run_federated(
        FedProx(mu=0.01), iid_federation, _model_fn(iid_federation), config
    )
    assert history.final_accuracy > 0.5
