"""Cross-algorithm equivalence and ablation tests."""

import numpy as np
import pytest

from repro.algorithms import (
    ALGORITHMS,
    FedAvg,
    RFedAvg,
    RFedAvgExact,
    RFedAvgPlus,
    make_algorithm,
)
from repro.core.privacy import GaussianDeltaMechanism
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated
from repro.models import build_mlp


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def test_registry_contains_all_paper_methods():
    for name in ["fedavg", "fedprox", "scaffold", "qfedavg", "rfedavg", "rfedavg+"]:
        assert name in ALGORITHMS


def test_make_algorithm_unknown_name():
    with pytest.raises(KeyError):
        make_algorithm("fancy-new-method")


def test_make_algorithm_passes_kwargs():
    alg = make_algorithm("rfedavg+", lam=0.123)
    assert alg.lam == 0.123


@pytest.mark.parametrize("cls", [RFedAvg, RFedAvgPlus])
def test_lambda_zero_matches_fedavg_trajectory(toy_federation, fast_config, cls):
    """With lambda = 0 the regularized algorithms follow FedAvg's exact
    parameter trajectory (zero gradient injection, same batch rngs)."""
    reg_alg = cls(lam=0.0)
    run_federated(reg_alg, toy_federation, _model_fn(toy_federation), fast_config)
    avg = FedAvg()
    run_federated(avg, toy_federation, _model_fn(toy_federation), fast_config)
    np.testing.assert_allclose(reg_alg.global_params, avg.global_params, atol=1e-12)


def test_exact_variant_tracks_plus_variant(toy_federation):
    """The delayed mapping of rFedAvg+ should land near the exact
    (up-to-date mapping) reference in parameter space."""
    config = FLConfig(rounds=4, local_steps=3, batch_size=8, lr=0.1, seed=5)
    plus = RFedAvgPlus(lam=1e-3)
    run_federated(plus, toy_federation, _model_fn(toy_federation), config)
    exact = RFedAvgExact(lam=1e-3)
    run_federated(exact, toy_federation, _model_fn(toy_federation), config)
    gap = np.linalg.norm(plus.global_params - exact.global_params)
    scale = np.linalg.norm(exact.global_params)
    assert gap < 0.05 * scale


def test_exact_variant_charges_per_step_pairwise_traffic(toy_federation, fast_config):
    exact = RFedAvgExact(lam=1e-3)
    run_federated(exact, toy_federation, _model_fn(toy_federation), fast_config)
    plus = RFedAvgPlus(lam=1e-3)
    run_federated(plus, toy_federation, _model_fn(toy_federation), fast_config)
    assert exact.ledger.total("up:delta") > 5 * plus.ledger.total("up:delta")


def test_privacy_noise_perturbs_but_does_not_break(toy_federation, fast_config):
    noisy = RFedAvgPlus(lam=1e-3, privacy=GaussianDeltaMechanism(sigma=1.0, seed=0))
    hist_noisy = run_federated(noisy, toy_federation, _model_fn(toy_federation), fast_config)
    clean = RFedAvgPlus(lam=1e-3)
    hist_clean = run_federated(clean, toy_federation, _model_fn(toy_federation), fast_config)
    assert np.isfinite(hist_noisy.final_accuracy)
    # Deltas differ because of the noise.
    assert not np.allclose(
        noisy.delta_table.full_table(), clean.delta_table.full_table()
    )


def test_huge_privacy_noise_hurts_more_than_small(toy_federation):
    """Monotone degradation hook: enormous noise must move the model
    further from the noiseless trajectory than small noise."""
    config = FLConfig(rounds=4, local_steps=3, batch_size=8, lr=0.1, seed=7)
    clean = RFedAvgPlus(lam=0.5)
    run_federated(clean, toy_federation, _model_fn(toy_federation), config)
    small = RFedAvgPlus(lam=0.5, privacy=GaussianDeltaMechanism(sigma=0.1, seed=1))
    run_federated(small, toy_federation, _model_fn(toy_federation), config)
    huge = RFedAvgPlus(lam=0.5, privacy=GaussianDeltaMechanism(sigma=500.0, seed=1))
    run_federated(huge, toy_federation, _model_fn(toy_federation), config)
    gap_small = np.linalg.norm(small.global_params - clean.global_params)
    gap_huge = np.linalg.norm(huge.global_params - clean.global_params)
    assert gap_huge > gap_small
