"""FedNova and FedAvgM tests."""

import numpy as np
import pytest

from repro.algorithms import FedAvg, FedAvgM, FedNova, make_algorithm
from repro.exceptions import ConfigError
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated
from repro.models import build_mlp


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def test_registry_has_new_methods():
    assert isinstance(make_algorithm("fednova"), FedNova)
    assert isinstance(make_algorithm("fedavgm"), FedAvgM)


def test_fednova_homogeneous_steps_equals_fedavg(toy_federation, fast_config):
    """With uniform tau_k, normalized averaging reduces to FedAvg's
    weighted average of the y_k exactly."""
    nova = FedNova()
    run_federated(nova, toy_federation, _model_fn(toy_federation), fast_config)
    avg = FedAvg()
    run_federated(avg, toy_federation, _model_fn(toy_federation), fast_config)
    np.testing.assert_allclose(nova.global_params, avg.global_params, atol=1e-10)


def test_fednova_heterogeneous_steps_run(toy_federation):
    config = FLConfig(rounds=3, local_steps=4, batch_size=8, lr=0.1, seed=1)
    nova = FedNova(local_steps_fn=lambda rnd, cid: 1 + cid)  # stragglers
    history = run_federated(nova, toy_federation, _model_fn(toy_federation), config)
    assert np.isfinite(history.final_accuracy)
    assert len(history.records) == 3


def test_fednova_heterogeneous_differs_from_fedavg(toy_federation, fast_config):
    nova = FedNova(local_steps_fn=lambda rnd, cid: 1 + 2 * cid)
    run_federated(nova, toy_federation, _model_fn(toy_federation), fast_config)
    avg = FedAvg()
    run_federated(avg, toy_federation, _model_fn(toy_federation), fast_config)
    assert not np.allclose(nova.global_params, avg.global_params)


def test_fednova_learns(iid_federation):
    config = FLConfig(rounds=20, local_steps=4, batch_size=16, lr=0.3, eval_every=5, seed=0)
    history = run_federated(
        FedNova(), iid_federation, _model_fn(iid_federation), config
    )
    assert history.final_accuracy > 0.5


def test_fedavgm_validation():
    with pytest.raises(ConfigError):
        FedAvgM(server_momentum=1.0)
    with pytest.raises(ConfigError):
        FedAvgM(server_lr=0.0)


def test_fedavgm_zero_momentum_equals_fedavg(toy_federation, fast_config):
    momentum = FedAvgM(server_momentum=0.0, server_lr=1.0)
    run_federated(momentum, toy_federation, _model_fn(toy_federation), fast_config)
    avg = FedAvg()
    run_federated(avg, toy_federation, _model_fn(toy_federation), fast_config)
    np.testing.assert_allclose(momentum.global_params, avg.global_params, atol=1e-12)


def test_fedavgm_momentum_accumulates_velocity(toy_federation, fast_config):
    alg = FedAvgM(server_momentum=0.9)
    run_federated(alg, toy_federation, _model_fn(toy_federation), fast_config)
    assert np.linalg.norm(alg._velocity) > 0


def test_fedavgm_learns(iid_federation):
    config = FLConfig(rounds=20, local_steps=4, batch_size=16, lr=0.2, eval_every=5, seed=0)
    history = run_federated(
        FedAvgM(server_momentum=0.5), iid_federation, _model_fn(iid_federation), config
    )
    assert history.final_accuracy > 0.5
