"""MOON (model-contrastive FL) tests."""

import numpy as np
import pytest

from repro.algorithms import FedAvg, Moon, make_algorithm
from repro.algorithms.moon import _cosine_and_grad, contrastive_loss_and_grad
from repro.exceptions import ConfigError
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated
from repro.models import build_mlp


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def test_validation():
    with pytest.raises(ConfigError):
        Moon(mu=-1.0)
    with pytest.raises(ConfigError):
        Moon(temperature=0.0)


def test_registry():
    assert isinstance(make_algorithm("moon", mu=2.0), Moon)


def test_cosine_and_grad_matches_numpy(rng):
    z = rng.normal(size=(4, 6))
    anchor = rng.normal(size=(4, 6))
    cos, _grad = _cosine_and_grad(z, anchor)
    for i in range(4):
        expected = z[i] @ anchor[i] / (np.linalg.norm(z[i]) * np.linalg.norm(anchor[i]))
        assert cos[i] == pytest.approx(expected, rel=1e-9)


def test_cosine_grad_finite_difference(rng):
    z = rng.normal(size=(3, 5))
    anchor = rng.normal(size=(3, 5))
    _cos, grad = _cosine_and_grad(z, anchor)
    eps = 1e-7
    for i in range(3):
        for j in range(5):
            zp = z.copy()
            zp[i, j] += eps
            cos_p, _ = _cosine_and_grad(zp, anchor)
            zm = z.copy()
            zm[i, j] -= eps
            cos_m, _ = _cosine_and_grad(zm, anchor)
            fd = (cos_p[i] - cos_m[i]) / (2 * eps)
            assert fd == pytest.approx(grad[i, j], abs=1e-6)


def test_contrastive_loss_prefers_global_alignment(rng):
    """Loss is low when z ~ z_global and high when z ~ z_prev."""
    z_global = rng.normal(size=(8, 6))
    z_prev = rng.normal(size=(8, 6))
    aligned_loss, _ = contrastive_loss_and_grad(
        z_global + 0.01 * rng.normal(size=(8, 6)), z_global, z_prev, 0.5, 1.0
    )
    misaligned_loss, _ = contrastive_loss_and_grad(
        z_prev + 0.01 * rng.normal(size=(8, 6)), z_global, z_prev, 0.5, 1.0
    )
    assert aligned_loss < misaligned_loss


def test_contrastive_grad_finite_difference(rng):
    z = rng.normal(size=(4, 5))
    z_global = rng.normal(size=(4, 5))
    z_prev = rng.normal(size=(4, 5))
    _loss, grad = contrastive_loss_and_grad(z, z_global, z_prev, 0.5, 1.5)
    eps = 1e-7
    for i in range(4):
        for j in range(5):
            zp = z.copy()
            zp[i, j] += eps
            lp, _ = contrastive_loss_and_grad(zp, z_global, z_prev, 0.5, 1.5)
            zm = z.copy()
            zm[i, j] -= eps
            lm, _ = contrastive_loss_and_grad(zm, z_global, z_prev, 0.5, 1.5)
            fd = (lp - lm) / (2 * eps)
            assert fd == pytest.approx(grad[i, j], abs=1e-6)


def test_mu_zero_equals_fedavg(toy_federation, fast_config):
    moon = Moon(mu=0.0)
    run_federated(moon, toy_federation, _model_fn(toy_federation), fast_config)
    avg = FedAvg()
    run_federated(avg, toy_federation, _model_fn(toy_federation), fast_config)
    np.testing.assert_allclose(moon.global_params, avg.global_params, atol=1e-12)


def test_moon_tracks_previous_local_models(toy_federation, fast_config):
    moon = Moon(mu=1.0)
    run_federated(moon, toy_federation, _model_fn(toy_federation), fast_config)
    # After training, each client's stored previous model differs from
    # the initial model and from the global model.
    start = _model_fn(toy_federation)()
    from repro.nn.serialization import get_flat_params

    initial = get_flat_params(start)
    for cid in range(toy_federation.num_clients):
        assert not np.allclose(moon._prev_params[cid], initial)


def test_moon_reports_contrastive_loss(toy_federation):
    config = FLConfig(rounds=3, local_steps=2, batch_size=8, lr=0.1, seed=1)
    moon = Moon(mu=2.0)
    history = run_federated(moon, toy_federation, _model_fn(toy_federation), config)
    # The contrastive term is reported through the reg_loss channel.
    assert any(r.reg_loss > 0 for r in history.records)


def test_moon_learns_on_iid(iid_federation):
    config = FLConfig(rounds=20, local_steps=4, batch_size=16, lr=0.3, eval_every=5, seed=0)
    history = run_federated(
        Moon(mu=1.0), iid_federation, _model_fn(iid_federation), config
    )
    assert history.final_accuracy > 0.45
