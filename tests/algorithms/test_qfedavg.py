"""q-FedAvg tests."""

import numpy as np
import pytest

from repro.algorithms import QFedAvg
from repro.exceptions import ConfigError
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated
from repro.models import build_mlp


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def test_negative_q_rejected():
    with pytest.raises(ConfigError):
        QFedAvg(q=-1.0)


def test_qfedavg_learns_on_iid(iid_federation):
    config = FLConfig(rounds=25, local_steps=4, batch_size=16, lr=0.3, eval_every=5, seed=0)
    history = run_federated(QFedAvg(q=1.0), iid_federation, _model_fn(iid_federation), config)
    assert history.final_accuracy > 0.45


def test_tiny_q_close_to_unweighted_direction(toy_federation):
    """With q -> 0 the update direction approaches the plain average of
    client deltas (magnitudes may differ slightly through h_k)."""
    config = FLConfig(rounds=1, local_steps=2, batch_size=8, lr=0.1, seed=6)
    model_fn = _model_fn(toy_federation)
    from repro.nn.serialization import get_flat_params

    start = get_flat_params(model_fn())
    alg_a = QFedAvg(q=1e-8)
    run_federated(alg_a, toy_federation, model_fn, config)
    alg_b = QFedAvg(q=1e-6)
    run_federated(alg_b, toy_federation, model_fn, config)
    step_a = alg_a.global_params - start
    step_b = alg_b.global_params - start
    cos = step_a @ step_b / (np.linalg.norm(step_a) * np.linalg.norm(step_b))
    assert cos > 0.9999


def test_update_moves_toward_clients(toy_federation):
    config = FLConfig(rounds=1, local_steps=3, batch_size=8, lr=0.1, seed=2)
    model_fn = _model_fn(toy_federation)
    from repro.nn.serialization import get_flat_params

    start = get_flat_params(model_fn())
    alg = QFedAvg(q=1.0)
    run_federated(alg, toy_federation, model_fn, config)
    assert np.linalg.norm(alg.global_params - start) > 0
    assert np.all(np.isfinite(alg.global_params))


def test_comm_includes_scalar_losses(toy_federation, fast_config):
    alg = QFedAvg(q=1.0)
    run_federated(alg, toy_federation, _model_fn(toy_federation), fast_config)
    assert alg.ledger.total("up:scalar") > 0
    assert alg.ledger.total("up:model") == alg.ledger.total("down:model")
