"""rFedAvg+ (Algorithm 2) tests."""

import numpy as np

from repro.algorithms import RFedAvg, RFedAvgPlus
from repro.fl.client import compute_mean_embedding
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated
from repro.models import build_mlp
from repro.nn.serialization import set_flat_params


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def test_deltas_come_from_the_global_model(toy_federation):
    """After a round, every reported delta must equal the mean embedding
    of that client under the *aggregated global* model (the double
    synchronization) — not under the client's local model."""
    config = FLConfig(rounds=1, local_steps=3, batch_size=8, lr=0.1, seed=2)
    alg = RFedAvgPlus(lam=1e-3)
    run_federated(alg, toy_federation, _model_fn(toy_federation), config)
    model = _model_fn(toy_federation)()
    set_flat_params(model, alg.global_params)
    for cid, shard in enumerate(toy_federation.clients):
        expected = compute_mean_embedding(model, shard, config.eval_batch)
        np.testing.assert_allclose(alg.delta_table.get(cid), expected)


def test_consistent_deltas_have_lower_scatter_than_rfedavg(toy_federation):
    """The point of the double sync: delta inconsistency attributable to
    model divergence disappears (deltas still differ due to data)."""
    config = FLConfig(rounds=3, local_steps=8, batch_size=8, lr=0.3, seed=0)
    plus = RFedAvgPlus(lam=1e-3)
    run_federated(plus, toy_federation, _model_fn(toy_federation), config)
    plain = RFedAvg(lam=1e-3)
    run_federated(plain, toy_federation, _model_fn(toy_federation), config)
    # Measure *model-induced* scatter: recompute both tables' deltas and
    # compare to what a consistent global model would produce.
    model = _model_fn(toy_federation)()
    set_flat_params(model, plain.global_params)
    consistent = np.stack(
        [compute_mean_embedding(model, s) for s in toy_federation.clients]
    )
    drift_plain = np.linalg.norm(plain.delta_table.full_table() - consistent)
    set_flat_params(model, plus.global_params)
    consistent_plus = np.stack(
        [compute_mean_embedding(model, s) for s in toy_federation.clients]
    )
    drift_plus = np.linalg.norm(plus.delta_table.full_table() - consistent_plus)
    assert drift_plus < 1e-9  # exactly consistent by construction
    assert drift_plain > drift_plus


def test_broadcast_cost_scales_linearly_in_n(toy_federation, fast_config):
    """Downlink delta traffic per round is N * d (not N^2 * d)."""
    alg = RFedAvgPlus(lam=1e-3)
    run_federated(alg, toy_federation, _model_fn(toy_federation), fast_config)
    n = toy_federation.num_clients
    d = alg.model.feature_dim
    expected = (fast_config.rounds - 1) * n * d * fast_config.wire_bytes_per_scalar()
    assert alg.ledger.total("down:delta") == expected


def test_delta_traffic_smaller_than_rfedavg(toy_federation, fast_config):
    plus = RFedAvgPlus(lam=1e-3)
    run_federated(plus, toy_federation, _model_fn(toy_federation), fast_config)
    plain = RFedAvg(lam=1e-3)
    run_federated(plain, toy_federation, _model_fn(toy_federation), fast_config)
    n = toy_federation.num_clients
    assert plain.ledger.total("down:delta") == n * plus.ledger.total("down:delta")


def test_double_sync_costs_second_model_broadcast(toy_federation, fast_config):
    plus = RFedAvgPlus(lam=1e-3)
    run_federated(plus, toy_federation, _model_fn(toy_federation), fast_config)
    from repro.algorithms import FedAvg

    avg = FedAvg()
    run_federated(avg, toy_federation, _model_fn(toy_federation), fast_config)
    assert plus.ledger.total("down:model") == 2 * avg.ledger.total("down:model")


def test_round_zero_regularizer_off(toy_federation):
    config = FLConfig(rounds=2, local_steps=2, batch_size=8, lr=0.1, seed=1)
    alg = RFedAvgPlus(lam=5.0)
    history = run_federated(alg, toy_federation, _model_fn(toy_federation), config)
    assert history.records[0].reg_loss == 0.0
    assert history.records[1].reg_loss > 0.0


def test_partial_participation_updates_selected_only(toy_federation):
    config = FLConfig(rounds=1, local_steps=2, batch_size=8, lr=0.1, sample_ratio=0.5, seed=1)
    alg = RFedAvgPlus(lam=1e-3)
    run_federated(alg, toy_federation, _model_fn(toy_federation), config)
    assert alg.delta_table.reported_mask.sum() == 2


def test_learns_on_iid(iid_federation):
    config = FLConfig(rounds=20, local_steps=4, batch_size=16, lr=0.3, eval_every=5, seed=0)
    history = run_federated(
        RFedAvgPlus(lam=1e-4), iid_federation, _model_fn(iid_federation), config
    )
    assert history.final_accuracy > 0.5
