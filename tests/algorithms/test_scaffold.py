"""SCAFFOLD tests."""

import numpy as np
import pytest

from repro.algorithms import Scaffold
from repro.exceptions import ConfigError
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated
from repro.models import build_mlp


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def test_invalid_eta_g():
    with pytest.raises(ConfigError):
        Scaffold(eta_g=0.0)


def test_controls_initialized_zero_and_updated(toy_federation, fast_config):
    alg = Scaffold()
    run_federated(alg, toy_federation, _model_fn(toy_federation), fast_config)
    # After full-participation rounds every client control moved.
    norms = np.linalg.norm(alg.client_controls, axis=1)
    assert np.all(norms > 0)
    assert np.linalg.norm(alg.server_control) > 0


def test_server_control_is_participation_weighted_mean(toy_federation):
    """After one full-participation round, c = mean of client controls."""
    config = FLConfig(rounds=1, local_steps=2, batch_size=8, lr=0.1, seed=1)
    alg = Scaffold()
    run_federated(alg, toy_federation, _model_fn(toy_federation), config)
    np.testing.assert_allclose(
        alg.server_control, alg.client_controls.mean(axis=0), atol=1e-12
    )


def test_partial_participation_leaves_others_untouched(toy_federation):
    config = FLConfig(rounds=1, local_steps=2, batch_size=8, lr=0.1, sample_ratio=0.5, seed=1)
    alg = Scaffold()
    run_federated(alg, toy_federation, _model_fn(toy_federation), config)
    norms = np.linalg.norm(alg.client_controls, axis=1)
    assert (norms == 0).sum() == 2  # 2 of 4 clients never selected
    assert (norms > 0).sum() == 2


def test_comm_doubles_relative_to_fedavg(toy_federation, fast_config):
    alg = Scaffold()
    run_federated(alg, toy_federation, _model_fn(toy_federation), fast_config)
    model_bytes = alg.ledger.total("down:model")
    control_bytes = alg.ledger.total("down:control")
    assert control_bytes == model_bytes
    assert alg.ledger.total("up:control") == alg.ledger.total("up:model")


def test_scaffold_learns_on_iid(iid_federation):
    config = FLConfig(rounds=20, local_steps=4, batch_size=16, lr=0.3, eval_every=5, seed=0)
    history = run_federated(Scaffold(), iid_federation, _model_fn(iid_federation), config)
    assert history.final_accuracy > 0.5


def test_eta_g_scales_server_step(toy_federation):
    config = FLConfig(rounds=1, local_steps=2, batch_size=8, lr=0.05, seed=3)
    model_fn = _model_fn(toy_federation)
    from repro.nn.serialization import get_flat_params

    start = get_flat_params(model_fn())
    alg_small = Scaffold(eta_g=0.5)
    run_federated(alg_small, toy_federation, model_fn, config)
    alg_big = Scaffold(eta_g=1.0)
    run_federated(alg_big, toy_federation, model_fn, config)
    step_small = np.linalg.norm(alg_small.global_params - start)
    step_big = np.linalg.norm(alg_big.global_params - start)
    assert step_big == pytest.approx(2 * step_small, rel=1e-9)
