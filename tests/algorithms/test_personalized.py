"""Personalization (local fine-tuning) tests."""

import numpy as np

from repro.algorithms import FedAvg, personalize
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated
from repro.models import build_mlp


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def _trained_global(fed, rounds=10):
    config = FLConfig(rounds=rounds, local_steps=3, batch_size=16, lr=0.3, eval_every=10, seed=0)
    alg = FedAvg()
    run_federated(alg, fed, _model_fn(fed), config)
    return alg.global_params


def test_personalization_improves_local_accuracy():
    """Fine-tuning must raise local accuracy when the shared model has
    headroom.  A capacity-limited model (2-d features) cannot serve four
    heterogeneous shards at once, so adapting it locally gains a lot —
    the scenario the paper's future-work section targets."""
    from tests.conftest import make_toy_federation

    fed = make_toy_federation(similarity=0.5)

    def weak_fn():
        return build_mlp(
            fed.spec.flat_dim, fed.spec.num_classes,
            np.random.default_rng(0), (4,), feature_dim=2,
        )

    config = FLConfig(rounds=3, local_steps=3, batch_size=16, lr=0.2, eval_every=3, seed=0)
    alg = FedAvg()
    run_federated(alg, fed, weak_fn, config)
    result = personalize(alg.global_params, fed, weak_fn, finetune_steps=30, lr=0.2)
    assert result.mean_personalization_gain() > 0.05
    assert result.personalized_local_accuracy.shape == (fed.num_clients,)


def test_personalization_costs_global_accuracy_on_noniid(toy_federation):
    """The flip side: a model personalized to a 1-class shard forgets
    the other classes."""
    global_params = _trained_global(toy_federation)
    result = personalize(
        global_params, toy_federation, _model_fn(toy_federation),
        finetune_steps=30, lr=0.2,
    )
    from repro.fl.client import evaluate_model
    from repro.nn.serialization import set_flat_params

    model = _model_fn(toy_federation)()
    set_flat_params(model, global_params)
    _loss, global_acc = evaluate_model(model, toy_federation.test)
    assert result.mean_forgetting(global_acc) > -0.05  # rarely improves


def test_head_only_personalization_changes_head_not_features(toy_federation):
    global_params = _trained_global(toy_federation, rounds=2)
    result = personalize(
        global_params, toy_federation, _model_fn(toy_federation),
        finetune_steps=10, lr=0.1, head_only=True,
    )
    assert np.all(np.isfinite(result.personalized_local_accuracy))
    # Local accuracy should still move (head adapts).
    assert not np.allclose(
        result.personalized_local_accuracy, result.global_local_accuracy
    )


def test_personalization_deterministic(toy_federation):
    global_params = _trained_global(toy_federation)
    a = personalize(global_params, toy_federation, _model_fn(toy_federation), seed=5)
    b = personalize(global_params, toy_federation, _model_fn(toy_federation), seed=5)
    np.testing.assert_array_equal(
        a.personalized_local_accuracy, b.personalized_local_accuracy
    )
