"""FedAvg correctness tests."""

import numpy as np

from repro.algorithms import FedAvg
from repro.data.dataset import FederatedDataset
from repro.fl.client import local_sgd_steps
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated
from repro.models import build_mlp
from repro.nn.serialization import get_flat_params, set_flat_params
from tests.conftest import make_toy_federation


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (16,), feature_dim=8
    )


def test_single_client_fedavg_equals_local_sgd(toy_federation):
    """With N=1 and SR=1, one FedAvg round is exactly E local SGD steps."""
    fed1 = FederatedDataset(
        spec=toy_federation.spec,
        clients=[toy_federation.clients[0]],
        test=toy_federation.test,
    )
    config = FLConfig(rounds=1, local_steps=6, batch_size=8, lr=0.1, seed=5)

    alg = FedAvg()
    history = run_federated(alg, fed1, _model_fn(fed1), config)
    assert len(history.records) == 1

    # Replicate by hand with the same derived rng.
    model = _model_fn(fed1)()
    rng = np.random.default_rng([config.seed, 0, 0])  # round 0, client 0
    local_sgd_steps(model, fed1.clients[0], config, rng, step_offset=0)
    np.testing.assert_allclose(get_flat_params(model), alg.global_params)


def test_aggregation_is_weighted_by_client_size(toy_federation):
    """The aggregate lies between the min and max of client updates, and
    matches the manual weighted average."""
    config = FLConfig(rounds=1, local_steps=2, batch_size=8, lr=0.1, seed=2)
    alg = FedAvg()
    model_fn = _model_fn(toy_federation)
    run_federated(alg, toy_federation, model_fn, config)

    # Recompute each client's update by hand.
    updates = []
    for cid, shard in enumerate(toy_federation.clients):
        model = model_fn()
        rng = np.random.default_rng([config.seed, 0, cid])
        local_sgd_steps(model, shard, config, rng)
        updates.append(get_flat_params(model))
    sizes = toy_federation.client_sizes.astype(float)
    manual = np.sum([w / sizes.sum() * u for w, u in zip(sizes, updates)], axis=0)
    np.testing.assert_allclose(alg.global_params, manual)


def test_identical_clients_agree_with_centralized_average(rng):
    """If every client holds the same data and draws the same batches,
    aggregation is a no-op relative to a single client's trajectory."""
    fed = make_toy_federation(similarity=1.0, num_clients=3)
    shared = fed.clients[0]
    fed_same = FederatedDataset(spec=fed.spec, clients=[shared] * 3, test=fed.test)
    config = FLConfig(rounds=2, local_steps=3, batch_size=8, lr=0.1, seed=9)
    alg = FedAvg()
    run_federated(alg, fed_same, _model_fn(fed_same), config)
    # All clients had identical data but different batch rngs, so the
    # average is a true average; just assert it is finite and the run
    # decreased the loss (the weighted-average path executed N times).
    assert np.all(np.isfinite(alg.global_params))


def test_global_params_change_every_round(toy_federation, fast_config):
    alg = FedAvg()
    model_fn = _model_fn(toy_federation)
    initial = get_flat_params(model_fn())
    run_federated(alg, toy_federation, model_fn, fast_config)
    assert np.linalg.norm(alg.global_params - initial) > 0


def test_fedavg_comm_is_model_only(toy_federation, fast_config):
    alg = FedAvg()
    run_federated(alg, toy_federation, _model_fn(toy_federation), fast_config)
    assert alg.ledger.total("down:model") > 0
    assert alg.ledger.total("down:delta") == 0
    assert alg.ledger.total("up:delta") == 0
    # Each round: model down + model up per client.
    n = toy_federation.num_clients
    expected = fast_config.rounds * n * alg.model_size * fast_config.wire_bytes_per_scalar()
    assert alg.ledger.total("down") == expected
    assert alg.ledger.total("up") == expected
