"""DeltaTable tests."""

import numpy as np
import pytest

from repro.core.delta import DeltaTable
from repro.exceptions import ProtocolError


def test_construction_validation():
    with pytest.raises(ProtocolError):
        DeltaTable(0, 4)
    with pytest.raises(ProtocolError):
        DeltaTable(4, 0)


def test_update_and_get():
    table = DeltaTable(3, 2)
    table.update(1, np.array([1.0, 2.0]))
    np.testing.assert_array_equal(table.get(1), [1.0, 2.0])
    assert table.any_reported
    assert not table.all_reported


def test_update_shape_validation():
    table = DeltaTable(3, 2)
    with pytest.raises(ProtocolError):
        table.update(0, np.zeros(3))


def test_get_returns_copy():
    table = DeltaTable(2, 2)
    table.update(0, np.ones(2))
    got = table.get(0)
    got[...] = 99.0
    np.testing.assert_array_equal(table.get(0), [1.0, 1.0])


def test_mean_of_others_excludes_self():
    table = DeltaTable(3, 1)
    table.update(0, np.array([1.0]))
    table.update(1, np.array([3.0]))
    table.update(2, np.array([5.0]))
    np.testing.assert_allclose(table.mean_of_others(0), [4.0])
    np.testing.assert_allclose(table.mean_of_others(1), [3.0])


def test_mean_of_others_skips_unreported():
    table = DeltaTable(4, 1)
    table.update(1, np.array([2.0]))
    table.update(3, np.array([6.0]))
    np.testing.assert_allclose(table.mean_of_others(0), [4.0])
    np.testing.assert_allclose(table.mean_of_others(1), [6.0])


def test_mean_of_others_fallbacks():
    table = DeltaTable(3, 1)
    np.testing.assert_array_equal(table.mean_of_others(0), [0.0])
    table.update(0, np.array([7.0]))
    # Only self reported: fall back to own delta.
    np.testing.assert_array_equal(table.mean_of_others(0), [7.0])


def test_pairwise_mean_sq_distance():
    table = DeltaTable(3, 1)
    table.update(0, np.array([0.0]))
    table.update(1, np.array([2.0]))
    table.update(2, np.array([4.0]))
    # r_0 = mean(|0-2|^2, |0-4|^2) = (4 + 16) / 2
    assert table.pairwise_mean_sq_distance(0) == pytest.approx(10.0)
    assert table.pairwise_mean_sq_distance(1) == pytest.approx(4.0)


def test_pairwise_distance_no_peers_is_zero():
    table = DeltaTable(2, 1)
    table.update(0, np.array([1.0]))
    assert table.pairwise_mean_sq_distance(0) == 0.0


def test_delta_inconsistency():
    table = DeltaTable(3, 1)
    assert table.delta_inconsistency() == 0.0
    table.update(0, np.array([0.0]))
    table.update(1, np.array([2.0]))
    assert table.delta_inconsistency() == pytest.approx(1.0)
    # Consistent deltas -> zero scatter.
    table.update(1, np.array([0.0]))
    assert table.delta_inconsistency() == pytest.approx(0.0)


def test_payload_accounting_matches_paper_scaling():
    """Table III's point: rFedAvg client state grows with N, rFedAvg+
    does not."""
    silo = DeltaTable(20, 702, dtype_bytes=4)
    device = DeltaTable(500, 702, dtype_bytes=4)
    assert silo.per_client_state_bytes(plus=True) == 702 * 4
    assert device.per_client_state_bytes(plus=True) == 702 * 4  # N-independent
    assert silo.per_client_state_bytes(plus=False) == 20 * 702 * 4
    assert device.per_client_state_bytes(plus=False) == 500 * 702 * 4
    assert device.broadcast_bytes_rfedavg() == 500 * 500 * 702 * 4
    assert device.broadcast_bytes_rfedavg_plus() == 500 * 702 * 4
    assert device.upload_bytes() == 500 * 702 * 4


def test_full_table_is_copy():
    table = DeltaTable(2, 2)
    table.update(0, np.ones(2))
    full = table.full_table()
    full[...] = -1
    np.testing.assert_array_equal(table.get(0), [1.0, 1.0])
