"""Delta-embedding cache tests (:class:`repro.core.delta.DeltaCache`).

The cache memoizes raw mean embeddings keyed on content fingerprints of
(phi parameters, client data).  The load-bearing properties: a cached
run is bit-identical to an uncached one, any phi or data change
invalidates, and the obs layer sees hit/miss counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.delta import DeltaCache
from tests.conftest import make_toy_federation
from tests.helpers import assert_equivalent_runs, run_with_workers


# -- unit behaviour ---------------------------------------------------------------


def test_miss_then_hit_then_rekey():
    cache = DeltaCache()
    delta = np.arange(4.0)
    assert cache.lookup(0, b"phi1", b"data1") is None
    cache.store(0, b"phi1", b"data1", delta)
    np.testing.assert_array_equal(cache.lookup(0, b"phi1", b"data1"), delta)
    # Either fingerprint moving on misses.
    assert cache.lookup(0, b"phi2", b"data1") is None
    assert cache.lookup(0, b"phi1", b"data2") is None
    assert (cache.hits, cache.misses) == (1, 3)


def test_entries_are_isolated_per_client():
    cache = DeltaCache()
    cache.store(0, b"p", b"d", np.zeros(2))
    assert cache.lookup(1, b"p", b"d") is None


def test_lookup_returns_a_copy():
    cache = DeltaCache()
    cache.store(0, b"p", b"d", np.zeros(3))
    out = cache.lookup(0, b"p", b"d")
    out[:] = 99.0
    np.testing.assert_array_equal(cache.lookup(0, b"p", b"d"), np.zeros(3))


def test_store_copies_the_delta():
    cache = DeltaCache()
    delta = np.zeros(3)
    cache.store(0, b"p", b"d", delta)
    delta[:] = 99.0
    np.testing.assert_array_equal(cache.lookup(0, b"p", b"d"), np.zeros(3))


def test_clear_drops_entries():
    cache = DeltaCache()
    cache.store(0, b"p", b"d", np.zeros(2))
    cache.clear()
    assert cache.lookup(0, b"p", b"d") is None


# -- LRU bound --------------------------------------------------------------------


def test_max_entries_must_be_positive():
    from repro.exceptions import ProtocolError

    with pytest.raises(ProtocolError):
        DeltaCache(max_entries=0)


def test_bounded_cache_evicts_least_recently_used():
    cache = DeltaCache(max_entries=2)
    cache.store(0, b"p", b"d", np.zeros(1))
    cache.store(1, b"p", b"d", np.zeros(1))
    cache.store(2, b"p", b"d", np.zeros(1))  # evicts client 0
    assert len(cache) == 2
    assert cache.evictions == 1
    assert cache.lookup(0, b"p", b"d") is None
    assert cache.lookup(1, b"p", b"d") is not None
    assert cache.lookup(2, b"p", b"d") is not None


def test_lookup_refreshes_recency():
    cache = DeltaCache(max_entries=2)
    cache.store(0, b"p", b"d", np.zeros(1))
    cache.store(1, b"p", b"d", np.zeros(1))
    assert cache.lookup(0, b"p", b"d") is not None  # 0 is now most recent
    cache.store(2, b"p", b"d", np.zeros(1))  # so 1 is the victim
    assert cache.lookup(1, b"p", b"d") is None
    assert cache.lookup(0, b"p", b"d") is not None


def test_rekeying_an_existing_client_does_not_evict():
    cache = DeltaCache(max_entries=2)
    cache.store(0, b"p", b"d", np.zeros(1))
    cache.store(1, b"p", b"d", np.zeros(1))
    cache.store(0, b"p2", b"d", np.ones(1))  # re-key, not a new entry
    assert cache.evictions == 0
    assert len(cache) == 2


def test_state_dict_round_trips_entries_and_recency_order():
    cache = DeltaCache(max_entries=2)
    cache.store(0, b"p", b"d", np.arange(2.0))
    cache.store(1, b"p", b"d", np.arange(2.0) + 1)
    cache.lookup(0, b"p", b"d")  # 0 most recent, 1 is the LRU victim

    other = DeltaCache(max_entries=2)
    other.load_state_dict(cache.state_dict())
    assert (other.hits, other.misses, other.evictions) == (
        cache.hits, cache.misses, cache.evictions,
    )
    # Recency order survived: the next store must evict client 1 (the
    # LRU after the refresh above), exactly as the original would.
    other.store(2, b"p", b"d", np.zeros(2))
    assert other.lookup(1, b"p", b"d") is None
    np.testing.assert_array_equal(other.lookup(0, b"p", b"d"), np.arange(2.0))
    np.testing.assert_array_equal(other.lookup(2, b"p", b"d"), np.zeros(2))


# -- fingerprints -----------------------------------------------------------------


def test_params_fingerprint_tracks_in_place_mutation():
    from repro.models import build_mlp
    from repro.nn.serialization import params_fingerprint

    model = build_mlp(16, 4, np.random.default_rng(0), (8,), feature_dim=6)
    before = params_fingerprint(model.features)
    assert before == params_fingerprint(model.features)  # deterministic
    model.features.parameters()[0].data += 1e-9
    assert params_fingerprint(model.features) != before


def test_content_fingerprint_tracks_data_mutation():
    from repro.data.dataset import ArrayDataset

    shard = ArrayDataset(np.zeros((5, 3)), np.zeros(5, dtype=np.int64))
    before = shard.content_fingerprint()
    assert before == shard.content_fingerprint()
    shard.x[0, 0] = 1.0
    assert shard.content_fingerprint() != before


# -- end-to-end bit-identity ------------------------------------------------------


@pytest.fixture(scope="module")
def fed():
    return make_toy_federation(similarity=0.0)


def _config(**overrides):
    from repro.fl.config import FLConfig

    base = dict(rounds=3, local_steps=2, batch_size=8, lr=0.1, seed=31)
    base.update(overrides)
    return FLConfig(**base)


@pytest.mark.parametrize("name", ["rfedavg", "rfedavg+", "rfedavg_exact"])
def test_cached_run_is_bit_identical_to_uncached(fed, name):
    kwargs = {"lam": 1e-3}
    cached = run_with_workers(name, {**kwargs, "delta_cache": True}, fed, _config(),
                              num_workers=1)
    uncached = run_with_workers(name, {**kwargs, "delta_cache": False}, fed, _config(),
                                num_workers=1)
    assert cached[0].delta_cache is not None
    assert uncached[0].delta_cache is None
    assert_equivalent_runs(uncached, cached)


def test_cache_hits_during_a_run_and_reports_to_obs(fed):
    """The exact variant recomputes every client's delta at round start
    from the same phi the previous round's sync used — those must hit."""
    from repro.algorithms import make_algorithm
    from repro.fl.trainer import run_federated
    from repro.obs.trace import Tracer
    from tests.helpers import tiny_model_fn

    tracer = Tracer()
    alg = make_algorithm("rfedavg_exact", lam=1e-3)
    run_federated(alg, fed, tiny_model_fn(fed), _config(), tracer=tracer)
    assert alg.delta_cache.hits > 0
    assert alg.delta_cache.misses > 0
    counters = tracer.metrics.snapshot()["counters"]
    assert counters["delta_cache.hits"] == alg.delta_cache.hits
    assert counters["delta_cache.misses"] == alg.delta_cache.misses


def test_cached_run_with_privacy_is_bit_identical(fed):
    """Privacy noise is applied per call from a keyed stream, never
    cached — so the cache must not perturb privatized runs either."""
    from repro.core.privacy import GaussianDeltaMechanism

    kwargs = {"lam": 1e-3}

    def run(delta_cache):
        from repro.algorithms import make_algorithm
        from repro.fl.trainer import run_federated
        from tests.helpers import tiny_model_fn

        alg = make_algorithm(
            "rfedavg+", **kwargs, delta_cache=delta_cache,
            privacy=GaussianDeltaMechanism(sigma=1.0),
        )
        history = run_federated(alg, fed, tiny_model_fn(fed), _config(seed=32))
        return alg, history

    assert_equivalent_runs(run(False), run(True))


def test_cached_parallel_wire_run_is_bit_identical(fed):
    """Workers keep their own cache instances; results must not drift."""
    serial = run_with_workers("rfedavg+", {"lam": 1e-3}, fed, _config(), num_workers=1)
    parallel = run_with_workers("rfedavg+", {"lam": 1e-3}, fed, _config(), num_workers=4)
    assert parallel[0].executor.transport == "wire"
    assert_equivalent_runs(serial, parallel)


def test_bounded_cache_run_is_bit_identical_and_evicts(fed):
    """A tiny LRU bound forces evictions mid-run without changing one bit."""
    kwargs = {"lam": 1e-3}
    unbounded = run_with_workers(
        "rfedavg+", {**kwargs, "delta_cache": True}, fed, _config(), num_workers=1
    )
    bounded = run_with_workers(
        "rfedavg+", {**kwargs, "delta_cache": 2}, fed, _config(), num_workers=1
    )
    assert bounded[0].delta_cache.max_entries == 2
    assert bounded[0].delta_cache.evictions > 0
    assert unbounded[0].delta_cache.evictions == 0
    assert_equivalent_runs(unbounded, bounded)


def test_evictions_are_reported_to_obs(fed):
    from repro.algorithms import make_algorithm
    from repro.fl.trainer import run_federated
    from repro.obs.trace import Tracer
    from tests.helpers import tiny_model_fn

    tracer = Tracer()
    alg = make_algorithm("rfedavg+", lam=1e-3, delta_cache=2)
    run_federated(alg, fed, tiny_model_fn(fed), _config(), tracer=tracer)
    assert alg.delta_cache.evictions > 0
    counters = tracer.metrics.snapshot()["counters"]
    assert counters["delta_cache.evictions"] == alg.delta_cache.evictions
