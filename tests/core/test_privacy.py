"""Gaussian delta mechanism tests."""

import numpy as np
import pytest

from repro.core.privacy import GaussianDeltaMechanism
from repro.exceptions import ConfigError


def test_validation():
    with pytest.raises(ConfigError):
        GaussianDeltaMechanism(sigma=-1.0)
    with pytest.raises(ConfigError):
        GaussianDeltaMechanism(sigma=1.0, clip_norm=0.0)
    mech = GaussianDeltaMechanism(sigma=1.0)
    with pytest.raises(ConfigError):
        mech.privatize(np.ones(3), batch_size=0)


def test_sigma_zero_only_clips():
    mech = GaussianDeltaMechanism(sigma=0.0, clip_norm=1.0)
    delta = np.array([3.0, 4.0])  # norm 5 -> clipped to 1
    out = mech.privatize(delta, batch_size=10)
    np.testing.assert_allclose(out, [0.6, 0.8])


def test_clipping_bounds_norm():
    mech = GaussianDeltaMechanism(sigma=0.0, clip_norm=2.0)
    out = mech.privatize(np.full(10, 100.0), batch_size=5)
    assert np.linalg.norm(out) <= 2.0 + 1e-9


def test_small_vectors_not_clipped():
    mech = GaussianDeltaMechanism(sigma=0.0, clip_norm=10.0)
    delta = np.array([0.1, 0.2])
    np.testing.assert_array_equal(mech.privatize(delta, 5), delta)


def test_noise_std_scales_with_sigma_and_batch():
    mech = GaussianDeltaMechanism(sigma=4.0, clip_norm=2.0)
    assert mech.noise_std(batch_size=8) == pytest.approx(1.0)
    assert mech.noise_std(batch_size=80) == pytest.approx(0.1)


def test_empirical_noise_std_matches():
    mech = GaussianDeltaMechanism(sigma=5.0, clip_norm=1.0, seed=0)
    delta = np.zeros(20000)
    out = mech.privatize(delta, batch_size=10)
    assert abs(out.std() - 0.5) < 0.01


def test_noise_is_seeded_deterministic():
    a = GaussianDeltaMechanism(sigma=1.0, seed=3).privatize(np.zeros(5), 2)
    b = GaussianDeltaMechanism(sigma=1.0, seed=3).privatize(np.zeros(5), 2)
    np.testing.assert_array_equal(a, b)


def test_consecutive_calls_draw_fresh_noise():
    mech = GaussianDeltaMechanism(sigma=1.0, seed=3)
    a = mech.privatize(np.zeros(5), 2)
    b = mech.privatize(np.zeros(5), 2)
    assert not np.array_equal(a, b)


def test_input_not_mutated():
    mech = GaussianDeltaMechanism(sigma=1.0, clip_norm=0.5)
    delta = np.array([3.0, 4.0])
    mech.privatize(delta, 10)
    np.testing.assert_array_equal(delta, [3.0, 4.0])
