"""ShardedDeltaTable vs DeltaTable bit-identity (repro.core.delta).

The sharded store is a drop-in replacement for the dense table: every
statistic must match to the bit — with and without an LRU spill cap —
and checkpoints must cross layouts in both directions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.delta import DeltaSpillStore, DeltaTable, ShardedDeltaTable
from repro.exceptions import ProtocolError


def _report(table, rng, clients, dim):
    for client in clients:
        table.update(int(client), rng.normal(size=dim))


def _paired(num_clients=40, dim=6, seed=0, max_resident=None, rounds=3, cohort=9):
    """A dense and a sharded table fed the identical report stream."""
    dense = DeltaTable(num_clients, dim)
    sharded = ShardedDeltaTable(num_clients, dim, max_resident=max_resident)
    rng = np.random.default_rng(seed)
    for _ in range(rounds):
        clients = rng.choice(num_clients, size=cohort, replace=False)
        deltas = rng.normal(size=(cohort, dim))
        for client, delta in zip(clients, deltas):
            dense.update(int(client), delta)
            sharded.update(int(client), delta)
    return dense, sharded


@pytest.mark.parametrize("max_resident", [None, 2])
def test_all_statistics_bit_identical_to_dense(max_resident):
    dense, sharded = _paired(max_resident=max_resident)
    np.testing.assert_array_equal(sharded.reported_mask, dense.reported_mask)
    np.testing.assert_array_equal(sharded.reported_ids(), dense.reported_ids())
    np.testing.assert_array_equal(sharded.full_table(), dense.full_table())
    assert sharded.any_reported == dense.any_reported
    assert sharded.all_reported == dense.all_reported
    assert sharded.delta_inconsistency() == dense.delta_inconsistency()
    for client in range(dense.num_clients):
        np.testing.assert_array_equal(sharded.get(client), dense.get(client))
        np.testing.assert_array_equal(
            sharded.mean_of_others(client), dense.mean_of_others(client)
        )
        assert sharded.pairwise_mean_sq_distance(
            client
        ) == dense.pairwise_mean_sq_distance(client)
        a = sharded.reported_rows_except(client)
        b = dense.reported_rows_except(client)
        if b is None:
            assert a is None
        else:
            np.testing.assert_array_equal(a, b)


def test_memory_is_reported_rows_not_population():
    sharded = ShardedDeltaTable(1_000_000, 8)
    rng = np.random.default_rng(1)
    _report(sharded, rng, rng.choice(1_000_000, size=100, replace=False), 8)
    assert sharded.resident_rows == 100
    assert len(sharded.reported_ids()) == 100
    # The only O(N) state is the boolean mask.
    assert sharded.reported_mask.nbytes == 1_000_000


def test_spill_cap_is_enforced_and_counted(tmp_path):
    sharded = ShardedDeltaTable(
        50, 4, max_resident=3, spill_dir=str(tmp_path / "spill")
    )
    rng = np.random.default_rng(2)
    _report(sharded, rng, range(10), 4)
    assert sharded.resident_rows == 3
    assert sharded.spilled_rows == 7
    assert len(sharded.reported_ids()) == 10  # spilling loses nothing


def test_rereport_pops_spilled_row():
    sharded = ShardedDeltaTable(10, 4, max_resident=2)
    rng = np.random.default_rng(3)
    _report(sharded, rng, [0, 1, 2], 4)  # client 0 spills
    assert sharded._spill is not None and 0 in sharded._spill
    fresh = np.full(4, 9.0)
    sharded.update(0, fresh)
    assert 0 not in sharded._spill  # stale spilled copy dropped
    np.testing.assert_array_equal(sharded.get(0), fresh)


def test_cross_layout_checkpoint_restore():
    dense, sharded = _paired(max_resident=2)

    # sharded sparse snapshot -> dense table
    dense_restored = DeltaTable(dense.num_clients, dense.dim)
    dense_restored.restore_checkpoint_segments(sharded.checkpoint_segments())
    np.testing.assert_array_equal(dense_restored.full_table(), dense.full_table())
    np.testing.assert_array_equal(dense_restored.reported_mask, dense.reported_mask)

    # dense legacy snapshot (delta_table form) -> sharded table
    legacy = {
        "delta_table": dense.full_table(),
        "delta_reported": dense.reported_mask,
    }
    sharded_restored = ShardedDeltaTable(dense.num_clients, dense.dim, max_resident=2)
    sharded_restored.restore_checkpoint_segments(legacy)
    np.testing.assert_array_equal(sharded_restored.full_table(), dense.full_table())
    assert sharded_restored.resident_rows <= 2  # cap re-enforced on restore

    # sparse -> sparse round trip
    again = ShardedDeltaTable(dense.num_clients, dense.dim)
    again.restore_checkpoint_segments(sharded.checkpoint_segments())
    assert again.delta_inconsistency() == sharded.delta_inconsistency()


def test_worker_segments_round_trip():
    _, sharded = _paired(max_resident=None)
    worker = ShardedDeltaTable(sharded.num_clients, sharded.dim, max_resident=2)
    worker.install_worker_segments(sharded.worker_segments())
    # Workers hold the broadcast rows resident regardless of their cap.
    assert worker.resident_rows == len(sharded.reported_ids())
    np.testing.assert_array_equal(worker.full_table(), sharded.full_table())
    for client in sharded.reported_ids():
        np.testing.assert_array_equal(
            worker.mean_of_others(int(client)), sharded.mean_of_others(int(client))
        )


def test_payload_accounting_matches_dense():
    dense, sharded = _paired()
    assert sharded.broadcast_bytes_rfedavg() == dense.broadcast_bytes_rfedavg()
    assert (
        sharded.broadcast_bytes_rfedavg_plus()
        == dense.broadcast_bytes_rfedavg_plus()
    )
    assert sharded.upload_bytes() == dense.upload_bytes()
    for plus in (True, False):
        assert sharded.per_client_state_bytes(plus) == dense.per_client_state_bytes(
            plus
        )


def test_constructor_validation():
    with pytest.raises(ProtocolError):
        ShardedDeltaTable(0, 4)
    with pytest.raises(ProtocolError):
        ShardedDeltaTable(4, 0)
    with pytest.raises(ProtocolError):
        ShardedDeltaTable(4, 4, max_resident=0)
    with pytest.raises(ProtocolError):
        ShardedDeltaTable(4, 4).update(0, np.zeros(3))


def test_spill_store_roundtrip(tmp_path):
    store = DeltaSpillStore(5, str(tmp_path / "spill"))
    row_a, row_b = np.arange(5.0), np.arange(5.0) * 2
    store.put(3, row_a)
    store.put(8, row_b)
    assert len(store) == 2 and 3 in store
    np.testing.assert_array_equal(store.get(3), row_a)
    store.put(3, row_b)  # re-put repoints, old bytes are dead
    np.testing.assert_array_equal(store.get(3), row_b)
    np.testing.assert_array_equal(store.pop(8), row_b)
    assert 8 not in store
    store.close()
