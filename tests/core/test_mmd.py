"""MMD estimator tests with hypothesis property checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.mmd import (
    linear_mmd,
    mean_embedding,
    median_heuristic,
    rbf_mmd,
    squared_linear_mmd,
)
from repro.exceptions import DataError

sample_sets = hnp.arrays(
    np.float64,
    st.tuples(st.integers(2, 10), st.integers(1, 5)),
    elements=st.floats(-10, 10),
)


def test_mean_embedding_is_columnwise_mean(rng):
    feats = rng.normal(size=(6, 3))
    np.testing.assert_allclose(mean_embedding(feats), feats.mean(axis=0))


def test_mean_embedding_rejects_bad_input():
    with pytest.raises(DataError):
        mean_embedding(np.zeros(3))
    with pytest.raises(DataError):
        mean_embedding(np.zeros((0, 3)))


@given(sample_sets)
@settings(max_examples=40, deadline=None)
def test_linear_mmd_zero_on_self(x):
    assert linear_mmd(x, x) == pytest.approx(0.0, abs=1e-9)


@given(sample_sets, sample_sets)
@settings(max_examples=40, deadline=None)
def test_linear_mmd_symmetric_nonnegative(x, y):
    if x.shape[1] != y.shape[1]:
        y = np.resize(y, (y.shape[0], x.shape[1]))
    assert linear_mmd(x, y) >= 0.0
    assert linear_mmd(x, y) == pytest.approx(linear_mmd(y, x))


def test_squared_linear_mmd_is_square(rng):
    x = rng.normal(size=(5, 4))
    y = rng.normal(size=(7, 4))
    assert squared_linear_mmd(x, y) == pytest.approx(linear_mmd(x, y) ** 2)


def test_linear_mmd_detects_mean_shift(rng):
    x = rng.normal(0.0, 1.0, size=(200, 3))
    y = rng.normal(2.0, 1.0, size=(200, 3))
    assert linear_mmd(x, y) > 10 * linear_mmd(x, x + 0.0)
    assert linear_mmd(x, y) == pytest.approx(np.linalg.norm(x.mean(0) - y.mean(0)))


def test_rbf_mmd_zero_on_identical(rng):
    x = rng.normal(size=(10, 3))
    assert rbf_mmd(x, x) == pytest.approx(0.0, abs=1e-9)


def test_rbf_mmd_detects_variance_shift_linear_cannot(rng):
    """Same mean, different covariance: the kernel estimator sees the
    difference while the linear mean-embedding version does not."""
    x = rng.normal(0.0, 0.3, size=(2000, 2))
    y = rng.normal(0.0, 3.0, size=(2000, 2))
    assert linear_mmd(x, y) < 0.3  # mean gap only: ~N(0, 9/n) noise
    assert rbf_mmd(x, y, bandwidth=1.0) > 0.5  # sees the shape difference


def test_rbf_mmd_symmetric(rng):
    x = rng.normal(size=(20, 3))
    y = rng.normal(1.0, 1.0, size=(25, 3))
    assert rbf_mmd(x, y, bandwidth=1.0) == pytest.approx(rbf_mmd(y, x, bandwidth=1.0))


def test_rbf_mmd_unbiased_near_zero_under_null(rng):
    x = rng.normal(size=(100, 2))
    y = rng.normal(size=(100, 2))
    assert abs(rbf_mmd(x, y, bandwidth=1.0, biased=False)) < 0.05


def test_rbf_mmd_unbiased_needs_two_samples(rng):
    with pytest.raises(DataError):
        rbf_mmd(rng.normal(size=(1, 2)), rng.normal(size=(5, 2)), biased=False)


def test_rbf_mmd_shape_validation(rng):
    with pytest.raises(DataError):
        rbf_mmd(rng.normal(size=(3, 2)), rng.normal(size=(3, 4)))


def test_median_heuristic_positive(rng):
    x = rng.normal(size=(10, 3))
    y = rng.normal(size=(10, 3))
    assert median_heuristic(x, y) > 0.0


def test_median_heuristic_on_identical_points():
    x = np.zeros((5, 2))
    assert median_heuristic(x, x) == 1.0  # degenerate fallback
