"""CORAL distance and multi-kernel MMD tests."""

import numpy as np
import pytest

from repro.core.coral import coral_distance, mean_and_coral_distance
from repro.core.mmd import linear_mmd, multi_kernel_mmd
from repro.exceptions import DataError


def test_coral_zero_on_identical(rng):
    x = rng.normal(size=(50, 4))
    assert coral_distance(x, x) == pytest.approx(0.0)


def test_coral_symmetric(rng):
    x = rng.normal(size=(40, 3))
    y = rng.normal(2.0, 3.0, size=(40, 3))
    assert coral_distance(x, y) == pytest.approx(coral_distance(y, x))


def test_coral_detects_covariance_shift_linear_mmd_misses(rng):
    """The complementary failure mode: same mean, different covariance."""
    x = rng.normal(0.0, 0.3, size=(2000, 3))
    y = rng.normal(0.0, 3.0, size=(2000, 3))
    assert linear_mmd(x, y) < 0.3
    assert coral_distance(x, y) > 1.0


def test_coral_mean_shift_invisible(rng):
    """CORAL only sees second-order structure — a pure mean shift with
    identical covariance is (nearly) invisible."""
    x = rng.normal(0.0, 1.0, size=(3000, 3))
    y = x + 10.0
    assert coral_distance(x, y) == pytest.approx(0.0, abs=1e-9)


def test_coral_needs_two_samples():
    with pytest.raises(DataError):
        coral_distance(np.zeros((1, 3)), np.zeros((5, 3)))


def test_combined_distance_sees_both_shifts(rng):
    x = rng.normal(0.0, 1.0, size=(1000, 3))
    mean_shift = x + 2.0
    cov_shift = rng.normal(0.0, 3.0, size=(1000, 3))
    assert mean_and_coral_distance(x, mean_shift) > 1.0
    assert mean_and_coral_distance(x, cov_shift) > 1.0
    assert mean_and_coral_distance(x, x) == pytest.approx(0.0, abs=1e-9)


def test_multi_kernel_mmd_zero_on_identical(rng):
    x = rng.normal(size=(30, 4))
    assert multi_kernel_mmd(x, x) == pytest.approx(0.0, abs=1e-9)


def test_multi_kernel_mmd_detects_shift(rng):
    x = rng.normal(0.0, 1.0, size=(100, 3))
    y = rng.normal(3.0, 1.0, size=(100, 3))
    assert multi_kernel_mmd(x, y) > multi_kernel_mmd(x, x + 0.01)


def test_multi_kernel_custom_bandwidths(rng):
    x = rng.normal(size=(20, 2))
    y = rng.normal(1.0, 1.0, size=(20, 2))
    value = multi_kernel_mmd(x, y, bandwidths=[0.5, 1.0])
    assert value > 0
    with pytest.raises(DataError):
        multi_kernel_mmd(x, y, bandwidths=[])
