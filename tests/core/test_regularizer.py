"""Distribution regularizer tests — the heart of the paper."""

import numpy as np
import pytest

from repro import nn
from repro.core.regularizer import (
    DistributionRegularizer,
    loo_regularizer_loss,
    pairwise_regularizer_loss,
)
from repro.exceptions import ConfigError
from repro.models import build_mlp
from repro.nn.losses import SoftmaxCrossEntropy
from tests.helpers import split_model_objective_gradcheck


def test_pairwise_loss_value():
    delta = np.array([0.0, 0.0])
    others = np.array([[1.0, 0.0], [0.0, 2.0]])
    # mean(1, 4) = 2.5
    assert pairwise_regularizer_loss(delta, others) == pytest.approx(2.5)


def test_loo_loss_value():
    assert loo_regularizer_loss(np.array([1.0, 1.0]), np.array([0.0, 0.0])) == pytest.approx(2.0)


def test_loo_is_lower_bound_of_pairwise(rng):
    """r~_k <= r_k (Jensen): the leave-one-out form is a tight lower bound."""
    for _ in range(20):
        delta = rng.normal(size=4)
        others = rng.normal(size=(6, 4))
        pair = pairwise_regularizer_loss(delta, others)
        loo = loo_regularizer_loss(delta, others.mean(axis=0))
        assert loo <= pair + 1e-12


def test_modes_share_gradient(rng):
    """The paper's key identity: r_k and r~_k have the same gradient
    with respect to the client's own embedding."""
    feats = rng.normal(size=(8, 5))
    others = rng.normal(size=(4, 5))
    lam = 0.3
    pair = DistributionRegularizer(lam, mode="pairwise").evaluate(feats, others)
    loo = DistributionRegularizer(lam, mode="loo").evaluate(feats, others.mean(axis=0))
    np.testing.assert_allclose(pair.feature_grad, loo.feature_grad)


def test_zero_lambda_gives_zero_loss_and_grad(rng):
    feats = rng.normal(size=(4, 3))
    result = DistributionRegularizer(0.0, mode="loo").evaluate(feats, np.zeros(3))
    assert result.loss == 0.0
    np.testing.assert_array_equal(result.feature_grad, 0.0)


def test_gradient_is_uniform_across_batch(rng):
    feats = rng.normal(size=(6, 3))
    result = DistributionRegularizer(1.0, mode="loo").evaluate(feats, np.zeros(3))
    for row in result.feature_grad:
        np.testing.assert_array_equal(row, result.feature_grad[0])


def test_gradient_points_from_target_to_delta(rng):
    feats = np.ones((4, 2))
    target = np.zeros(2)
    result = DistributionRegularizer(1.0, mode="loo").evaluate(feats, target)
    # grad = 2*(delta - target)/B = 2*1/4 per coordinate
    np.testing.assert_allclose(result.feature_grad, 0.5)


def test_validation():
    with pytest.raises(ConfigError):
        DistributionRegularizer(-1.0)
    with pytest.raises(ConfigError):
        DistributionRegularizer(1.0, mode="nope")
    reg = DistributionRegularizer(1.0, mode="loo")
    with pytest.raises(ConfigError):
        reg.evaluate(np.zeros((2, 3)), np.zeros(4))
    reg_pair = DistributionRegularizer(1.0, mode="pairwise")
    with pytest.raises(ConfigError):
        reg_pair.evaluate(np.zeros((2, 3)), np.zeros((2, 4)))


@pytest.mark.parametrize("mode", ["loo", "pairwise"])
def test_full_objective_gradcheck_through_model(rng, mode):
    """Finite-difference check of f_k + lambda*r_k through a real model —
    verifies the feature_grad injection path end to end."""
    model = build_mlp(12, 3, rng, (8,), feature_dim=5)
    x = rng.normal(size=(6, 12))
    y = rng.integers(0, 3, 6)
    lam = 0.1
    if mode == "loo":
        reference = rng.normal(size=5)
    else:
        reference = rng.normal(size=(3, 5))
    reg = DistributionRegularizer(lam, mode=mode)
    loss_fn = SoftmaxCrossEntropy()

    def objective_and_grads():
        logits = model.forward(x)
        task = loss_fn.forward(logits, y)
        result = reg.evaluate(model.last_features, reference)
        return task + result.loss, loss_fn.backward(), result.feature_grad

    split_model_objective_gradcheck(model, objective_and_grads, rng, num_coords=12)


def test_minimizing_regularizer_aligns_embeddings(rng):
    """Gradient descent on the regularizer alone drives a client's mean
    embedding toward the target — the mechanism of the whole paper."""
    model = build_mlp(6, 2, rng, (8,), feature_dim=4)
    x = rng.normal(size=(16, 6))
    # The feature layer ends in ReLU, so only non-negative targets are
    # reachable; use one to test pure alignment dynamics.
    target = np.abs(rng.normal(size=4)) * 0.5
    reg = DistributionRegularizer(1.0, mode="loo")
    opt = nn.SGD(model.parameters(), lr=0.1)

    def gap():
        model.forward(x)
        return float(np.linalg.norm(model.last_features.mean(axis=0) - target))

    before = gap()
    for _ in range(60):
        model.forward(x)
        result = reg.evaluate(model.last_features, target)
        model.zero_grad()
        model.backward(np.zeros((16, 2)), feature_grad=result.feature_grad)
        opt.step()
    assert gap() < 0.3 * before
