"""Boundary-condition tests across the stack.

Degenerate but legal configurations a downstream user will eventually
hit: single-sample clients, two clients, batch size exceeding shard
size, one local step, binary tasks, single-channel 4x4 images.
"""

import numpy as np
import pytest

from repro.algorithms import FedAvg, RFedAvgPlus
from repro.data.dataset import ArrayDataset, DatasetSpec, FederatedDataset
from repro.fl.config import FLConfig
from repro.fl.trainer import run_federated
from repro.models import build_cnn, build_mlp


def _tiny_fed(client_sizes, classes=2, dim=6, seed=0):
    gen = np.random.default_rng(seed)
    means = gen.normal(0, 2, size=(classes, dim))

    def make(n):
        y = gen.integers(0, classes, n)
        x = means[y] + gen.normal(0, 0.3, size=(n, dim))
        return ArrayDataset(x.reshape(n, 1, 1, dim), y)

    spec = DatasetSpec("tiny", "image", (1, 1, dim), classes)
    return FederatedDataset(
        spec=spec, clients=[make(n) for n in client_sizes], test=make(30)
    )


def _model_fn(fed, seed=0):
    return lambda: build_mlp(
        fed.spec.flat_dim, fed.spec.num_classes, np.random.default_rng(seed), (8,), feature_dim=4
    )


def test_single_sample_clients_train():
    fed = _tiny_fed([1, 1, 1, 30])
    config = FLConfig(rounds=3, local_steps=2, batch_size=8, lr=0.1, seed=0)
    history = run_federated(FedAvg(), fed, _model_fn(fed), config)
    assert np.isfinite(history.final_accuracy)


def test_single_sample_clients_with_regularizer():
    """delta of a 1-sample client is that sample's embedding; the
    leave-one-out machinery must cope."""
    fed = _tiny_fed([1, 1, 20])
    config = FLConfig(rounds=3, local_steps=2, batch_size=4, lr=0.1, seed=0)
    history = run_federated(RFedAvgPlus(lam=1e-2), fed, _model_fn(fed), config)
    assert np.isfinite(history.final_accuracy)
    assert history.records[-1].reg_loss >= 0


def test_two_client_federation():
    fed = _tiny_fed([20, 20])
    config = FLConfig(rounds=3, local_steps=2, batch_size=8, lr=0.1, seed=0)
    history = run_federated(RFedAvgPlus(lam=1e-3), fed, _model_fn(fed), config)
    assert len(history.records) == 3


def test_batch_size_larger_than_shard():
    fed = _tiny_fed([5, 5])
    config = FLConfig(rounds=2, local_steps=2, batch_size=64, lr=0.1, seed=0)
    history = run_federated(FedAvg(), fed, _model_fn(fed), config)
    assert np.isfinite(history.final_accuracy)


def test_one_local_step_one_round():
    fed = _tiny_fed([10, 10])
    config = FLConfig(rounds=1, local_steps=1, batch_size=4, lr=0.1, seed=0)
    history = run_federated(FedAvg(), fed, _model_fn(fed), config)
    assert len(history.records) == 1
    assert history.records[0].test_accuracy is not None


def test_smallest_legal_cnn_input(rng):
    """4x4 images with the small-kernel branch of the CNN builder."""
    model = build_cnn(1, 4, 2, rng, scale=0.1, feature_dim=4)
    out = model.forward(rng.random((2, 1, 4, 4)))
    assert out.shape == (2, 2)


def test_binary_classification_end_to_end():
    fed = _tiny_fed([25, 25], classes=2)
    config = FLConfig(rounds=10, local_steps=3, batch_size=8, lr=0.3, eval_every=5, seed=0)
    history = run_federated(RFedAvgPlus(lam=1e-3), fed, _model_fn(fed), config)
    assert history.final_accuracy > 0.6  # well-separated 2-class task


def test_eval_every_larger_than_rounds():
    fed = _tiny_fed([10, 10])
    config = FLConfig(rounds=2, local_steps=1, batch_size=4, eval_every=100, seed=0)
    history = run_federated(FedAvg(), fed, _model_fn(fed), config)
    # Round 0 (idx % big == 0) and the final round evaluate.
    evaluated = [r.round_idx for r in history.records if r.test_accuracy is not None]
    assert evaluated == [0, 1]


def test_extremely_unbalanced_weights():
    fed = _tiny_fed([1, 500])
    config = FLConfig(rounds=2, local_steps=2, batch_size=16, lr=0.1, seed=0)
    alg = FedAvg()
    history = run_federated(alg, fed, _model_fn(fed), config)
    assert np.isfinite(alg.global_params).all()
    assert np.isfinite(history.final_accuracy)
