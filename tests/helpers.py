"""Shared test utilities: gradient checking + the serial/parallel
equivalence harness for the client-execution engine."""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.models.split import SplitModel
from repro.nn.module import Module
from repro.nn.serialization import get_flat_grads, get_flat_params, set_flat_params


def finite_difference_check(
    model: Module,
    objective: Callable[[], float],
    analytic_grad: np.ndarray,
    rng: np.random.Generator,
    num_coords: int = 10,
    eps: float = 1e-6,
    atol: float = 1e-5,
) -> None:
    """Assert analytic gradients match central finite differences.

    ``objective`` must recompute the scalar loss from the model's
    current parameters.  A random subset of coordinates is probed.
    """
    flat = get_flat_params(model)
    coords = rng.choice(flat.size, size=min(num_coords, flat.size), replace=False)
    try:
        for i in coords:
            plus = flat.copy()
            plus[i] += eps
            set_flat_params(model, plus)
            loss_plus = objective()
            minus = flat.copy()
            minus[i] -= eps
            set_flat_params(model, minus)
            loss_minus = objective()
            fd = (loss_plus - loss_minus) / (2.0 * eps)
            assert abs(fd - analytic_grad[i]) < atol, (
                f"coord {i}: finite-diff {fd:.8f} vs analytic {analytic_grad[i]:.8f}"
            )
    finally:
        set_flat_params(model, flat)


def model_gradcheck(
    model: Module,
    loss_closure: Callable[[], tuple[float, np.ndarray]],
    rng: np.random.Generator,
    num_coords: int = 10,
    eps: float = 1e-6,
    atol: float = 1e-5,
) -> None:
    """Gradcheck a model whose closure returns (loss, grad_out) and runs
    forward itself; backward is invoked here.

    ``eps`` is the finite-difference step — float32 models need a much
    larger one (~1e-3) than the float64 default, since a 1e-6 bump
    vanishes in single-precision rounding.
    """

    def objective() -> float:
        loss, _grad = loss_closure()
        return loss

    loss, grad_out = loss_closure()
    model.zero_grad()
    model.backward(grad_out)
    analytic = get_flat_grads(model)
    finite_difference_check(
        model, objective, analytic, rng, num_coords, eps=eps, atol=atol
    )


def split_model_objective_gradcheck(
    model: SplitModel,
    objective_and_grads: Callable[[], tuple[float, np.ndarray, np.ndarray | None]],
    rng: np.random.Generator,
    num_coords: int = 10,
    atol: float = 1e-5,
) -> None:
    """Gradcheck a SplitModel objective that may inject a feature grad.

    ``objective_and_grads`` runs forward and returns
    (total_loss, grad_out, feature_grad_or_None).
    """

    def objective() -> float:
        loss, _g, _f = objective_and_grads()
        return loss

    loss, grad_out, feature_grad = objective_and_grads()
    model.zero_grad()
    model.backward(grad_out, feature_grad=feature_grad)
    analytic = get_flat_grads(model)
    finite_difference_check(model, objective, analytic, rng, num_coords, atol=atol)


# -- serial/parallel equivalence harness -----------------------------------------


def tiny_model_fn(fed, seed: int = 0, hidden: int = 12, feature_dim: int = 6):
    """The smallest useful model factory for equivalence runs."""
    from repro.models import build_mlp

    return lambda: build_mlp(
        fed.spec.flat_dim,
        fed.spec.num_classes,
        np.random.default_rng(seed),
        (hidden,),
        feature_dim=feature_dim,
    )


def run_with_workers(
    algorithm_name: str,
    algorithm_kwargs: dict,
    fed,
    config,
    num_workers: int,
    executor: str = "auto",
    transport: str = "wire",
    decorate=None,
):
    """Run one federated job with the given worker count.

    ``decorate`` (optional) receives the freshly built algorithm before
    the run — use it to attach compressors / fault models.  Returns
    ``(algorithm, history)``.
    """
    from repro.algorithms import make_algorithm
    from repro.fl.trainer import run_federated

    if executor == "auto" and num_workers > 1:
        # The harness's contract is "run with this worker count":
        # 'auto' resolves to serial on single-core machines, which would
        # silently drop the parallel leg of every equivalence matrix on
        # a 1-CPU box, so force the process pool explicitly.
        executor = "process"
    run_config = config.with_updates(
        num_workers=num_workers, executor=executor, transport=transport
    )
    algorithm = make_algorithm(algorithm_name, **algorithm_kwargs)
    if decorate is not None:
        decorate(algorithm)
    history = run_federated(algorithm, fed, tiny_model_fn(fed), run_config)
    return algorithm, history


def assert_equivalent_runs(serial, parallel) -> None:
    """Assert two ``(algorithm, history)`` runs are bit-identical.

    Compares final global parameters exactly, every History record field
    except wall time, and the per-round ledger totals.
    """
    alg_a, hist_a = serial
    alg_b, hist_b = parallel
    np.testing.assert_array_equal(alg_a.global_params, alg_b.global_params)

    assert len(hist_a.records) == len(hist_b.records)
    for rec_a, rec_b in zip(hist_a.records, hist_b.records):
        for field in dataclasses.fields(rec_a):
            if field.name == "wall_time_sec":
                continue  # timing legitimately differs between engines
            assert getattr(rec_a, field.name) == getattr(rec_b, field.name), (
                f"round {rec_a.round_idx}: {field.name} "
                f"{getattr(rec_a, field.name)!r} != {getattr(rec_b, field.name)!r}"
            )

    assert alg_a.ledger.rounds == alg_b.ledger.rounds
    for round_idx in range(alg_a.ledger.rounds):
        assert alg_a.ledger.round_bytes(round_idx) == alg_b.ledger.round_bytes(round_idx)
