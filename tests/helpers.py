"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.models.split import SplitModel
from repro.nn.module import Module
from repro.nn.serialization import get_flat_grads, get_flat_params, set_flat_params


def finite_difference_check(
    model: Module,
    objective: Callable[[], float],
    analytic_grad: np.ndarray,
    rng: np.random.Generator,
    num_coords: int = 10,
    eps: float = 1e-6,
    atol: float = 1e-5,
) -> None:
    """Assert analytic gradients match central finite differences.

    ``objective`` must recompute the scalar loss from the model's
    current parameters.  A random subset of coordinates is probed.
    """
    flat = get_flat_params(model)
    coords = rng.choice(flat.size, size=min(num_coords, flat.size), replace=False)
    try:
        for i in coords:
            plus = flat.copy()
            plus[i] += eps
            set_flat_params(model, plus)
            loss_plus = objective()
            minus = flat.copy()
            minus[i] -= eps
            set_flat_params(model, minus)
            loss_minus = objective()
            fd = (loss_plus - loss_minus) / (2.0 * eps)
            assert abs(fd - analytic_grad[i]) < atol, (
                f"coord {i}: finite-diff {fd:.8f} vs analytic {analytic_grad[i]:.8f}"
            )
    finally:
        set_flat_params(model, flat)


def model_gradcheck(
    model: Module,
    loss_closure: Callable[[], tuple[float, np.ndarray]],
    rng: np.random.Generator,
    num_coords: int = 10,
    atol: float = 1e-5,
) -> None:
    """Gradcheck a model whose closure returns (loss, grad_out) and runs
    forward itself; backward is invoked here."""

    def objective() -> float:
        loss, _grad = loss_closure()
        return loss

    loss, grad_out = loss_closure()
    model.zero_grad()
    model.backward(grad_out)
    analytic = get_flat_grads(model)
    finite_difference_check(model, objective, analytic, rng, num_coords, atol=atol)


def split_model_objective_gradcheck(
    model: SplitModel,
    objective_and_grads: Callable[[], tuple[float, np.ndarray, np.ndarray | None]],
    rng: np.random.Generator,
    num_coords: int = 10,
    atol: float = 1e-5,
) -> None:
    """Gradcheck a SplitModel objective that may inject a feature grad.

    ``objective_and_grads`` runs forward and returns
    (total_loss, grad_out, feature_grad_or_None).
    """

    def objective() -> float:
        loss, _g, _f = objective_and_grads()
        return loss

    loss, grad_out, feature_grad = objective_and_grads()
    model.zero_grad()
    model.backward(grad_out, feature_grad=feature_grad)
    analytic = get_flat_grads(model)
    finite_difference_check(model, objective, analytic, rng, num_coords, atol=atol)
