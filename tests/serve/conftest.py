"""Shared fixtures + the serve-run harness for the serving subsystem."""

from __future__ import annotations

import os
import warnings

import pytest

from tests.conftest import make_toy_federation

WORKERS = int(os.environ.get("REPRO_EQUIV_WORKERS", "2"))


@pytest.fixture(scope="module")
def fed():
    return make_toy_federation(similarity=0.0)


def run_serve(
    algorithm_name: str,
    algorithm_kwargs: dict,
    fed,
    config,
    num_workers: int = WORKERS,
    decorate=None,
    tracer=None,
    allow_degrade: bool = False,
    **serve_overrides,
):
    """Run one federated job through the socket serving engine.

    Degradation to in-process execution raises (via warnings-as-errors)
    unless ``allow_degrade`` is set — a silently-degraded run would make
    every equivalence assertion vacuous.  Returns ``(algorithm, history)``.
    """
    from repro.algorithms import make_algorithm
    from repro.fl.trainer import run_federated
    from tests.helpers import tiny_model_fn

    run_config = config.with_updates(
        execution="serve", num_workers=num_workers, **serve_overrides
    )
    algorithm = make_algorithm(algorithm_name, **algorithm_kwargs)
    if decorate is not None:
        decorate(algorithm)
    with warnings.catch_warnings():
        if not allow_degrade:
            warnings.simplefilter("error", RuntimeWarning)
        history = run_federated(
            algorithm, fed, tiny_model_fn(fed), run_config, tracer=tracer
        )
    assert algorithm.executor.name == "serve"
    if not allow_degrade:
        assert not algorithm.executor.degraded
    return algorithm, history
