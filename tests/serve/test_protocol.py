"""Serve protocol units: address parsing, message round trips, config
validation of the serve knobs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigError, WireError
from repro.fl.compression import WireSize
from repro.fl.config import EXECUTION_MODES, FLConfig
from repro.fl.parallel import ClientUpdate
from repro.serve import protocol


# -- address parsing --------------------------------------------------------------


@pytest.mark.parametrize(
    "spec,expected",
    [
        ("tcp:127.0.0.1:0", ("tcp", ("127.0.0.1", 0))),
        ("tcp:localhost:8470", ("tcp", ("localhost", 8470))),
        ("tcp:::1:9000", ("tcp", ("::1", 9000))),  # rpartition keeps IPv6 hosts whole
        ("uds:/tmp/fl.sock", ("uds", "/tmp/fl.sock")),
        ("uds:relative.sock", ("uds", "relative.sock")),
    ],
)
def test_parse_serve_addr_accepts(spec, expected):
    assert protocol.parse_serve_addr(spec) == expected


@pytest.mark.parametrize(
    "spec",
    [
        "tcp:8470",  # no host
        "tcp:host:",  # empty port
        "tcp:host:notaport",
        "tcp:host:70000",  # out of range
        "tcp:host:-1",
        "uds:",  # no path
        "http:example.com:80",  # unknown scheme
        "just-nonsense",
    ],
)
def test_parse_serve_addr_rejects(spec):
    with pytest.raises(ConfigError):
        protocol.parse_serve_addr(spec)


# -- config validation ------------------------------------------------------------


def test_serve_is_a_registered_execution_mode():
    assert "serve" in EXECUTION_MODES
    FLConfig(rounds=1, execution="serve")  # constructs cleanly


def test_config_validates_serve_addr_at_construction():
    FLConfig(rounds=1, serve_addr="tcp:127.0.0.1:0")
    with pytest.raises(ConfigError, match="serve_addr"):
        FLConfig(rounds=1, serve_addr="carrier-pigeon:coop")


@pytest.mark.parametrize(
    "overrides,match",
    [
        ({"serve_timeout": 0.0}, "serve_timeout"),
        ({"serve_retries": 0}, "serve_retries"),
        ({"serve_backoff": -0.1}, "serve_backoff"),
        ({"serve_max_inflight": 0}, "serve_max_inflight"),
        ({"serve_queue_bytes": 0}, "serve_queue_bytes"),
    ],
)
def test_config_rejects_bad_serve_knobs(overrides, match):
    with pytest.raises(ConfigError, match=match):
        FLConfig(rounds=1, **overrides)


# -- message round trips ----------------------------------------------------------


def _deframe(framed: bytes) -> bytes:
    from repro.fl import wire

    (frames,) = [wire.FrameAssembler().feed(framed)]
    assert len(frames) == 1
    return frames[0]


def test_hello_round_trip():
    kind, payload = protocol.parse_message(_deframe(protocol.build_hello(7, 3)))
    assert kind == "hello"
    assert payload["serve.worker"] == 7
    assert payload["serve.attempts"] == 3


def test_state_round_trip_carries_seq():
    state = {"global_params": np.linspace(0, 1, 9)}
    kind, payload = protocol.parse_message(_deframe(protocol.build_state(state, 42)))
    assert kind == "state"
    assert payload["serve.seq"] == 42
    np.testing.assert_array_equal(payload["global_params"], state["global_params"])


def test_state_with_inexpressible_segments_raises_wire_error():
    """No pickled state transport: the server must degrade instead."""
    with pytest.raises(WireError):
        protocol.build_state({"weird": object()}, 1)


def test_task_round_trip_carries_model():
    model = np.linspace(-1, 1, 17)
    framed = protocol.build_task(round_idx=4, position=2, client_id=9, seq=5, model=model)
    kind, payload = protocol.parse_message(_deframe(framed))
    assert kind == "task"
    assert payload["serve.round"] == 4
    assert payload["serve.position"] == 2
    assert payload["serve.client"] == 9
    assert payload["serve.seq"] == 5
    np.testing.assert_array_equal(payload["model"], model)


def test_shutdown_round_trip():
    assert protocol.parse_message(_deframe(protocol.build_shutdown())) == (
        "shutdown",
        None,
    )


def _update(**overrides) -> ClientUpdate:
    base = dict(
        client_id=3,
        params=np.linspace(-1, 1, 17),
        wire=17,
        task_loss=0.25,
        reg_loss=0.0,
        num_steps=5,
        train_seconds=0.125,
        worker=1,
        wire_size=WireSize(values=17),
    )
    base.update(overrides)
    return ClientUpdate(**base)


def test_update_round_trip_dense():
    kind, out = protocol.parse_message(_deframe(protocol.build_update(_update())))
    assert kind == "update"
    np.testing.assert_array_equal(out.params, _update().params)
    assert out.client_id == 3


def test_update_pickle_fallback_round_trip():
    """An update the wire format cannot express rides as a pickle blob."""
    update = _update(payload={"weird": {"nested": "dict"}})
    kind, out = protocol.parse_message(_deframe(protocol.build_update(update)))
    assert kind == "update"
    assert out.payload == {"weird": {"nested": "dict"}}
    np.testing.assert_array_equal(out.params, update.params)


def test_unknown_op_raises_wire_error():
    from repro.fl import wire

    blob = wire.pack("generic", {"serve.op": 999})
    with pytest.raises(WireError, match="unknown serve message"):
        protocol.parse_message(blob)


def test_generic_without_op_raises_wire_error():
    from repro.fl import wire

    blob = wire.pack("generic", {"other": 1})
    with pytest.raises(WireError):
        protocol.parse_message(blob)


# -- byte accounting helper -------------------------------------------------------


def test_update_model_bytes_dense():
    assert protocol.update_model_bytes(_update()) == 17 * 8


def test_update_model_bytes_streams():
    update = _update(
        params=None,
        params_streams={
            "indices": np.array([1, 2], dtype=np.int32),
            "values": np.array([0.5, 1.5]),
        },
    )
    assert protocol.update_model_bytes(update) == 2 * 4 + 2 * 8


def test_update_model_bytes_empty():
    assert protocol.update_model_bytes(_update(params=None)) == 0
