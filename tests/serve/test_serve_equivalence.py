"""Serial/serve equivalence: a round served over real sockets must be
bit-identical to the in-process serial engine.

Every registered algorithm runs the same job twice — once serially,
once with ``execution='serve'`` (forked workers over an ephemeral
Unix-domain socket; TCP is covered separately) — and final parameters,
every History field except wall time, and per-round ledger totals must
match exactly.  Compression pipelines, partial participation,
checkpoint crash/resume (including a hard SIGKILL of the server
process) and serve<->sync checkpoint interchange ride the same harness.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.algorithms import ALGORITHMS
from repro.fl.config import FLConfig
from tests.helpers import assert_equivalent_runs, run_with_workers
from tests.serve.conftest import run_serve

# (name, constructor kwargs, slow?) — mirrors the parallel-equivalence matrix.
MATRIX = [
    ("fedavg", {}, False),
    ("fedavgm", {}, False),
    ("fednova", {}, False),
    ("fedprox", {"mu": 0.1}, False),
    ("moon", {"mu": 0.5}, True),
    ("scaffold", {}, False),
    ("qfedavg", {"q": 1.0}, False),
    ("rfedavg", {"lam": 1e-3}, True),
    ("rfedavg+", {"lam": 1e-3}, False),
    ("rfedavg_exact", {"lam": 1e-3}, True),
]


def _config(**overrides) -> FLConfig:
    base = dict(rounds=3, local_steps=2, batch_size=8, lr=0.1, seed=21)
    base.update(overrides)
    return FLConfig(**base)


def test_matrix_covers_every_registered_algorithm():
    """A new algorithm must be added to the serve equivalence matrix."""
    assert {name for name, _, _ in MATRIX} == set(ALGORITHMS)


@pytest.mark.parametrize(
    "name,kwargs",
    [
        pytest.param(name, kwargs, id=name, marks=[pytest.mark.slow] if slow else [])
        for name, kwargs, slow in MATRIX
    ],
)
def test_serve_run_is_bit_identical_to_serial(fed, name, kwargs):
    config = _config()
    serial = run_with_workers(name, kwargs, fed, config, num_workers=1)
    served = run_serve(name, kwargs, fed, config)
    assert_equivalent_runs(serial, served)


@pytest.mark.parametrize("name,kwargs", [("fedavg", {}), ("scaffold", {}), ("rfedavg+", {"lam": 1e-3})])
def test_serve_over_tcp_is_bit_identical_to_serial(fed, name, kwargs):
    config = _config(seed=22)
    serial = run_with_workers(name, kwargs, fed, config, num_workers=1)
    served = run_serve(name, kwargs, fed, config, serve_addr="tcp:127.0.0.1:0")
    assert_equivalent_runs(serial, served)


@pytest.mark.parametrize(
    "overrides",
    [
        pytest.param({"compression": "topk:0.25"}, id="topk"),
        pytest.param({"compression": "topk:0.25|qsgd:8"}, id="topk-qsgd-ef"),
        pytest.param({"compression": "randk:0.5|sign"}, id="randk-sign"),
    ],
)
def test_serve_with_compression_is_bit_identical(fed, overrides):
    """Compressed uploads (error feedback included) survive the socket."""
    config = _config(seed=23, **overrides)
    serial = run_with_workers("fedavg", {}, fed, config, num_workers=1)
    served = run_serve("fedavg", {}, fed, config)
    assert_equivalent_runs(serial, served)


def test_serve_rfedavg_plus_sync_compression(fed):
    config = _config(
        seed=24, compression="topk:0.25|qsgd:8", sync_compression="qsgd:8"
    )
    serial = run_with_workers("rfedavg+", {"lam": 1e-3}, fed, config, num_workers=1)
    served = run_serve("rfedavg+", {"lam": 1e-3}, fed, config)
    assert_equivalent_runs(serial, served)


def test_serve_partial_participation(fed):
    config = _config(seed=25, sample_ratio=0.5, rounds=4)
    serial = run_with_workers("fedavg", {}, fed, config, num_workers=1)
    served = run_serve("fedavg", {}, fed, config)
    assert_equivalent_runs(serial, served)


def test_serve_more_workers_than_clients(fed):
    config = _config(seed=26)
    serial = run_with_workers("fedavg", {}, fed, config, num_workers=1)
    served = run_serve("fedavg", {}, fed, config, num_workers=6)
    assert_equivalent_runs(serial, served)


def test_serve_backpressure_one_byte_queue(fed):
    """A one-byte outbound budget serializes dispatch (one frame may
    always be queued) but must not change the result or deadlock."""
    config = _config(seed=27)
    serial = run_with_workers("fedavg", {}, fed, config, num_workers=1)
    served = run_serve("fedavg", {}, fed, config, serve_queue_bytes=1)
    assert_equivalent_runs(serial, served)


def test_serve_max_inflight_one(fed):
    config = _config(seed=28)
    serial = run_with_workers("scaffold", {}, fed, config, num_workers=1)
    served = run_serve("scaffold", {}, fed, config, serve_max_inflight=1)
    assert_equivalent_runs(serial, served)


# -- crash / resume ---------------------------------------------------------------

ROUNDS = 6
CRASH_ROUND = 3


def _crash_config(**overrides) -> FLConfig:
    base = dict(rounds=ROUNDS, local_steps=2, batch_size=8, lr=0.1, seed=31)
    base.update(overrides)
    return FLConfig(**base)


def _simulate_crash(ckpt_dir: Path) -> None:
    removed = 0
    for round_idx in range(CRASH_ROUND, ROUNDS):
        path = ckpt_dir / f"ckpt-{round_idx:08d}.rck"
        if path.exists():
            path.unlink()
            removed += 1
    assert removed > 0, "crash simulation deleted nothing — cadence changed?"


def test_serve_crash_resume_is_bit_identical(fed, tmp_path):
    config = _crash_config()
    baseline = run_with_workers("scaffold", {}, fed, config, num_workers=1)
    ckpt_config = config.with_updates(
        checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_keep=50
    )
    run_serve("scaffold", {}, fed, ckpt_config)
    _simulate_crash(tmp_path / "ckpt")
    resumed = run_serve("scaffold", {}, fed, ckpt_config.with_updates(resume=True))
    assert_equivalent_runs(baseline, resumed)


def test_serve_and_sync_checkpoints_interchange(fed, tmp_path):
    """serve is execution-only: a sync run's checkpoints resume under
    serve (and the result still matches an uninterrupted serial run)."""
    config = _crash_config(seed=32)
    baseline = run_with_workers("fedavg", {}, fed, config, num_workers=1)
    ckpt_config = config.with_updates(
        checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_keep=50
    )
    run_with_workers("fedavg", {}, fed, ckpt_config, num_workers=1)
    _simulate_crash(tmp_path / "ckpt")
    resumed = run_serve("fedavg", {}, fed, ckpt_config.with_updates(resume=True))
    assert_equivalent_runs(baseline, resumed)


_CRASH_SCRIPT = textwrap.dedent(
    """
    import os
    import signal
    import sys

    sys.path.insert(0, "src")
    sys.path.insert(0, ".")

    from tests.conftest import make_toy_federation
    from tests.helpers import tiny_model_fn
    from repro.algorithms import make_algorithm
    from repro.fl.config import FLConfig
    from repro.fl.trainer import run_federated

    fed = make_toy_federation(similarity=0.0)
    config = FLConfig(
        rounds={rounds}, local_steps=2, batch_size=8, lr=0.1, seed=31,
        execution="serve", num_workers=2, serve_timeout=5.0,
        checkpoint_dir=sys.argv[1], checkpoint_keep=50,
    )

    def die_mid_run(record):
        if record.round_idx == {crash_round}:
            # SIGKILL ourselves: no cleanup, no shutdown frames — the
            # workers are left talking to a dead server.
            os.kill(os.getpid(), signal.SIGKILL)

    run_federated(
        make_algorithm("scaffold"), fed, tiny_model_fn(fed), config,
        callbacks=[die_mid_run],
    )
    os._exit(0)
    """
)


@pytest.mark.slow
def test_serve_server_sigkill_then_resume(fed, tmp_path):
    """SIGKILL the serving process mid-run; resume must be bit-identical.

    Round callbacks fire before the round's checkpoint is written, so
    the kill lands between checkpoints — a genuinely torn run.  The
    orphaned workers must also exit on their own (they notice the
    parent died on their next receive timeout) rather than hold the
    subprocess pipes open forever.
    """
    repo_root = Path(__file__).resolve().parents[2]
    script = tmp_path / "crash_serve.py"
    script.write_text(_CRASH_SCRIPT.format(rounds=ROUNDS, crash_round=CRASH_ROUND))
    ckpt_dir = tmp_path / "ckpt"
    proc = subprocess.run(
        [sys.executable, str(script), str(ckpt_dir)],
        cwd=repo_root,
        env={**os.environ, "PYTHONPATH": "src"},
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == -9, proc.stderr  # killed by SIGKILL
    rounds_on_disk = sorted(
        int(p.stem.split("-")[1]) for p in ckpt_dir.glob("ckpt-*.rck")
    )
    assert rounds_on_disk == list(range(CRASH_ROUND)), rounds_on_disk

    baseline = run_with_workers("scaffold", {}, fed, _crash_config(), num_workers=1)
    resumed = run_serve(
        "scaffold",
        {},
        fed,
        _crash_config(checkpoint_dir=str(ckpt_dir), checkpoint_keep=50, resume=True),
    )
    assert_equivalent_runs(baseline, resumed)
