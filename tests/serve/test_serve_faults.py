"""Serving-engine fault tolerance and byte reconciliation.

Worker loss mid-run must redispatch and stay bit-identical; losing every
worker degrades to in-process serial execution with a RuntimeWarning
(same contract as the process pool); socket-level model bytes must
reconcile exactly against the ledger for dense dtype-true runs and land
in drift counters otherwise.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.fl.config import FLConfig
from repro.obs import Tracer
from repro.serve.server import ServeExecutor
from tests.helpers import assert_equivalent_runs, run_with_workers
from tests.serve.conftest import run_serve


def _config(**overrides) -> FLConfig:
    base = dict(rounds=4, local_steps=2, batch_size=8, lr=0.1, seed=41)
    base.update(overrides)
    return FLConfig(**base)


# -- worker loss ------------------------------------------------------------------


def test_worker_killed_between_rounds_is_replaced(fed):
    """SIGKILL a worker after round 1; the engine re-forks a replacement
    and the run stays bit-identical without degrading."""
    killed = []

    def assassin(record):
        if record.round_idx == 1:
            victim = record_algorithm[0].executor._procs[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10.0)
            killed.append(victim.pid)

    record_algorithm = []

    def decorate(algorithm):
        record_algorithm.append(algorithm)

    from repro.fl.trainer import run_federated
    from repro.algorithms import make_algorithm
    from tests.helpers import tiny_model_fn
    import warnings

    config = _config()
    serial = run_with_workers("scaffold", {}, fed, config, num_workers=1)
    run_config = config.with_updates(execution="serve", num_workers=2)
    algorithm = make_algorithm("scaffold")
    record_algorithm.append(algorithm)
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        history = run_federated(
            algorithm, fed, tiny_model_fn(fed), run_config, callbacks=[assassin]
        )
    assert killed, "the assassin callback never fired"
    assert not algorithm.executor.degraded
    assert_equivalent_runs(serial, (algorithm, history))


def test_all_workers_dead_degrades_with_warning(fed, monkeypatch):
    """Workers that exit without ever connecting leave no transport; the
    engine must warn and finish the round in-process — bit-identically."""
    monkeypatch.setattr("repro.serve.worker.worker_main", lambda *a, **k: None)
    serial = run_with_workers("fedavg", {}, fed, _config(), num_workers=1)
    with pytest.warns(RuntimeWarning, match="socket client serving disabled"):
        served = run_serve(
            "fedavg", {}, fed, _config(), allow_degrade=True, serve_timeout=5.0
        )
    assert served[0].executor.degraded
    assert_equivalent_runs(serial, served)


def test_unsafe_algorithm_degrades_with_warning(fed):
    """wire_transport_safe=False cannot enumerate socket state."""
    from repro.algorithms import FedAvg

    class _OptedOut(FedAvg):
        name = "fedavg"
        wire_transport_safe = False

    serial = run_with_workers("fedavg", {}, fed, _config(seed=42), num_workers=1)

    from repro.fl.trainer import run_federated
    from tests.helpers import tiny_model_fn

    algorithm = _OptedOut()
    run_config = _config(seed=42).with_updates(execution="serve", num_workers=2)
    with pytest.warns(RuntimeWarning, match="cannot enumerate worker state"):
        history = run_federated(algorithm, fed, tiny_model_fn(fed), run_config)
    assert algorithm.executor.degraded
    assert_equivalent_runs(serial, (algorithm, history))


def test_executor_close_is_reusable(fed):
    """close() tears the sockets down; the next round re-forks."""
    config = _config(rounds=2, seed=43)
    serial = run_with_workers("fedavg", {}, fed, config, num_workers=1)

    closed = []

    def close_between_rounds(record):
        if record.round_idx == 0:
            algorithm = holders[0]
            algorithm.executor.close()
            closed.append(True)

    from repro.fl.trainer import run_federated
    from repro.algorithms import make_algorithm
    from tests.helpers import tiny_model_fn
    import warnings

    holders = []
    algorithm = make_algorithm("fedavg")
    holders.append(algorithm)
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        history = run_federated(
            algorithm,
            fed,
            tiny_model_fn(fed),
            config.with_updates(execution="serve", num_workers=2),
            callbacks=[close_between_rounds],
        )
    assert closed and not algorithm.executor.degraded
    assert_equivalent_runs(serial, (algorithm, history))


# -- byte reconciliation ----------------------------------------------------------


def _counters(tracer):
    snapshot = tracer.metrics.snapshot()
    return snapshot["counters"]


def test_dense_run_reconciles_exactly(fed):
    """Dense dtype-true serve runs: socket model bytes == ledger charges
    (any drift would have raised ProtocolError; the counters agree)."""
    tracer = Tracer()
    algorithm, _history = run_serve("fedavg", {}, fed, _config(seed=44), tracer=tracer)
    counters = _counters(tracer)
    assert counters["serve.bytes_wire_down"] == counters["serve.bytes_ledger_down"]
    assert counters["serve.bytes_wire_up"] == counters["serve.bytes_ledger_up"]
    assert counters["serve.bytes_wire_down"] > 0
    assert "serve.reconcile_mismatches" not in counters
    # The ledger's model-kind formula in closed form, both directions:
    # cohort * model_size * dtype_bytes down, sum of dense uploads up.
    ledger = algorithm.ledger
    rounds = _config(seed=44).rounds
    expected = algorithm.model_size * fed.num_clients * ledger.dtype_bytes * rounds
    assert counters["serve.bytes_ledger_down"] == expected
    assert counters["serve.bytes_ledger_up"] == expected


def test_dense_float_width_reconciles_for_topk(fed):
    """topk keeps float64 values on the wire, so the measured stream
    bytes still reconcile with the WireSize charge exactly."""
    tracer = Tracer()
    run_serve(
        "fedavg", {}, fed, _config(seed=45, compression="topk:0.25"), tracer=tracer
    )
    counters = _counters(tracer)
    assert counters["serve.bytes_wire_down"] == counters["serve.bytes_ledger_down"]


def test_coder_pipeline_mismatch_is_counted_not_fatal(fed):
    """qsgd ships a decoded float64 carrier but is charged bit-packed
    words: the drift must land in a counter, never a ProtocolError."""
    tracer = Tracer()
    algorithm, _history = run_serve(
        "fedavg", {}, fed, _config(seed=46, compression="qsgd:8"), tracer=tracer
    )
    counters = _counters(tracer)
    assert counters["serve.bytes_wire_up"] != counters["serve.bytes_ledger_up"]
    assert counters["serve.reconcile_mismatches"] == _config().rounds
    assert not algorithm.executor.degraded


def test_latency_quantiles_reach_the_snapshot(fed):
    tracer = Tracer()
    run_serve("fedavg", {}, fed, _config(seed=47), tracer=tracer)
    quantiles = tracer.metrics.snapshot()["quantiles"]
    request = quantiles["serve.request_latency_sec"]
    config = _config()
    assert request["count"] == fed.num_clients * config.rounds
    assert 0 <= request["p50"] <= request["p95"] <= request["p99"]
    assert quantiles["serve.round_latency_sec"]["count"] == config.rounds


# -- direct executor units --------------------------------------------------------


def test_from_config_reads_the_serve_knobs():
    config = FLConfig(
        rounds=1,
        num_workers=3,
        serve_addr="tcp:127.0.0.1:0",
        serve_timeout=9.0,
        serve_retries=7,
        serve_backoff=0.25,
        serve_max_inflight=5,
        serve_queue_bytes=4096,
    )
    executor = ServeExecutor.from_config(config)
    assert executor.num_workers == 3
    assert executor.addr_spec == "tcp:127.0.0.1:0"
    assert executor.timeout == 9.0
    assert executor.retries == 7
    assert executor.backoff == 0.25
    assert executor.max_inflight == 5
    assert executor.queue_bytes == 4096


def test_max_inflight_defaults_to_twice_the_workers():
    assert ServeExecutor(num_workers=4).max_inflight == 8


def test_make_executor_routes_serve(monkeypatch):
    from repro.fl.parallel import make_executor

    executor = make_executor(FLConfig(rounds=1, execution="serve", num_workers=2))
    assert isinstance(executor, ServeExecutor)
    assert executor.name == "serve"


def test_empty_cohort_is_a_noop():
    executor = ServeExecutor(num_workers=1)
    assert executor.run(object(), 0, []) == []
    assert not executor.degraded
