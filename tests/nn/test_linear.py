"""Linear layer tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn.losses import SoftmaxCrossEntropy
from tests.helpers import model_gradcheck


def test_forward_matches_manual_affine(rng):
    layer = nn.Linear(3, 2, rng=rng)
    x = rng.normal(size=(4, 3))
    out = layer(x)
    expected = x @ layer.weight.data + layer.bias.data
    np.testing.assert_allclose(out, expected)


def test_no_bias_option(rng):
    layer = nn.Linear(3, 2, rng=rng, bias=False)
    assert layer.bias is None
    x = rng.normal(size=(4, 3))
    np.testing.assert_allclose(layer(x), x @ layer.weight.data)
    layer.backward(np.ones((4, 2)))  # must not crash without bias


def test_backward_shapes_and_accumulation(rng):
    layer = nn.Linear(3, 2, rng=rng)
    x = rng.normal(size=(4, 3))
    layer(x)
    g1 = np.ones((4, 2))
    layer.backward(g1)
    w_grad_once = layer.weight.grad.copy()
    layer(x)
    layer.backward(g1)
    np.testing.assert_allclose(layer.weight.grad, 2 * w_grad_once)


def test_backward_before_forward_raises(rng):
    layer = nn.Linear(3, 2, rng=rng)
    with pytest.raises(RuntimeError):
        layer.backward(np.ones((1, 2)))


def test_gradcheck_linear_chain(rng):
    model = nn.Sequential(nn.Linear(6, 5, rng=rng), nn.Tanh(), nn.Linear(5, 3, rng=rng))
    x = rng.normal(size=(8, 6))
    y = rng.integers(0, 3, 8)
    loss_fn = SoftmaxCrossEntropy()

    def closure():
        logits = model(x)
        loss = loss_fn.forward(logits, y)
        return loss, loss_fn.backward()

    model_gradcheck(model, closure, rng, num_coords=12)


def test_deterministic_init_with_same_seed():
    a = nn.Linear(4, 4, rng=np.random.default_rng(9))
    b = nn.Linear(4, 4, rng=np.random.default_rng(9))
    np.testing.assert_array_equal(a.weight.data, b.weight.data)
