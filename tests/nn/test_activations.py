"""Activation layer tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import nn
from repro.nn.activations import sigmoid


def test_relu_values():
    x = np.array([[-1.0, 0.0, 2.0]])
    np.testing.assert_array_equal(nn.ReLU()(x), [[0.0, 0.0, 2.0]])


def test_relu_gradient_mask():
    layer = nn.ReLU()
    layer(np.array([[-1.0, 3.0]]))
    grad = layer.backward(np.array([[5.0, 5.0]]))
    np.testing.assert_array_equal(grad, [[0.0, 5.0]])


def test_leaky_relu_negative_slope():
    layer = nn.LeakyReLU(alpha=0.1)
    out = layer(np.array([[-2.0, 2.0]]))
    np.testing.assert_allclose(out, [[-0.2, 2.0]])
    grad = layer.backward(np.array([[1.0, 1.0]]))
    np.testing.assert_allclose(grad, [[0.1, 1.0]])


def test_tanh_matches_numpy(rng):
    x = rng.normal(size=(3, 4))
    np.testing.assert_allclose(nn.Tanh()(x), np.tanh(x))


def test_tanh_gradient():
    layer = nn.Tanh()
    x = np.array([[0.5]])
    layer(x)
    grad = layer.backward(np.array([[1.0]]))
    np.testing.assert_allclose(grad, 1 - np.tanh(x) ** 2)


def test_sigmoid_layer_gradient():
    layer = nn.Sigmoid()
    x = np.array([[0.3]])
    out = layer(x)
    grad = layer.backward(np.array([[1.0]]))
    np.testing.assert_allclose(grad, out * (1 - out))


@given(st.floats(min_value=-500, max_value=500))
def test_sigmoid_stable_and_bounded(value):
    out = sigmoid(np.array([value]))
    assert np.isfinite(out).all()
    assert 0.0 <= out[0] <= 1.0


def test_sigmoid_extremes_no_overflow():
    out = sigmoid(np.array([-1000.0, 1000.0]))
    np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)


@pytest.mark.parametrize("cls", [nn.ReLU, nn.Tanh, nn.Sigmoid, nn.LeakyReLU])
def test_backward_before_forward_raises(cls):
    with pytest.raises(RuntimeError):
        cls().backward(np.ones((1, 1)))
