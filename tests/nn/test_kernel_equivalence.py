"""Bit-for-bit equivalence of the optimized kernels vs the frozen references.

The kernel rewrites (strided im2col, hoisted recurrent input
projections, fused gate blocks, branchless sigmoid, preallocated GEMM
destinations) ship under one contract: in float64 they produce **the
same bits** as the original implementations, which are frozen verbatim
in :mod:`repro.nn.reference`.  ``np.array_equal`` throughout — no
tolerances.
"""

import copy

import numpy as np
import pytest

from repro import nn
from repro.nn.activations import sigmoid
from repro.nn.conv import Conv2d, col2im, im2col
from repro.nn.gru import GRUCell
from repro.nn.recurrent import LSTMCell
from repro.nn.reference import (
    as_reference,
    col2im_reference,
    im2col_reference,
    sigmoid_reference,
)


def _params_equal(a, b):
    return all(
        np.array_equal(p.data, q.data) and np.array_equal(p.grad, q.grad)
        for p, q in zip(a.parameters(), b.parameters())
    )


# -- sigmoid --------------------------------------------------------------------


def test_branchless_sigmoid_matches_two_branch_reference(rng):
    for scale in (0.1, 1.0, 5.0, 50.0, 700.0):
        x = rng.normal(size=4096) * scale
        np.testing.assert_array_equal(sigmoid(x), sigmoid_reference(x))


def test_branchless_sigmoid_edge_values():
    x = np.array([0.0, -0.0, 1e-300, -1e-300, 709.0, -709.0, np.inf, -np.inf])
    np.testing.assert_array_equal(sigmoid(x), sigmoid_reference(x))


def test_sigmoid_out_strided_destination(rng):
    """Writing into a strided slice gives the same values as allocating."""
    x = rng.normal(size=(6, 10))
    buf = np.empty((6, 40))
    result = sigmoid(x, out=buf[:, 7:17])
    np.testing.assert_array_equal(result, sigmoid_reference(x))
    assert result.base is buf


# -- im2col / col2im ------------------------------------------------------------

CONV_SHAPES = [
    # (batch, channels, height, width, kernel, stride, padding)
    (2, 3, 8, 8, 3, 1, 1),
    (1, 1, 5, 7, 3, 2, 0),
    (3, 2, 9, 9, 4, 3, 2),
    (2, 4, 6, 6, 1, 1, 0),
    (1, 2, 11, 5, 5, 2, 2),
]


@pytest.mark.parametrize("shape", CONV_SHAPES)
def test_im2col_matches_reference(rng, shape):
    b, c, h, w, k, s, p = shape
    x = rng.normal(size=(b, c, h, w))
    cols, oh, ow = im2col(x, k, s, p)
    ref_cols, ref_oh, ref_ow = im2col_reference(x, k, s, p)
    assert (oh, ow) == (ref_oh, ref_ow)
    np.testing.assert_array_equal(cols, ref_cols)


@pytest.mark.parametrize("shape", CONV_SHAPES)
def test_col2im_matches_reference(rng, shape):
    b, c, h, w, k, s, p = shape
    x_shape = (b, c, h, w)
    oh = (h + 2 * p - k) // s + 1
    ow = (w + 2 * p - k) // s + 1
    cols = rng.normal(size=(b * oh * ow, c * k * k))
    np.testing.assert_array_equal(
        col2im(cols, x_shape, k, s, p, oh, ow),
        col2im_reference(cols, x_shape, k, s, p, oh, ow),
    )


# -- layer-level fwd/bwd/grads --------------------------------------------------


def test_conv2d_matches_reference_bitwise(rng):
    conv = Conv2d(3, 5, 3, stride=2, padding=1, rng=np.random.default_rng(11))
    ref = as_reference(copy.deepcopy(conv))
    x = rng.normal(size=(4, 3, 9, 9))
    out, ref_out = conv.forward(x), ref.forward(x)
    np.testing.assert_array_equal(out, ref_out)
    grad_out = rng.normal(size=out.shape)
    np.testing.assert_array_equal(conv.backward(grad_out), ref.backward(grad_out))
    assert _params_equal(conv, ref)


@pytest.mark.parametrize(
    "cell_cls,dims",
    [
        (LSTMCell, (13, 16, 4, 7)),
        (LSTMCell, (25, 32, 9, 12)),
        (GRUCell, (13, 16, 4, 7)),
        (GRUCell, (25, 32, 9, 12)),
    ],
    ids=["lstm-small", "lstm-wide", "gru-small", "gru-wide"],
)
def test_recurrent_cell_matches_reference_bitwise(rng, cell_cls, dims):
    in_dim, hid, batch, steps = dims
    cell = cell_cls(in_dim, hid, rng=np.random.default_rng(5))
    ref = as_reference(copy.deepcopy(cell))
    x = rng.normal(size=(batch, steps, in_dim))
    np.testing.assert_array_equal(cell.forward(x), ref.forward(x))
    grad_out = rng.normal(size=(batch, steps, hid))
    np.testing.assert_array_equal(cell.backward(grad_out), ref.backward(grad_out))
    assert _params_equal(cell, ref)


def test_backward_twice_accumulates_identically(rng):
    """Preallocated gradient workspaces must not leak state between calls."""
    cell = LSTMCell(6, 8, rng=np.random.default_rng(2))
    ref = as_reference(copy.deepcopy(cell))
    x = rng.normal(size=(3, 5, 6))
    grad_out = rng.normal(size=(3, 5, 8))
    for model in (cell, ref):
        model.forward(x)
        model.backward(grad_out)
        model.forward(x)
        model.backward(grad_out)
    assert _params_equal(cell, ref)


def test_full_model_train_flow_bitwise(rng):
    """A CNN forward/backward chain end to end, optimized vs reference."""
    def build():
        r = np.random.default_rng(3)
        return nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=r), nn.ReLU(), nn.MaxPool2d(2),
            nn.Flatten(), nn.Linear(4 * 4 * 4, 3, rng=r),
        )

    model = build()
    ref = as_reference(build())
    x = rng.normal(size=(5, 1, 8, 8))
    y = rng.integers(0, 3, 5)
    loss = nn.SoftmaxCrossEntropy()
    for m in (model, ref):
        m.zero_grad()
        loss.forward(m(x), y)
        m.backward(loss.backward())
    assert _params_equal(model, ref)


# -- blockwise MMD --------------------------------------------------------------


def test_pairwise_sq_dists_blockwise_matches_dense(rng):
    from repro.core.mmd import _pairwise_sq_dists

    a = rng.normal(size=(37, 8))
    b = rng.normal(size=(23, 8))
    dense = _pairwise_sq_dists(a, b)
    for block_rows in (1, 5, 16, 64):
        np.testing.assert_allclose(
            _pairwise_sq_dists(a, b, block_rows=block_rows), dense,
            rtol=0, atol=1e-12,
        )


def test_pairwise_sq_dists_single_block_is_dense_path(rng):
    """A block covering all rows goes through the identical dense GEMM."""
    from repro.core.mmd import _pairwise_sq_dists

    a = rng.normal(size=(19, 4))
    b = rng.normal(size=(11, 4))
    np.testing.assert_array_equal(
        _pairwise_sq_dists(a, b, block_rows=19), _pairwise_sq_dists(a, b)
    )


def test_rbf_mmd_value_unchanged_by_blocking(rng):
    from repro.core import mmd

    a = rng.normal(size=(40, 6))
    b = rng.normal(size=(30, 6))
    dense = mmd.rbf_mmd(a, b)
    old = mmd._BLOCK_ELEMENTS
    try:
        mmd._BLOCK_ELEMENTS = 64  # force the blocked path
        blocked = mmd.rbf_mmd(a, b)
    finally:
        mmd._BLOCK_ELEMENTS = old
    np.testing.assert_allclose(blocked, dense, rtol=0, atol=1e-12)
