"""GRU tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn.losses import SoftmaxCrossEntropy
from tests.helpers import model_gradcheck


def test_gru_cell_shape(rng):
    cell = nn.GRUCell(4, 6, rng=rng)
    out = cell(rng.normal(size=(3, 5, 4)))
    assert out.shape == (3, 5, 6)


def test_stacked_gru_shape(rng):
    gru = nn.GRU(4, 6, num_layers=3, rng=rng)
    out = gru(rng.normal(size=(2, 7, 4)))
    assert out.shape == (2, 7, 6)
    assert len(gru.cells) == 3


def test_gru_has_fewer_params_than_lstm(rng):
    """The GRU's selling point for FL payloads: 3 gates vs 4."""
    from repro.nn.serialization import num_params

    gru = nn.GRU(8, 16, num_layers=1, rng=rng)
    lstm = nn.LSTM(8, 16, num_layers=1, rng=rng)
    assert num_params(gru) == 0.75 * num_params(lstm)


def test_gru_gradcheck_single_layer(rng):
    model = nn.Sequential(
        nn.GRUCell(3, 5, rng=rng), nn.LastTimestep(), nn.Linear(5, 2, rng=rng)
    )
    x = rng.normal(size=(4, 6, 3))
    y = rng.integers(0, 2, 4)
    loss_fn = SoftmaxCrossEntropy()

    def closure():
        loss = loss_fn.forward(model(x), y)
        return loss, loss_fn.backward()

    model_gradcheck(model, closure, rng, num_coords=15)


def test_gru_gradcheck_stacked_with_embedding(rng):
    model = nn.Sequential(
        nn.Embedding(12, 4, rng=rng),
        nn.GRU(4, 6, num_layers=2, rng=rng),
        nn.LastTimestep(),
        nn.Linear(6, 3, rng=rng),
    )
    ids = rng.integers(0, 12, size=(3, 5))
    y = rng.integers(0, 3, 3)
    loss_fn = SoftmaxCrossEntropy()

    def closure():
        loss = loss_fn.forward(model(ids), y)
        return loss, loss_fn.backward()

    model_gradcheck(model, closure, rng, num_coords=15)


def test_gru_stateless_between_forwards(rng):
    cell = nn.GRUCell(3, 4, rng=rng)
    x = rng.normal(size=(2, 5, 3))
    np.testing.assert_array_equal(cell(x), cell(x))


def test_backward_before_forward_raises(rng):
    with pytest.raises(RuntimeError):
        nn.GRUCell(2, 2, rng=rng).backward(np.zeros((1, 3, 2)))


def test_gru_learns_simple_sequence_task(rng):
    """A GRU classifier separates sequences by their dominant token."""
    vocab, seq_len, n = 6, 8, 120
    tokens = rng.integers(0, vocab, size=(n, seq_len))
    labels = (tokens == 0).sum(axis=1) > 1  # contains several 0-tokens
    model = nn.Sequential(
        nn.Embedding(vocab, 4, rng=rng),
        nn.GRU(4, 8, rng=rng),
        nn.LastTimestep(),
        nn.Linear(8, 2, rng=rng),
    )
    loss_fn = SoftmaxCrossEntropy()
    opt = nn.Adam(model.parameters(), lr=0.02)
    for _ in range(60):
        loss_fn.forward(model(tokens), labels.astype(int))
        model.zero_grad()
        model.backward(loss_fn.backward())
        opt.step()
    acc = (model(tokens).argmax(axis=1) == labels).mean()
    assert acc > 0.85
