"""Conv2d and im2col tests."""

import numpy as np
import pytest

from repro import nn
from repro.nn.conv import col2im, im2col
from repro.nn.losses import SoftmaxCrossEntropy
from tests.helpers import model_gradcheck


def _naive_conv(x, weight, bias, stride, padding):
    """Reference direct convolution for correctness comparison."""
    batch, _cin, h, w = x.shape
    cout, cin, k, _ = weight.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - k) // stride + 1
    ow = (w + 2 * padding - k) // stride + 1
    out = np.zeros((batch, cout, oh, ow))
    for b in range(batch):
        for o in range(cout):
            for i in range(oh):
                for j in range(ow):
                    patch = x[b, :, i * stride : i * stride + k, j * stride : j * stride + k]
                    out[b, o, i, j] = (patch * weight[o]).sum() + bias[o]
    return out


@pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
def test_forward_matches_naive(rng, stride, padding):
    layer = nn.Conv2d(2, 3, kernel_size=3, stride=stride, padding=padding, rng=rng)
    x = rng.normal(size=(2, 2, 7, 7))
    out = layer(x)
    expected = _naive_conv(x, layer.weight.data, layer.bias.data, stride, padding)
    np.testing.assert_allclose(out, expected, atol=1e-12)


def test_output_shape(rng):
    layer = nn.Conv2d(1, 4, kernel_size=5, padding=2, rng=rng)
    out = layer(rng.normal(size=(3, 1, 12, 12)))
    assert out.shape == (3, 4, 12, 12)


def test_im2col_col2im_adjointness(rng):
    """col2im is the transpose of im2col: <im2col(x), c> == <x, col2im(c)>."""
    x = rng.normal(size=(2, 3, 6, 6))
    cols, oh, ow = im2col(x, kernel=3, stride=1, padding=1)
    c = rng.normal(size=cols.shape)
    lhs = float((cols * c).sum())
    back = col2im(c, x.shape, kernel=3, stride=1, padding=1, out_h=oh, out_w=ow)
    rhs = float((x * back).sum())
    assert abs(lhs - rhs) < 1e-9


def test_gradcheck_small_cnn(rng):
    model = nn.Sequential(
        nn.Conv2d(1, 3, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(3 * 4 * 4, 5, rng=rng),
    )
    x = rng.normal(size=(4, 1, 8, 8))
    y = rng.integers(0, 5, 4)
    loss_fn = SoftmaxCrossEntropy()

    def closure():
        loss = loss_fn.forward(model(x), y)
        return loss, loss_fn.backward()

    model_gradcheck(model, closure, rng, num_coords=12)


def test_backward_before_forward_raises(rng):
    layer = nn.Conv2d(1, 1, 3, rng=rng)
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((1, 1, 3, 3)))


def test_grad_accumulates_across_batches(rng):
    layer = nn.Conv2d(1, 2, 3, padding=1, rng=rng)
    x = rng.normal(size=(2, 1, 6, 6))
    out = layer(x)
    layer.backward(np.ones_like(out))
    first = layer.weight.grad.copy()
    layer(x)
    layer.backward(np.ones_like(out))
    np.testing.assert_allclose(layer.weight.grad, 2 * first)
